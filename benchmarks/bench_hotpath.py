"""HOTPATH — the compile-and-cache execution fast path.

Measures the two layers added by the fast-path work against the same
build with the optimizations switched off:

* **Tcl layer** — three backends on the same workloads: the bytecode
  VM (``exec_mode="vm"``, the default), the compiled-AST walk
  (``exec_mode="ast"``: literal argv, substitution closures,
  epoch-guarded command-pointer caches, expr AST specialization, proc
  tail-return elimination), and the plain interpreted walk
  (``Interp(compile_enabled=False)``).
* **Runtime layer** — a compute-bound Swift program run end-to-end
  with ``tcl_compile``/``read_cache``/``batch_refcounts`` on versus
  off, plus VM-vs-AST on the same program.

``benchmarks/record.py`` reuses the ``measure_*`` functions here to
write the committed ``BENCH_hotpath.json`` snapshot.

Note on methodology: timings use best-of-rounds on a private
interpreter per round; deep *binary* Tcl recursion (fib-style) is
deliberately excluded because its wall time swings ±50% with the
initial Python stack depth (CPython frame-stack chunk boundaries),
which drowns the effect being measured.
"""

from __future__ import annotations

import time

from repro import swift_run
from repro.tcl.interp import Interp

# Proc-dispatch-heavy: 16 proc calls per loop iteration, exercising
# argument binding, tail returns, and [cmd] substitution closures.
PROC_PRELUDE = """
proc ping {x} { return $x }
proc pong {a b} { return $b }
proc chain {x} {
    set v [ping [pong [ping $x] [ping [ping [pong $x [ping $x]]]]]]
    set v [ping [pong [ping $v] [ping [ping [pong $v [ping $v]]]]]]
    return [ping [ping $v]]
}
proc drive {n} {
    set out {}
    for {set i 0} {$i < $n} {incr i} { set out [chain $i] }
    return $out
}
"""
PROC_CALL = "drive 50"

# Loop/expr-heavy: compiled loop bodies and specialized literal exprs.
EXPR_PRELUDE = """
proc sumsq {n} {
    set total 0
    for {set i 0} {$i < $n} {incr i} {
        set total [expr {$total + $i * $i}]
    }
    return $total
}
"""
EXPR_CALL = "sumsq 400"

# Dataflow fan-out for the read-cache/refcount-batching comparison (no
# sleeps): every iteration task retrieves the same shared futures
# (read-cache hits after the first) and drops read references on its
# inputs (coalesced by refcount batching).  Per-task Tcl work is tiny,
# so this one is messaging-bound — it guards the *runtime* fast paths.
E2E_PROGRAM = """
int n = 17;
int m = n * 3 + 2;
foreach i in [0:199] {
    int a = i * n + m;
    if (a %% 7 == 0) { printf("hit %%i", i); }
}
""".replace("%%", "%")
E2E_EXPECTED = sorted(
    "hit %d" % i for i in range(200) if (i * 17 + 17 * 3 + 2) % 7 == 0
)

# End-to-end Tcl-execution benchmark: a hand-written Turbine program
# (the `repro runtcl` flow) whose WORK tasks each run a proc-dispatch
# chain inside a compiled loop — the shape of a Tcl-scripted
# computation distributed by the runtime, where the execution backend
# actually carries the load.  24 tasks over 2 workers.
TASK_COMPUTE_PROGRAM = """
proc swift:main {} {
    for { set i 0 } { $i < 24 } { incr i } {
        turbine::spawn WORK [ list crunch $i ]
    }
}
proc ping { x } { return $x }
proc pong { a b } { return $b }
proc chain { x } {
    set v [ping [pong [ping $x] [ping [ping [pong $x [ping $x]]]]]]
    return [ping [ping $v]]
}
proc crunch { i } {
    set t 0
    for { set j 0 } { $j < 250 } { incr j } {
        set t [ expr { $t + [ chain $j ] } ]
    }
    turbine::log_output "c$i=$t"
}
"""
TASK_COMPUTE_EXPECTED = sorted(
    "c%d=%d" % (i, sum(range(250))) for i in range(24)
)


def _time_tcl(
    prelude: str,
    call: str,
    compile_enabled: bool,
    iters: int,
    exec_mode: str = "ast",
) -> float:
    interp = Interp(compile_enabled=compile_enabled, exec_mode=exec_mode)
    interp.echo = False
    interp.eval(prelude)
    interp.eval(call)  # warm parse/compile caches
    t0 = time.perf_counter()
    for _ in range(iters):
        interp.eval(call)
    return time.perf_counter() - t0


def measure_tcl(
    prelude: str, call: str, iters: int = 60, rounds: int = 3
) -> dict:
    """Best-of-rounds vm vs compiled-AST vs interpreted timing.

    ``speedup`` is the headline number (interpreted / vm, since the VM
    is the default backend); ``speedup_ast`` tracks the compiled-AST
    walk so a VM-era regression there stays visible.
    """
    vm = min(
        _time_tcl(prelude, call, True, iters, "vm") for _ in range(rounds)
    )
    compiled = min(_time_tcl(prelude, call, True, iters) for _ in range(rounds))
    interpreted = min(_time_tcl(prelude, call, False, iters) for _ in range(rounds))
    return {
        "vm_s": vm,
        "compiled_s": compiled,
        "interpreted_s": interpreted,
        "speedup": interpreted / vm,
        "speedup_ast": interpreted / compiled,
        "speedup_vm_vs_ast": compiled / vm,
        "iters": iters,
    }


def measure_dataflow(rounds: int = 3, workers: int = 2) -> dict:
    """The dataflow fan-out with the fast-path optimizations on vs off."""

    def run(**flags) -> float:
        t0 = time.perf_counter()
        res = swift_run(E2E_PROGRAM, workers=workers, **flags)
        elapsed = time.perf_counter() - t0
        assert sorted(res.stdout_lines) == E2E_EXPECTED
        return elapsed

    on = min(run() for _ in range(rounds))
    ast = min(run(tcl_exec="ast") for _ in range(rounds))
    off = min(
        run(tcl_compile=False, read_cache=False, batch_refcounts=False)
        for _ in range(rounds)
    )
    return {
        "optimized_s": on,
        "ast_s": ast,
        "unoptimized_s": off,
        "speedup": off / on,
        "workers": workers,
    }


def measure_end_to_end(rounds: int = 3, workers: int = 2) -> dict:
    """Full-stack run of the task-compute Turbine program, three ways:
    the VM backend (default), the compiled-AST backend, and with the
    Tcl compile layer off entirely."""
    from repro.turbine import RuntimeConfig, run_turbine_program

    def run(**flags) -> float:
        cfg = RuntimeConfig.of(workers=workers, **flags)
        t0 = time.perf_counter()
        res = run_turbine_program(TASK_COMPUTE_PROGRAM, cfg)
        elapsed = time.perf_counter() - t0
        assert sorted(res.stdout_lines) == TASK_COMPUTE_EXPECTED
        return elapsed

    vm = min(run() for _ in range(rounds))
    ast = min(run(tcl_exec="ast") for _ in range(rounds))
    off = min(run(tcl_compile=False) for _ in range(rounds))
    return {
        "vm_s": vm,
        "ast_s": ast,
        "interpreted_s": off,
        "speedup": off / vm,
        "speedup_vm_vs_ast": ast / vm,
        "workers": workers,
    }


def test_proc_dispatch_speedup(benchmark):
    """The headline criterion: the VM runs proc-heavy Tcl >= 4x faster
    than interpretation (the AST walk managed ~2.3x)."""
    result = measure_tcl(PROC_PRELUDE, PROC_CALL)
    benchmark.pedantic(
        _time_tcl,
        args=(PROC_PRELUDE, PROC_CALL, True, 30, "vm"),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 4.0, (
        "VM proc dispatch only %.2fx faster than interpreted "
        "(vm %.4fs, interpreted %.4fs)"
        % (result["speedup"], result["vm_s"], result["interpreted_s"])
    )


def test_proc_dispatch_ast_no_regression(benchmark):
    """tcl_exec="ast" keeps the pre-VM compiled-walk performance."""
    result = measure_tcl(PROC_PRELUDE, PROC_CALL)
    benchmark.pedantic(
        _time_tcl, args=(PROC_PRELUDE, PROC_CALL, True, 30), rounds=3, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup_ast"] >= 2.0, (
        "compiled proc dispatch only %.2fx faster than interpreted "
        "(compiled %.4fs, interpreted %.4fs)"
        % (result["speedup_ast"], result["compiled_s"], result["interpreted_s"])
    )


def test_expr_loop_speedup(benchmark):
    """Compiled loop bodies + lowered exprs beat the interpreted walk."""
    result = measure_tcl(EXPR_PRELUDE, EXPR_CALL)
    benchmark.pedantic(
        _time_tcl,
        args=(EXPR_PRELUDE, EXPR_CALL, True, 30, "vm"),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 1.2, (
        "VM expr loop only %.2fx faster than interpreted"
        % result["speedup"]
    )
    # The VM's typed arithmetic bins should not lose to the AST walk.
    assert result["speedup_vm_vs_ast"] >= 0.9, (
        "VM expr loop regressed vs the AST walk: %.2fx"
        % result["speedup_vm_vs_ast"]
    )


def test_end_to_end_vm_speedup(benchmark):
    """The VM must beat the compiled-AST backend >= 1.15x end-to-end on
    the task-compute program (where worker tasks execute real Tcl)."""
    result = measure_end_to_end(rounds=2)
    benchmark.pedantic(
        lambda: measure_end_to_end(rounds=1), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup_vm_vs_ast"] >= 1.15, (
        "VM end-to-end only %.2fx vs the AST backend "
        "(vm %.4fs, ast %.4fs)"
        % (result["speedup_vm_vs_ast"], result["vm_s"], result["ast_s"])
    )


def test_dataflow_hotpath(benchmark):
    """The full runtime with all fast paths on must not lose to off.

    The threshold is deliberately loose (>= 0.9x): this fan-out is
    dominated by thread scheduling, so it guards against a real
    regression while record.py captures the typical improvement.  The
    same bound is applied to the AST backend so `tcl_exec=ast` stays
    within noise of its pre-VM behavior.
    """
    result = measure_dataflow(rounds=2)
    benchmark.pedantic(
        lambda: swift_run(E2E_PROGRAM, workers=2), rounds=2, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 0.9, (
        "fast-path-on end-to-end run regressed: %.2fx vs off"
        % result["speedup"]
    )
    assert result["unoptimized_s"] / result["ast_s"] >= 0.9, (
        "tcl_exec=ast end-to-end run regressed: %.2fx vs off"
        % (result["unoptimized_s"] / result["ast_s"])
    )


def test_cache_metrics_exposed():
    """A traced run exposes the compile/read-cache/VM counters."""
    res = swift_run(E2E_PROGRAM, workers=2, trace=True)
    counters = res.trace.metrics["counters"]
    assert counters.get("tcl.compile.hits", 0) > 0
    assert counters.get("tcl.compile.misses", 0) > 0
    assert "adlb.retrieve_cache.hits" in counters
    assert counters.get("adlb.retrieve_cache.misses", 0) > 0
    assert counters.get("tcl.vm.frames", 0) > 0
    assert counters.get("tcl.vm.cache_hits", 0) > 0


if __name__ == "__main__":
    print("proc :", measure_tcl(PROC_PRELUDE, PROC_CALL))
    print("expr :", measure_tcl(EXPR_PRELUDE, EXPR_CALL))
    print("e2e  :", measure_end_to_end())
    print("flow :", measure_dataflow())
