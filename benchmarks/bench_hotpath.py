"""HOTPATH — the compile-and-cache execution fast path.

Measures the two layers added by the fast-path work against the same
build with the optimizations switched off:

* **Tcl layer** — per-command compiled forms (literal argv, direct
  substitution closures, epoch-guarded command-pointer caches, expr
  AST specialization, proc tail-return elimination) versus the
  interpreted walk (``Interp(compile_enabled=False)``).
* **Runtime layer** — a compute-bound Swift program run end-to-end
  with ``tcl_compile``/``read_cache``/``batch_refcounts`` on versus
  off.

``benchmarks/record.py`` reuses the ``measure_*`` functions here to
write the committed ``BENCH_hotpath.json`` snapshot.

Note on methodology: timings use best-of-rounds on a private
interpreter per round; deep *binary* Tcl recursion (fib-style) is
deliberately excluded because its wall time swings ±50% with the
initial Python stack depth (CPython frame-stack chunk boundaries),
which drowns the effect being measured.
"""

from __future__ import annotations

import time

from repro import swift_run
from repro.tcl.interp import Interp

# Proc-dispatch-heavy: 16 proc calls per loop iteration, exercising
# argument binding, tail returns, and [cmd] substitution closures.
PROC_PRELUDE = """
proc ping {x} { return $x }
proc pong {a b} { return $b }
proc chain {x} {
    set v [ping [pong [ping $x] [ping [ping [pong $x [ping $x]]]]]]
    set v [ping [pong [ping $v] [ping [ping [pong $v [ping $v]]]]]]
    return [ping [ping $v]]
}
proc drive {n} {
    set out {}
    for {set i 0} {$i < $n} {incr i} { set out [chain $i] }
    return $out
}
"""
PROC_CALL = "drive 50"

# Loop/expr-heavy: compiled loop bodies and specialized literal exprs.
EXPR_PRELUDE = """
proc sumsq {n} {
    set total 0
    for {set i 0} {$i < $n} {incr i} {
        set total [expr {$total + $i * $i}]
    }
    return $total
}
"""
EXPR_CALL = "sumsq 400"

# Compute-bound dataflow fan-out for the end-to-end comparison (no
# sleeps): every iteration task retrieves the same shared futures
# (read-cache hits after the first) and drops read references on its
# inputs (coalesced by refcount batching).
E2E_PROGRAM = """
int n = 17;
int m = n * 3 + 2;
foreach i in [0:199] {
    int a = i * n + m;
    if (a %% 7 == 0) { printf("hit %%i", i); }
}
""".replace("%%", "%")
E2E_EXPECTED = sorted(
    "hit %d" % i for i in range(200) if (i * 17 + 17 * 3 + 2) % 7 == 0
)


def _time_tcl(prelude: str, call: str, compile_enabled: bool, iters: int) -> float:
    interp = Interp(compile_enabled=compile_enabled)
    interp.echo = False
    interp.eval(prelude)
    interp.eval(call)  # warm parse/compile caches
    t0 = time.perf_counter()
    for _ in range(iters):
        interp.eval(call)
    return time.perf_counter() - t0


def measure_tcl(
    prelude: str, call: str, iters: int = 60, rounds: int = 3
) -> dict:
    """Best-of-rounds compiled vs interpreted timing for one workload."""
    compiled = min(_time_tcl(prelude, call, True, iters) for _ in range(rounds))
    interpreted = min(_time_tcl(prelude, call, False, iters) for _ in range(rounds))
    return {
        "compiled_s": compiled,
        "interpreted_s": interpreted,
        "speedup": interpreted / compiled,
        "iters": iters,
    }


def measure_end_to_end(rounds: int = 3, workers: int = 2) -> dict:
    """End-to-end runtime with the fast-path optimizations on vs off."""

    def run(**flags) -> float:
        t0 = time.perf_counter()
        res = swift_run(E2E_PROGRAM, workers=workers, **flags)
        elapsed = time.perf_counter() - t0
        assert sorted(res.stdout_lines) == E2E_EXPECTED
        return elapsed

    on = min(run() for _ in range(rounds))
    off = min(
        run(tcl_compile=False, read_cache=False, batch_refcounts=False)
        for _ in range(rounds)
    )
    return {
        "optimized_s": on,
        "unoptimized_s": off,
        "speedup": off / on,
        "workers": workers,
    }


def test_proc_dispatch_speedup(benchmark):
    """The headline criterion: >= 2x on a Tcl-proc-heavy microbenchmark."""
    result = measure_tcl(PROC_PRELUDE, PROC_CALL)
    benchmark.pedantic(
        _time_tcl, args=(PROC_PRELUDE, PROC_CALL, True, 30), rounds=3, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 2.0, (
        "compiled proc dispatch only %.2fx faster than interpreted "
        "(compiled %.4fs, interpreted %.4fs)"
        % (result["speedup"], result["compiled_s"], result["interpreted_s"])
    )


def test_expr_loop_speedup(benchmark):
    """Compiled loop bodies + specialized exprs beat the interpreted walk."""
    result = measure_tcl(EXPR_PRELUDE, EXPR_CALL)
    benchmark.pedantic(
        _time_tcl, args=(EXPR_PRELUDE, EXPR_CALL, True, 30), rounds=3, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 1.2, (
        "compiled expr loop only %.2fx faster than interpreted"
        % result["speedup"]
    )


def test_end_to_end_hotpath(benchmark):
    """The full runtime with all fast paths on must not lose to off.

    The threshold is deliberately loose (>= 0.9x): end-to-end time is
    dominated by thread scheduling, so this guards against a real
    regression while record.py captures the typical improvement.
    """
    result = measure_end_to_end(rounds=2)
    benchmark.pedantic(
        lambda: swift_run(E2E_PROGRAM, workers=2), rounds=2, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 0.9, (
        "fast-path-on end-to-end run regressed: %.2fx vs off"
        % result["speedup"]
    )


def test_cache_metrics_exposed():
    """A traced run exposes the compile/read-cache counters in metrics."""
    res = swift_run(E2E_PROGRAM, workers=2, trace=True)
    counters = res.trace.metrics["counters"]
    assert counters.get("tcl.compile.hits", 0) > 0
    assert counters.get("tcl.compile.misses", 0) > 0
    assert "adlb.retrieve_cache.hits" in counters
    assert counters.get("adlb.retrieve_cache.misses", 0) > 0


if __name__ == "__main__":
    print("proc :", measure_tcl(PROC_PRELUDE, PROC_CALL))
    print("expr :", measure_tcl(EXPR_PRELUDE, EXPR_CALL))
    print("e2e  :", measure_end_to_end())
