"""EMBED — embedded interpreters vs launching interpreter executables.

§III-C: "Previous workflow programming systems call external languages
by executing the external interpreter executables.  This strategy is
undesirable ... because at large scale the filesystem overheads are
unacceptable.  Additionally, on specialized supercomputers such as the
Blue Gene/Q, launching external programs is not possible at all."

Shape to reproduce: per-task latency of the embedded path is orders of
magnitude below ``python -c`` fork/exec; embedded R similar.
"""

from __future__ import annotations

import pytest

from repro.interlang import EmbeddedPython, EmbeddedR, python_exec_baseline

CODE = "v = sum(i * i for i in range(50))"
EXPR = "v"


def test_embed_python_embedded(benchmark):
    emb = EmbeddedPython()
    result = benchmark(lambda: emb.eval(CODE, EXPR))
    assert result == "40425"
    benchmark.extra_info["path"] = "embedded python (retain)"


def test_embed_python_embedded_reinit(benchmark):
    emb = EmbeddedPython(mode="reinit")
    result = benchmark(lambda: emb.eval(CODE, EXPR))
    assert result == "40425"
    benchmark.extra_info["path"] = "embedded python (reinit)"


def test_embed_r_embedded(benchmark):
    emb = EmbeddedR()
    result = benchmark(lambda: emb.eval("v <- sum((0:49)^2)", "v"))
    assert result == "40425"
    benchmark.extra_info["path"] = "embedded R (retain)"


def test_embed_python_fork_exec_baseline(benchmark):
    """The rejected strategy: launch the interpreter executable."""
    result = benchmark.pedantic(
        lambda: python_exec_baseline(CODE, EXPR), rounds=5, iterations=1
    )
    assert result == "40425"
    benchmark.extra_info["path"] = "fork/exec python -c"


def test_embed_speedup_summary(benchmark):
    """One row computing the headline ratio embedded vs fork/exec."""
    import time

    emb = EmbeddedPython()

    def measure():
        t0 = time.perf_counter()
        for _ in range(50):
            emb.eval(CODE, EXPR)
        embedded = (time.perf_counter() - t0) / 50
        t0 = time.perf_counter()
        for _ in range(3):
            python_exec_baseline(CODE, EXPR)
        forked = (time.perf_counter() - t0) / 3
        return embedded, forked

    embedded, forked = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = forked / embedded
    benchmark.extra_info["embedded_s"] = round(embedded, 6)
    benchmark.extra_info["fork_exec_s"] = round(forked, 6)
    benchmark.extra_info["speedup"] = round(ratio, 1)
    assert ratio > 10, "embedded path should be >10x faster than fork/exec"
