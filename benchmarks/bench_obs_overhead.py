"""OBS — overhead of the repro.obs tracing layer.

Two claims guarded here:

1. **Zero-cost when disabled** (the tier-1 guard): with ``trace=False``
   every instrumented call site reduces to a ``tracer is None`` test,
   so a traced-off run of the quickstart program must stay within noise
   of the seed timing recorded in ``conftest.QUICKSTART_SEED_S``.
2. **Bounded cost when enabled**: tracing is a ring-buffer append per
   event; a traced run of the same program must not blow up the wall
   time (generous 10x bound — it is far lower in practice).
"""

from __future__ import annotations

from conftest import assert_within_seed_noise, series

from repro import swift_run

# Trimmed quickstart: same shape (dataflow foreach + embedded Python
# leaf tasks), no subprocess spawn so rounds stay fast and stable.
QUICKSTART = """
(int o) square(int x) {
    o = x * x;
}
int squares[];
foreach i in [0:9] {
    squares[i] = square(i);
}
printf("sum of squares 0..9 = %i", sum_integer(squares));
string py = python("import math; v = math.factorial(10)", "v");
printf("python says 10! = %s", py);
"""


def run_quickstart(**options):
    res = swift_run(QUICKSTART, workers=4, **options)
    assert "sum of squares 0..9 = 285" in res.stdout
    assert "3628800" in res.stdout
    return res


def measure_obs_overhead(rounds: int = 5) -> dict:
    """Best-of-rounds traced-off vs traced-on wall time (plus event
    count), recorded into BENCH_hotpath.json by ``record.py``."""
    import time

    def best(**options):
        times, res = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            res = run_quickstart(**options)
            times.append(time.perf_counter() - t0)
        return min(times), res

    off, _ = best()
    on, traced = best(trace=True)
    return {
        "traced_off_s": off,
        "traced_on_s": on,
        "overhead_ratio": on / off,
        "events": len(traced.trace),
    }


def test_traced_off_within_seed_noise(benchmark):
    """Tier-1 guard: the no-op fast path must not regress the seed."""
    benchmark.pedantic(run_quickstart, rounds=5, iterations=1, warmup_rounds=1)
    series(benchmark, traced=False)
    assert_within_seed_noise(benchmark.stats.stats.mean)


def test_traced_on_bounded_overhead(benchmark):
    res = benchmark.pedantic(
        lambda: run_quickstart(trace=True),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    series(benchmark, traced=True, events=len(res.trace))
    assert len(res.trace) > 0
    assert_within_seed_noise(benchmark.stats.stats.mean, seed_s=0.16 * 10)
