"""OBS — overhead of the repro.obs tracing layer.

Three claims guarded here:

1. **Zero-cost when disabled** (the tier-1 guard): with ``trace=False``
   every instrumented call site reduces to a ``tracer is None`` test,
   so a traced-off run of the quickstart program must stay within noise
   of the seed timing recorded in ``conftest.QUICKSTART_SEED_S``.
2. **Bounded cost when enabled**: tracing is a ring-buffer append per
   event; a traced run of the same program must not blow up the wall
   time (generous 10x bound — it is far lower in practice).
3. **Near-zero flight-recorder cost**: the always-on flight recorder
   (``flightrec=True``, the default) stamps ring slots inline in the
   ``mpi.comm`` send/recv paths; a recorder-on run must stay within
   1.05x of a recorder-off run end-to-end (median of paired rounds).
"""

from __future__ import annotations

from conftest import assert_within_seed_noise, series

from repro import swift_run

# Trimmed quickstart: same shape (dataflow foreach + embedded Python
# leaf tasks), no subprocess spawn so rounds stay fast and stable.
QUICKSTART = """
(int o) square(int x) {
    o = x * x;
}
int squares[];
foreach i in [0:9] {
    squares[i] = square(i);
}
printf("sum of squares 0..9 = %i", sum_integer(squares));
string py = python("import math; v = math.factorial(10)", "v");
printf("python says 10! = %s", py);
"""


def run_quickstart(**options):
    res = swift_run(QUICKSTART, workers=4, **options)
    assert "sum of squares 0..9 = 285" in res.stdout
    assert "3628800" in res.stdout
    return res


def measure_obs_overhead(rounds: int = 5) -> dict:
    """Best-of-rounds traced-off vs traced-on wall time (plus event
    count), recorded into BENCH_hotpath.json by ``record.py``."""
    import time

    def best(**options):
        times, res = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            res = run_quickstart(**options)
            times.append(time.perf_counter() - t0)
        return min(times), res

    off, _ = best()
    on, traced = best(trace=True)
    return {
        "traced_off_s": off,
        "traced_on_s": on,
        "overhead_ratio": on / off,
        "events": len(traced.trace),
    }


# Guard workload for the flight-recorder budget: leaf tasks that do
# real work (a few ms of Python compute each), the shape the recorder's
# near-zero-overhead claim is actually about.  The zero-compute
# QUICKSTART above is deliberately NOT the guard: a run that is 100%
# protocol chatter on a 1-cpu CI container is chaotically sensitive to
# any perturbation of GIL hand-off timing (paired ratios there swing
# 0.8x-1.25x either way), so it cannot resolve the recorder's
# sub-millisecond true cost.
RECORDER_WORK = """
foreach i in [0:15] {
    string out = python("v = sum(x*x for x in range(30000))", "v");
    printf("t %s", out);
}
"""


def run_recorder_work(**options):
    res = swift_run(RECORDER_WORK, workers=4, **options)
    assert res.stdout.count("t ") == 16
    return res


def measure_flightrec_overhead(rounds: int = 9) -> dict:
    """Recorder-off vs recorder-on (the default) end-to-end wall time.

    Interleaved (off, on) pairs with a median-of-ratios estimator: on a
    single-cpu CI container the wall clock drifts between blocks (heap
    growth, neighbor load, GC cadence), so comparing two best-of blocks
    measured minutes apart is unsound — pairing puts both sides of each
    ratio a few milliseconds apart, and the median sheds the scheduler
    outliers.  Recorded into BENCH_hotpath.json by ``record.py``.
    """
    import time

    def once(**options):
        t0 = time.perf_counter()
        run_recorder_work(**options)
        return time.perf_counter() - t0

    once(flightrec=False)
    once()  # warm both paths before measuring
    offs, ons = [], []
    for _ in range(rounds):
        offs.append(once(flightrec=False))
        ons.append(once())
    ratios = sorted(on / off for off, on in zip(offs, ons))
    return {
        "flightrec_off_s": min(offs),
        "flightrec_on_s": min(ons),
        "overhead_ratio": ratios[len(ratios) // 2],
    }


def test_flightrec_overhead_guard():
    """The acceptance guard: recorder-on (the default) end-to-end wall
    time must stay within 1.05x of recorder-off, median of paired
    rounds."""
    m = measure_flightrec_overhead(rounds=9)
    assert m["overhead_ratio"] <= 1.05, (
        "flight recorder overhead %.3fx exceeds the 1.05x budget (%r)"
        % (m["overhead_ratio"], m)
    )


def test_traced_off_within_seed_noise(benchmark):
    """Tier-1 guard: the no-op fast path must not regress the seed."""
    benchmark.pedantic(run_quickstart, rounds=5, iterations=1, warmup_rounds=1)
    series(benchmark, traced=False)
    assert_within_seed_noise(benchmark.stats.stats.mean)


def test_traced_on_bounded_overhead(benchmark):
    res = benchmark.pedantic(
        lambda: run_quickstart(trace=True),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    series(benchmark, traced=True, events=len(res.trace))
    assert len(res.trace) > 0
    assert_within_seed_noise(benchmark.stats.stats.mean, seed_s=0.16 * 10)
