"""FAULTS — overhead of the fault-tolerance machinery when idle.

Two configurations of the same program:

* **leases off** — ``max_retries=0``: no lease table is allocated, the
  per-hook cost is a single ``is None`` / flag test.  This is the
  tier-1 guard: it must stay within noise of the seed timing.
* **leases on** (the default ``on_error="retry"``): the server grants
  and clears a lease per handed-out task.  With no faults injected the
  added work is one dict store/pop per task, so the ratio against the
  leases-off run must stay near 1.

``benchmarks/record.py`` reuses :func:`measure_faults_overhead` for the
committed ``BENCH_hotpath.json`` snapshot.
"""

from __future__ import annotations

import time

from conftest import assert_within_seed_noise, series

from repro import swift_run

# Same shape as the obs-overhead quickstart: dataflow fan-out with
# embedded-Python leaf tasks, no subprocess spawn.
PROGRAM = """
(int o) square(int x) {
    o = x * x;
}
int squares[];
foreach i in [0:9] {
    squares[i] = square(i);
}
printf("sum of squares 0..9 = %i", sum_integer(squares));
"""


def run_program(**options):
    res = swift_run(PROGRAM, workers=4, **options)
    assert "sum of squares 0..9 = 285" in res.stdout
    return res


def measure_faults_overhead(rounds: int = 5) -> dict:
    """Best-of-rounds leases-on (default) vs leases-off wall time."""

    def best(**options) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            run_program(**options)
            times.append(time.perf_counter() - t0)
        return min(times)

    off = best(max_retries=0)
    on = best()  # defaults: on_error="retry", max_retries=2
    return {
        "leases_off_s": off,
        "leases_on_s": on,
        "overhead_ratio": on / off,
    }


def measure_journal_overhead(rounds: int = 5) -> dict:
    """Best-of-rounds rule-table journaling on vs off wall time.

    Two engines so journaling is legal (and its default); one server so
    the flushes are plain oneway sends, isolating the journal cost from
    the reliable-RPC machinery measured by the replication benchmark.
    With no faults injected the engine only flushes at its blocking
    boundaries, so the budget is tight: the ratio must stay <= 1.1.
    """

    def best(**options) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            run_program(engines=2, **options)
            times.append(time.perf_counter() - t0)
        return min(times)

    off = best(journal=False)
    on = best(journal=True)
    return {
        "journal_off_s": off,
        "journal_on_s": on,
        "overhead_ratio": on / off,
    }


def measure_audit_overhead(rounds: int = 5) -> dict:
    """Best-of-rounds run-invariant auditing on vs off wall time.

    Auditing is one terminal bookkeeping snapshot per rank plus the
    conservation-law pass in the driver — all after the run's last
    task, so the on-path budget is tight (<= 1.1x) and the off path is
    one flag test per rank at teardown.
    """

    def best(**options) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            run_program(servers=2, engines=2, **options)
            times.append(time.perf_counter() - t0)
        return min(times)

    off = best()
    on = best(audit=True)
    return {
        "audit_off_s": off,
        "audit_on_s": on,
        "overhead_ratio": on / off,
    }


def test_faults_off_within_seed_noise(benchmark):
    """Tier-1 guard: with leases disabled nothing in the fault layer
    may cost more than its ``is None`` checks."""
    benchmark.pedantic(
        lambda: run_program(max_retries=0), rounds=5, iterations=1, warmup_rounds=1
    )
    series(benchmark, leases=False)
    assert_within_seed_noise(benchmark.stats.stats.mean)


def test_faults_default_within_seed_noise(benchmark):
    """The default config (leases on, no faults injected) must also
    stay within the seed-noise budget — lease bookkeeping is one dict
    store/pop per task."""
    benchmark.pedantic(run_program, rounds=5, iterations=1, warmup_rounds=1)
    series(benchmark, leases=True)
    assert_within_seed_noise(benchmark.stats.stats.mean)


def test_journal_overhead_within_budget():
    """Floor guard: surviving engine death may cost at most 1.1x.

    Journaling batches rule-lifecycle entries and flushes them as one
    oneway send per blocking boundary; anything above the budget means
    a flush crept into a hot per-rule path."""
    ratio = measure_journal_overhead(rounds=3)["overhead_ratio"]
    assert ratio <= 1.1, "journaling overhead %.2fx exceeds 1.1x" % ratio


def test_audit_off_within_seed_noise(benchmark):
    """Tier-1 guard: with auditing off (the default) the hooks are one
    flag test per rank at teardown — within noise of the seed."""
    benchmark.pedantic(
        lambda: run_program(servers=2, engines=2),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    series(benchmark, audit=False)
    assert_within_seed_noise(benchmark.stats.stats.mean)


def test_audit_overhead_within_budget():
    """Auditing happens entirely at shutdown (one snapshot per rank,
    one law pass in the driver), so turning it on may cost at most
    1.1x — anything above means a check crept into a per-task path."""
    ratio = measure_audit_overhead(rounds=3)["overhead_ratio"]
    assert ratio <= 1.1, "audit overhead %.2fx exceeds 1.1x" % ratio
