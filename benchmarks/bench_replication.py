"""REPLICATION — cost of buddy replication of ADLB server state.

Two configurations of the same two-server program:

* **replication off** — ``replicate=False``: no op-log, no heartbeats;
  the per-dispatch cost is a flag test and an empty-buffer check.
  This is the tier-1 guard: it must stay within noise of the seed
  timing, so fault tolerance costs nothing unless it is switched on.
* **replication on** (the default with ``on_error="retry"`` and two
  servers): every server mutation is appended to an op-log batch and
  flushed to the buddy at the dispatch boundary, and clients run the
  reliable (seq-stamped, re-sendable) RPC protocol.  The measured
  ratio against the replication-off run is *recorded* — it is the
  documented price of surviving server death, not a regression gate.

``benchmarks/record.py`` reuses :func:`measure_replication_overhead`
for the committed ``BENCH_hotpath.json`` snapshot.
"""

from __future__ import annotations

import time

from conftest import assert_within_seed_noise, series

from repro import swift_run

PROGRAM = """
(int o) square(int x) {
    o = x * x;
}
int squares[];
foreach i in [0:9] {
    squares[i] = square(i);
}
printf("sum of squares 0..9 = %i", sum_integer(squares));
"""


def run_program(**options):
    res = swift_run(PROGRAM, workers=4, servers=2, **options)
    assert "sum of squares 0..9 = 285" in res.stdout
    return res


def measure_replication_overhead(rounds: int = 5) -> dict:
    """Best-of-rounds replication-on vs replication-off wall time."""

    def best(**options) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            run_program(**options)
            times.append(time.perf_counter() - t0)
        return min(times)

    off = best(replicate=False)
    on = best(replicate=True)
    return {
        "replication_off_s": off,
        "replication_on_s": on,
        "overhead_ratio": on / off,
    }


def test_replication_off_within_seed_noise(benchmark):
    """Tier-1 guard: with replication disabled the fault-tolerance
    layer may cost nothing beyond its flag tests."""
    benchmark.pedantic(
        lambda: run_program(replicate=False),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    series(benchmark, replicate=False)
    assert_within_seed_noise(benchmark.stats.stats.mean)


def test_replication_on_overhead_recorded(benchmark):
    """Replication on: record the overhead (op-log batches, heartbeat
    flushes, reliable-RPC sequencing) against the same program.  The
    run must still produce the right answer; the timing is a recorded
    series, not a floor/ceiling assertion."""
    benchmark.pedantic(
        lambda: run_program(replicate=True),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    series(benchmark, replicate=True)
