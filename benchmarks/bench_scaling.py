"""SCALE — scalability of the runtime (the §I claim of "hundreds of
thousands of cores" with no central bottleneck in the Swift logic).

Two series:

* real-runtime throughput on thread-backed ranks (small scale);
* the DES model at 2^6 .. 2^14 simulated ranks, single- vs
  multi-server, reproducing the *shape*: near-linear task throughput
  when servers are scaled with workers, saturation with one server.
"""

from __future__ import annotations

import pytest

from repro import swift_run
from repro.simcluster import ClusterParams, constant, simulate

TASKS_PER_WORKER = 6


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_scale_real_runtime(benchmark, workers):
    n = workers * 10
    src = 'foreach i in [0:%d] { trace(python("x = 1", "x")); }' % (n - 1)

    def run():
        res = swift_run(src, workers=workers)
        assert res.tasks_run == n
        return res

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tasks_per_sec"] = round(n / res.elapsed, 1)


@pytest.mark.parametrize("ranks_exp", [6, 8, 10, 12, 14])
def test_scale_des_scaled_servers(benchmark, ranks_exp):
    """Servers scale with workers (1 per 64): throughput keeps climbing."""
    total = 2**ranks_exp

    def run():
        servers = max(1, total // 64)
        engines = max(1, total // 128)
        workers = total - servers - engines
        params = ClusterParams(
            n_workers=workers, n_servers=servers, n_engines=engines
        )
        return simulate(params, constant(workers * TASKS_PER_WORKER, 1e-3))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ranks"] = total
    benchmark.extra_info["sim_tasks_per_sec"] = round(res.tasks_per_sec)
    benchmark.extra_info["worker_utilization"] = round(res.worker_utilization, 3)


@pytest.mark.parametrize("ranks_exp", [8, 10, 12])
def test_scale_des_single_server_bottleneck(benchmark, ranks_exp):
    """Ablation: one ADLB server saturates as ranks grow."""
    total = 2**ranks_exp

    def run():
        params = ClusterParams(
            n_workers=total - 9,
            n_servers=1,
            n_engines=8,
            server_op_time=5e-6,
        )
        return simulate(
            params, constant(params.n_workers * TASKS_PER_WORKER, 1e-3)
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ranks"] = total
    benchmark.extra_info["sim_tasks_per_sec"] = round(res.tasks_per_sec)
    benchmark.extra_info["server_utilization"] = round(
        max(res.server_utilization), 3
    )


@pytest.mark.parametrize("steal", [True, False])
def test_scale_des_steal_ablation(benchmark, steal):
    """Work stealing keeps throughput up when work lands unevenly."""
    total = 512

    def run():
        params = ClusterParams(
            n_workers=total - 10,
            n_servers=8,
            n_engines=2,  # few engines: puts concentrate on few servers
            steal=steal,
        )
        return simulate(
            params, constant(params.n_workers * TASKS_PER_WORKER, 1e-3)
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["steal"] = steal
    benchmark.extra_info["sim_tasks_per_sec"] = round(res.tasks_per_sec)
    benchmark.extra_info["steals"] = res.steals
