"""FIG3 — SWIG-bound native calls from Swift/Tcl (paper Fig. 3, §III).

The figure's claim: the SWIG pipeline makes functions in ``afunc.o``
callable from Swift/T.  The quantitative shape worth checking is call
overhead by language boundary, per leaf-task invocation:

    plain Tcl proc  <  SWIG-bound native  <  embedded Python  ~  embedded R

all of which are orders of magnitude below fork/exec (see EMBED).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interlang import register_blobutils, register_python, register_r
from repro.swig import NativeLibrary, register_library
from repro.tcl import Interp


def make_interp() -> Interp:
    it = Interp()
    it.echo = False
    register_blobutils(it)
    register_python(it)
    register_r(it)
    lib = NativeLibrary("kern")

    @lib.function("double fma(double a, double b, double c);")
    def fma(a, b, c):
        return a * b + c

    @lib.function("double arr_sum(double* x, int n);")
    def arr_sum(x, n):
        return float(np.sum(x[:n]))

    register_library(it, lib)
    it.eval("proc tcl_fma { a b c } { expr { $a * $b + $c } }")
    return it


@pytest.fixture(scope="module")
def interp():
    return make_interp()


def test_fig3_tcl_proc_call(benchmark, interp):
    result = benchmark(lambda: interp.eval("tcl_fma 2.0 3.0 4.0"))
    assert result == "10.0"
    benchmark.extra_info["boundary"] = "pure Tcl proc"


def test_fig3_swig_native_call(benchmark, interp):
    result = benchmark(lambda: interp.eval("kern::fma 2.0 3.0 4.0"))
    assert result == "10.0"
    benchmark.extra_info["boundary"] = "SWIG-bound native"


def test_fig3_swig_native_blob_call(benchmark, interp):
    interp.eval("set ::benchblob [ blobutils::create_floats 1.0 2.0 3.0 4.0 ]")
    result = benchmark(lambda: interp.eval("kern::arr_sum $::benchblob 4"))
    assert result == "10.0"
    benchmark.extra_info["boundary"] = "SWIG-bound native + blob arg"


def test_fig3_embedded_python_call(benchmark, interp):
    result = benchmark(
        lambda: interp.eval("python::eval {v = 2.0 * 3.0 + 4.0} {v}")
    )
    assert result == "10.0"
    benchmark.extra_info["boundary"] = "embedded Python"


def test_fig3_embedded_r_call(benchmark, interp):
    result = benchmark(lambda: interp.eval("r::eval {v <- 2 * 3 + 4} {v}"))
    assert result == "10"
    benchmark.extra_info["boundary"] = "embedded R"


def test_fig3_end_to_end_native_leaf(benchmark):
    """A native call as an actual Swift leaf task over the runtime."""
    from repro import SwiftRuntime
    from repro.swig import install_package

    lib = NativeLibrary("kern")

    @lib.function("double fma(double a, double b, double c);")
    def fma(a, b, c):
        return a * b + c

    src = """
(float o) nfma(float a, float b, float c) "kern" "1.0" [
    "set <<o>> [ kern::fma <<a>> <<b>> <<c>> ]"
];
float results[];
foreach i in [0:31] {
    results[i] = nfma(tofloat(i), 2.0, 1.0);
}
printf("%s", fromfloat(sum_float(results)));
"""
    rt = SwiftRuntime(
        workers=4,
        setup=lambda interp, ctx, client: install_package(interp, lib),
    )

    def run():
        res = rt.run(src)
        assert res.stdout_lines == ["1024.0"]
        return res

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["boundary"] = "full Swift leaf task (32 calls)"
