"""Record the hot-path benchmark numbers into BENCH_hotpath.json.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record.py

Reuses the ``measure_*`` functions from :mod:`bench_hotpath` so the
committed snapshot and the pytest assertions measure the same thing.
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_faults import (  # noqa: E402
    measure_audit_overhead,
    measure_faults_overhead,
    measure_journal_overhead,
)
from bench_obs_overhead import (  # noqa: E402
    measure_flightrec_overhead,
    measure_obs_overhead,
)
from bench_replication import measure_replication_overhead  # noqa: E402
from bench_hotpath import (  # noqa: E402
    EXPR_CALL,
    EXPR_PRELUDE,
    PROC_CALL,
    PROC_PRELUDE,
    measure_dataflow,
    measure_end_to_end,
    measure_tcl,
)

OUT = Path(__file__).parent.parent / "BENCH_hotpath.json"


def main() -> None:
    results = {
        "recorded": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "tcl_proc_dispatch": measure_tcl(PROC_PRELUDE, PROC_CALL),
        "tcl_expr_loop": measure_tcl(EXPR_PRELUDE, EXPR_CALL),
        "end_to_end": measure_end_to_end(rounds=5),
        "dataflow_fanout": measure_dataflow(rounds=5),
        "bench_faults_overhead": measure_faults_overhead(rounds=5),
        "bench_journal_overhead": measure_journal_overhead(rounds=5),
        "bench_audit_overhead": measure_audit_overhead(rounds=5),
        "bench_replication_overhead": measure_replication_overhead(rounds=5),
        "bench_obs_overhead": measure_obs_overhead(rounds=5),
        "bench_flightrec_overhead": measure_flightrec_overhead(rounds=7),
    }
    OUT.write_text(json.dumps(results, indent=2) + "\n")
    for name in ("tcl_proc_dispatch", "tcl_expr_loop", "end_to_end"):
        print("%-18s %.2fx" % (name, results[name]["speedup"]))
    print(
        "%-18s %.2fx" % (
            "e2e_vm_vs_ast",
            results["end_to_end"]["speedup_vm_vs_ast"],
        )
    )
    print(
        "%-18s %.2fx" % (
            "dataflow_fanout", results["dataflow_fanout"]["speedup"]
        )
    )
    print(
        "%-18s %.2fx" % (
            "faults_overhead",
            results["bench_faults_overhead"]["overhead_ratio"],
        )
    )
    print(
        "%-18s %.2fx" % (
            "journal_overhead",
            results["bench_journal_overhead"]["overhead_ratio"],
        )
    )
    print(
        "%-18s %.2fx" % (
            "audit_overhead",
            results["bench_audit_overhead"]["overhead_ratio"],
        )
    )
    print(
        "%-18s %.2fx" % (
            "repl_overhead",
            results["bench_replication_overhead"]["overhead_ratio"],
        )
    )
    print(
        "%-18s %.2fx" % (
            "obs_overhead",
            results["bench_obs_overhead"]["overhead_ratio"],
        )
    )
    print(
        "%-18s %.2fx" % (
            "flightrec_overhead",
            results["bench_flightrec_overhead"]["overhead_ratio"],
        )
    )
    print("wrote", OUT)


if __name__ == "__main__":
    main()
