"""STC — compiler cost and the effect of optimization levels.

Supporting benchmark for the DESIGN.md ablations: compile time per
program, emitted-code size, and dynamic Turbine-operation count at
-O0 / -O1 / -O2 (folding, branch elimination, constant propagation,
spawn-time arithmetic).
"""

from __future__ import annotations

import pytest

from repro.core import compile_swift

SMALL = 'printf("hello %i", 1 + 2);'

MEDIUM = """
(int o) f(int x) { o = x * 2 + 1; }
(int o) g(int x, int y) { o = f(x) + f(y); }
int a[];
foreach i in [0:63] {
    a[i] = g(i, i + 1);
}
printf("%i", sum_integer(a));
"""

LARGE = "\n".join(
    [
        "(int o) k%d(int x) { o = x + %d; }" % (i, i)
        for i in range(25)
    ]
    + ["int a%d[] ;".replace(" ;", ";") % i for i in range(10)]
    + [
        "foreach i in [0:9] { a%d[i] = k%d(i * %d); }" % (i, i % 25, i + 1)
        for i in range(10)
    ]
    + ['printf("%%i", sum_integer(a0) + sum_integer(a9));']
)

PROGRAMS = {"small": SMALL, "medium": MEDIUM, "large": LARGE}


@pytest.mark.parametrize("name", list(PROGRAMS))
@pytest.mark.parametrize("opt", [0, 1, 2])
def test_stc_compile_time(benchmark, name, opt):
    src = PROGRAMS[name]
    compiled = benchmark(lambda: compile_swift(src, opt=opt))
    benchmark.extra_info["program"] = name
    benchmark.extra_info["opt"] = opt
    benchmark.extra_info["emitted_lines"] = compiled.n_lines
    benchmark.extra_info["procs"] = compiled.n_procs


def count_ops(text: str) -> int:
    """Static count of Turbine operations in the emitted program."""
    return sum(text.count(op) for op in (
        "turbine::allocate",
        "turbine::rule",
        "turbine::store",
        "turbine::spawn",
    ))


def test_stc_optimization_reduces_ops(benchmark):
    src = (
        "int base = 10;\n"
        "int scale = 3;\n"
        "int a[];\n"
        "foreach i in [0:31] { a[i] = base + i * scale; }\n"
        'printf("%i", sum_integer(a));\n'
    )

    def measure():
        return {opt: count_ops(compile_swift(src, opt=opt).tcl_text) for opt in (0, 1, 2)}

    ops = benchmark.pedantic(measure, rounds=2, iterations=1)
    benchmark.extra_info["ops_O0"] = ops[0]
    benchmark.extra_info["ops_O1"] = ops[1]
    benchmark.extra_info["ops_O2"] = ops[2]
    assert ops[2] <= ops[1] <= ops[0]


def test_stc_runtime_effect_of_opt(benchmark):
    """Dynamic effect: -O2 runs the same program with fewer engine rules."""
    from repro import SwiftRuntime

    src = (
        "int base = 7;\n"
        "int a[];\n"
        "foreach i in [0:19] { a[i] = base + i; }\n"
        'printf("%i", sum_integer(a));\n'
    )

    def measure():
        rules = {}
        for opt in (0, 2):
            res = SwiftRuntime(workers=2, opt=opt).run(src)
            assert res.stdout_lines == ["330"]
            rules[opt] = sum(e.rules_created for e in res.engine_stats)
        return rules

    rules = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rules_O0"] = rules[0]
    benchmark.extra_info["rules_O2"] = rules[2]
    assert rules[2] < rules[0]
