"""FIG1 — the paper's Fig. 1 dataflow: parallel f->g pipelines.

Reproduces the behavioral claim behind the figure: the ``foreach``
builds one two-stage pipeline per iteration; each g(t) blocks only on
its own f(t); adding workers shortens the makespan because independent
pipelines run concurrently.

The benchmark rows (workers = 1, 2, 4, 8) regenerate the series: with
per-task sleeps fixed, elapsed time should drop as workers grow — the
figure's implicit claim that Swift "will construct and execute these
pipelines in parallel on any available resources".
"""

from __future__ import annotations

import pytest

from repro import swift_run

# f sleeps, g sleeps; 8 pipelines of 2 stages
FIG1_PROGRAM = """
(int t) f(int i) "python" "1.0" [
    "set code [ string map [ list IVAL <<i>> ] {import time; time.sleep(0.03); x = IVAL * IVAL} ]
     set <<t>> [ python::eval $code {x} ]"
];
(int z) g(int t) "python" "1.0" [
    "set code [ string map [ list TVAL <<t>> ] {import time; time.sleep(0.03); z = TVAL %% 2} ]
     set <<z>> [ python::eval $code {z} ]"
];
foreach i in [0:7] {
    int t = f(i);
    if (g(t) == 0) { printf("g(%%i) == 0", t); }
}
""".replace("%%", "%")


def run_fig1(workers: int):
    res = swift_run(FIG1_PROGRAM, workers=workers)
    assert sorted(res.stdout_lines) == sorted(
        "g(%d) == 0" % (i * i) for i in range(0, 8, 2)
    )
    return res


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_fig1_pipeline_scaling(benchmark, workers):
    res = benchmark.pedantic(run_fig1, args=(workers,), rounds=3, iterations=1)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tasks"] = res.tasks_run
    benchmark.extra_info["pipelines"] = 8


def test_fig1_dependency_structure(benchmark):
    """g(t) never starts before its own f(t) finishes, but pipelines overlap."""

    def run():
        res = swift_run(FIG1_PROGRAM, workers=4, trace=True)
        spans = sorted((e.t, e.end) for e in res.trace.spans("task"))
        # 16 tasks; at least two must overlap in time (parallel pipelines)
        overlaps = sum(
            1
            for a in range(len(spans))
            for b in range(a + 1, len(spans))
            if spans[a][1] > spans[b][0]
        )
        assert len(spans) == 16
        assert overlaps > 0, "pipelines never overlapped"
        return res

    benchmark.pedantic(run, rounds=2, iterations=1)
