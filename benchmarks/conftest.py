"""Benchmark helpers."""

from __future__ import annotations

# Seed wall-time of the quickstart program on the tier-1 reference
# machine, measured before repro.obs instrumentation landed (~0.03-0.16s
# warm/cold).  The traced-off guard in bench_obs_overhead.py asserts
# runs stay within NOISE_FACTOR of this, so the zero-cost fast path
# can't silently regress.
QUICKSTART_SEED_S = 0.16
NOISE_FACTOR = 4.0


def series(benchmark, **info) -> None:
    """Attach series values to the pytest-benchmark row."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def assert_within_seed_noise(mean_s: float, seed_s: float = QUICKSTART_SEED_S) -> None:
    """Tier-1 guard: a traced-off run must stay within noise of the seed."""
    budget = seed_s * NOISE_FACTOR
    assert mean_s < budget, (
        "traced-off run took %.3fs, over the %.3fs seed-noise budget "
        "(seed %.3fs x %.1f) — the obs no-op fast path has regressed"
        % (mean_s, budget, seed_s, NOISE_FACTOR)
    )
