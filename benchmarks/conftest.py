"""Benchmark helpers."""

from __future__ import annotations


def series(benchmark, **info) -> None:
    """Attach series values to the pytest-benchmark row."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
