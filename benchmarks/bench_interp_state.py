"""STATE — retain vs reinitialize interpreter state (§III-C).

"One approach is to finalize the interpreter at the end of each task
and reinitialize it ... This approach raises concerns about
performance ... Thus, we provide options to either retain the
interpreter or reinitialize it."

Workload: tasks whose preamble (imports / helper definitions) is
expensive relative to the task body.  Retain pays the preamble once;
reinit pays it every task.  Also demonstrates the paper's aside that
"old interpreter state can also be used to store useful data".
"""

from __future__ import annotations

import pytest

from repro.interlang import EmbeddedPython, EmbeddedR

PY_PREAMBLE = (
    "import math, json, functools\n"
    "TABLE = {i: math.sin(i / 100.0) for i in range(2000)}\n"
    "def lookup(i):\n"
    "    return TABLE[i % 2000]\n"
)
PY_TASK = "v = lookup(1234)"

R_PREAMBLE = "tbl <- sin(seq_len(2000) / 100); look <- function(i) tbl[i]"
R_TASK = "v <- look(1234)"


def test_state_python_retain(benchmark):
    emb = EmbeddedPython(mode="retain", preamble=PY_PREAMBLE)

    def task():
        return emb.eval(PY_TASK, "round(v, 6)")

    benchmark(task)
    benchmark.extra_info["mode"] = "retain"
    benchmark.extra_info["inits"] = emb.init_count


def test_state_python_reinit(benchmark):
    emb = EmbeddedPython(mode="reinit", preamble=PY_PREAMBLE)

    def task():
        return emb.eval(PY_TASK, "round(v, 6)")

    benchmark(task)
    benchmark.extra_info["mode"] = "reinit"
    benchmark.extra_info["inits"] = emb.init_count


def test_state_r_retain(benchmark):
    emb = EmbeddedR(mode="retain", preamble=R_PREAMBLE)
    benchmark(lambda: emb.eval(R_TASK, "v"))
    benchmark.extra_info["mode"] = "retain"


def test_state_r_reinit(benchmark):
    emb = EmbeddedR(mode="reinit", preamble=R_PREAMBLE)
    benchmark(lambda: emb.eval(R_TASK, "v"))
    benchmark.extra_info["mode"] = "reinit"


def test_state_retain_cost_ratio(benchmark):
    """Headline row: reinit/retain per-task cost ratio for this preamble."""
    import time

    retain = EmbeddedPython(mode="retain", preamble=PY_PREAMBLE)
    reinit = EmbeddedPython(mode="reinit", preamble=PY_PREAMBLE)

    def measure():
        t0 = time.perf_counter()
        for _ in range(30):
            retain.eval(PY_TASK, "v")
        t_retain = (time.perf_counter() - t0) / 30
        t0 = time.perf_counter()
        for _ in range(30):
            reinit.eval(PY_TASK, "v")
        t_reinit = (time.perf_counter() - t0) / 30
        return t_retain, t_reinit

    t_retain, t_reinit = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["retain_s"] = round(t_retain, 6)
    benchmark.extra_info["reinit_s"] = round(t_reinit, 6)
    benchmark.extra_info["ratio"] = round(t_reinit / t_retain, 1)
    assert t_reinit > 3 * t_retain


def test_state_cache_reuse_pattern(benchmark):
    """'Old interpreter state can also be used to store useful data.'"""
    emb = EmbeddedPython(mode="retain")
    emb.eval("cache = {}", "")

    def memoized_task():
        return emb.eval(
            "k = 911\n"
            "if k not in cache:\n"
            "    cache[k] = sum(i * i for i in range(k))\n"
            "v = cache[k]",
            "v",
        )

    result = benchmark(memoized_task)
    assert result == str(sum(i * i for i in range(911)))
    benchmark.extra_info["pattern"] = "cross-task memoization via retained state"
