"""BLOB — bulk binary data via blobs vs string marshaling (§III-B).

"scientific users of native code languages often desire to operate on
bulk data in arrays.  The Swift approach to these is to handle pointers
to byte arrays as a novel type: blob."

Baseline: printing doubles into text and re-parsing (what a
string-typed interface would force).  Shape: blob cost is ~memcpy and
grows slowly with N; string marshaling is many times slower and the gap
widens with N.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blob import (
    blob_from_floats,
    blob_to_floats,
    floats_from_string,
    floats_to_string,
)

SIZES = [100, 10_000, 1_000_000]


def data(n: int) -> np.ndarray:
    return np.random.RandomState(0).uniform(-1e3, 1e3, n)


@pytest.mark.parametrize("n", SIZES)
def test_blob_round_trip(benchmark, n):
    values = data(n)

    def run():
        return blob_to_floats(blob_from_floats(values))

    out = benchmark(run)
    assert out.size == n
    benchmark.extra_info["n_doubles"] = n
    benchmark.extra_info["path"] = "blob"


@pytest.mark.parametrize("n", SIZES)
def test_string_marshal_round_trip(benchmark, n):
    values = data(n)

    def run():
        return floats_from_string(floats_to_string(values))

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out.size == n
    benchmark.extra_info["n_doubles"] = n
    benchmark.extra_info["path"] = "string marshaling"


def test_blob_speedup_headline(benchmark):
    """One row: blob vs string time ratio at 100k doubles."""
    import time

    values = data(100_000)

    def measure():
        t0 = time.perf_counter()
        for _ in range(10):
            blob_to_floats(blob_from_floats(values))
        t_blob = (time.perf_counter() - t0) / 10
        t0 = time.perf_counter()
        floats_from_string(floats_to_string(values))
        t_str = time.perf_counter() - t0
        return t_blob, t_str

    t_blob, t_str = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["blob_s"] = round(t_blob, 6)
    benchmark.extra_info["string_s"] = round(t_str, 6)
    benchmark.extra_info["speedup"] = round(t_str / t_blob, 1)
    assert t_str > 5 * t_blob


def test_blob_through_full_runtime(benchmark):
    """End to end: a 64k-double blob through C -> Swift -> Python."""
    from repro import SwiftRuntime
    from repro.swig import NativeLibrary, install_package

    lib = NativeLibrary("gen")

    @lib.function("double* make_wave(int n);")
    def make_wave(n):
        return np.sin(np.arange(n) / 100.0)

    src = """
(blob w) wave(int n) "gen" "1.0" [
    "set <<w>> [ gen::make_wave <<n>> ]"
];
(string s) power(blob w) "python" "1.0" [
    "set h [ blobutils::cast <<w>> double ]
     set vals [ join [ blobutils::to_list $h ] , ]
     set code [ string map [ list VALS $vals ] {v = sum(x*x for x in [VALS])} ]
     set <<s>> [ python::eval $code {round(v, 3)} ]"
];
printf("power=%s", power(wave(2000)));
"""
    rt = SwiftRuntime(
        workers=2, setup=lambda it, ctx, cl: install_package(it, lib)
    )

    def run():
        res = rt.run(src)
        assert res.stdout_lines and res.stdout_lines[0].startswith("power=")
        return res

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["path"] = "blob through full runtime (2000 doubles)"
