"""FIG2 — the runtime architecture split (engines / servers / workers).

Fig. 2 and the text claim that "typically the vast majority of
processes (99%+) are designated as workers": a small number of control
processes can feed many workers.  At benchmark scale we vary the
control fraction at a fixed total rank count on the *real* runtime, and
sweep much larger rank counts on the DES model.

Shape to reproduce: task throughput is roughly flat as the control
fraction shrinks (1 engine + 1 server suffices), so dedicating almost
all ranks to workers is the right design point.
"""

from __future__ import annotations

import pytest

from repro import swift_run
from repro.simcluster import ClusterParams, constant, simulate

TOTAL_RANKS = 10
N_TASKS = 120

PROGRAM = (
    "foreach i in [0:%d] { string s = python(\"x = %%d + 1\" %% 0 if False else \"x = 1\", \"x\"); trace(s); }"
    % (N_TASKS - 1)
)
# simpler: plain python leaf per task
PROGRAM = (
    'foreach i in [0:%d] { trace(python("x = 1", "x")); }' % (N_TASKS - 1)
)


@pytest.mark.parametrize("servers,engines", [(1, 1), (2, 1), (1, 2), (2, 2), (3, 3)])
def test_fig2_control_fraction(benchmark, servers, engines):
    workers = TOTAL_RANKS - servers - engines

    def run():
        res = swift_run(
            PROGRAM, workers=workers, servers=servers, engines=engines
        )
        assert res.tasks_run == N_TASKS
        return res

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["servers"] = servers
    benchmark.extra_info["engines"] = engines
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["control_fraction"] = round(
        (servers + engines) / TOTAL_RANKS, 3
    )
    benchmark.extra_info["tasks_per_sec"] = round(N_TASKS / res.elapsed, 1)


@pytest.mark.parametrize("worker_fraction", [0.5, 0.9, 0.99])
def test_fig2_worker_fraction_at_scale(benchmark, worker_fraction):
    """DES at 1024 ranks: 99% workers matches or beats 50% workers."""
    total = 1024

    def run():
        n_ctl = max(2, int(round(total * (1 - worker_fraction))))
        params = ClusterParams(
            n_workers=total - n_ctl,
            n_servers=max(1, n_ctl // 2),
            n_engines=max(1, n_ctl - n_ctl // 2),
        )
        durations = constant(params.n_workers * 4, 1e-3)
        return simulate(params, durations)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["worker_fraction"] = worker_fraction
    benchmark.extra_info["sim_tasks_per_sec"] = round(res.tasks_per_sec)
    benchmark.extra_info["sim_worker_utilization"] = round(res.worker_utilization, 3)
