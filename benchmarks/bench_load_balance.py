"""LB — dynamic load balancing of varying-runtime tasks (§II-A).

"If f() and g() are compute-intensive functions with varying runtimes,
the asynchronous, load-balanced Swift model is an excellent fit."

Baseline: static round-robin pre-assignment (task i -> worker i % W).
The ADLB dynamic path should win on makespan and show far smaller
per-worker busy-time imbalance on heavy-tailed workloads, and roughly
tie on uniform workloads.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.adlb.baselines import run_adlb_dynamic, run_static_round_robin

N_WORKERS = 4
N_TASKS = 48


def make_durations(kind: str) -> np.ndarray:
    rng = np.random.RandomState(42)
    if kind == "uniform":
        return np.full(N_TASKS, 0.004)
    if kind == "heavy-tail":
        d = np.full(N_TASKS, 0.001)
        d[rng.choice(N_TASKS, 6, replace=False)] = 0.030
        return d
    raise ValueError(kind)


def sleep_task(durations):
    def task(i):
        time.sleep(durations[int(i)])

    return task


@pytest.mark.parametrize("workload", ["uniform", "heavy-tail"])
def test_lb_static_round_robin(benchmark, workload):
    durations = make_durations(workload)

    def run():
        return run_static_round_robin(N_WORKERS, sleep_task(durations), N_TASKS)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["scheduler"] = "static round-robin"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["imbalance"] = round(res.imbalance, 3)


@pytest.mark.parametrize("workload", ["uniform", "heavy-tail"])
def test_lb_adlb_dynamic(benchmark, workload):
    durations = make_durations(workload)

    def run():
        return run_adlb_dynamic(N_WORKERS, sleep_task(durations), N_TASKS)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["scheduler"] = "ADLB dynamic"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["imbalance"] = round(res.imbalance, 3)


def test_lb_dynamic_beats_static_on_heavy_tail(benchmark):
    """The headline comparison, one row: imbalance ratio static/dynamic."""
    durations = make_durations("heavy-tail")

    def run():
        static = run_static_round_robin(
            N_WORKERS, sleep_task(durations), N_TASKS
        )
        dynamic = run_adlb_dynamic(N_WORKERS, sleep_task(durations), N_TASKS)
        return static, dynamic

    static, dynamic = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["static_imbalance"] = round(static.imbalance, 3)
    benchmark.extra_info["dynamic_imbalance"] = round(dynamic.imbalance, 3)
    assert dynamic.imbalance < static.imbalance
