"""PKG — static packages vs loose script files (§IV).

"the many small file problem common in scripted solutions can be
addressed with our static packages."

Two costs: real wall-clock time to load M modules (zip bundle vs M
opens), and the modeled metadata cost on a parallel filesystem
(per-open latency x M x ranks).  Shape: the static package does one
metadata operation regardless of M.
"""

from __future__ import annotations

import os

import pytest

from repro.packaging import MetadataFS, StaticPackage, load_loose_modules

MODULE_COUNTS = [10, 100, 400]


def build(tmp_path, m: int):
    pkg = StaticPackage("app")
    loose = []
    d = tmp_path / ("mods%d" % m)
    d.mkdir(exist_ok=True)
    for i in range(m):
        src = "package provide mod%d 1.0\nproc mod%d::f {} { return %d }\n" % (
            i, i, i,
        )
        pkg.add("mod%d" % i, "tcl", src)
        p = d / ("mod%d.tcl" % i)
        p.write_text(src)
        loose.append(str(p))
    bundle = str(tmp_path / ("app%d.pkg" % m))
    pkg.save(bundle)
    return bundle, loose


@pytest.mark.parametrize("m", MODULE_COUNTS)
def test_pkg_static_load(benchmark, tmp_path, m):
    bundle, _ = build(tmp_path, m)
    fs = MetadataFS(metadata_latency=1e-3)

    def run():
        fs.reset()
        return StaticPackage.load(bundle, fs=fs)

    pkg = benchmark(run)
    assert len(pkg) == m
    benchmark.extra_info["modules"] = m
    benchmark.extra_info["metadata_ops"] = fs.stats.opens
    benchmark.extra_info["modeled_startup_s_8192_ranks"] = round(
        fs.stats.simulated_time * 8192, 1
    )


@pytest.mark.parametrize("m", MODULE_COUNTS)
def test_pkg_loose_load(benchmark, tmp_path, m):
    _, loose = build(tmp_path, m)
    fs = MetadataFS(metadata_latency=1e-3)

    def run():
        fs.reset()
        return load_loose_modules(fs, loose)

    out = benchmark(run)
    assert len(out) == m
    benchmark.extra_info["modules"] = m
    benchmark.extra_info["metadata_ops"] = fs.stats.opens
    benchmark.extra_info["modeled_startup_s_8192_ranks"] = round(
        fs.stats.simulated_time * 8192, 1
    )


def test_pkg_metadata_ratio_headline(benchmark, tmp_path):
    """One row: metadata ops ratio at 400 modules (should equal 400x)."""
    bundle, loose = build(tmp_path, 400)

    def measure():
        fs_s = MetadataFS(metadata_latency=1e-3)
        StaticPackage.load(bundle, fs=fs_s)
        fs_l = MetadataFS(metadata_latency=1e-3)
        load_loose_modules(fs_l, loose)
        return fs_s.stats, fs_l.stats

    static_stats, loose_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    benchmark.extra_info["static_ops"] = static_stats.opens
    benchmark.extra_info["loose_ops"] = loose_stats.opens
    benchmark.extra_info["metadata_op_ratio"] = loose_stats.opens / static_stats.opens
    assert loose_stats.opens == 400 and static_stats.opens == 1
