"""Materials-science parameter sweep over a "native" C library.

The paper's motivating pattern: a performance-critical kernel lives in
compiled C (here: a Lennard-Jones lattice-energy routine, declared with
a real C prototype and bound through the SWIG-analog pipeline of
§III-B/Fig. 3), while Swift scripts the sweep over lattice spacings and
picks the minimum-energy configuration.  Bulk data moves as blobs.

Run:  python examples/materials_sweep.py
"""

import numpy as np

from repro import SwiftRuntime
from repro.swig import NativeLibrary, install_package

# ---------------------------------------------------------------------------
# The "native code": a C-declared kernel.  In the real system this is a
# compiled .so; here the declaration is genuine and the body is NumPy.
# ---------------------------------------------------------------------------

matlib = NativeLibrary("matlib")


@matlib.function("double lattice_energy(double spacing, int n);")
def lattice_energy(spacing, n):
    """Lennard-Jones energy per atom of a 1-D lattice of n atoms."""
    atoms = np.arange(n, dtype=np.float64) * spacing
    diff = atoms[:, None] - atoms[None, :]
    r = np.abs(diff[np.triu_indices(n, k=1)])
    inv6 = (1.0 / r) ** 6
    return float(np.sum(4.0 * (inv6**2 - inv6)) / n)


@matlib.function("void lattice_forces(double spacing, int n, double* f);")
def lattice_forces(spacing, n, f):
    """Store the net force on each atom into caller-provided storage."""
    atoms = np.arange(n, dtype=np.float64) * spacing
    diff = atoms[:, None] - atoms[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(diff != 0, np.abs(diff), np.inf)
        mag = 24.0 * (2.0 / r**13 - 1.0 / r**7) * np.sign(diff)
    f[:n] = np.nansum(mag, axis=1)


# ---------------------------------------------------------------------------
# The Swift program: sweep spacings, compute energies as native leaf
# tasks, reduce to the optimum, then inspect forces through a blob.
# ---------------------------------------------------------------------------

PROGRAM = """
// Extension function wrapping the SWIG-bound native kernel (paper Fig. 3).
(float e) energy(float spacing, int n) "matlib" "1.0" [
    "set <<e>> [ matlib::lattice_energy <<spacing>> <<n>> ]"
];

// Forces come back through a blob (bulk binary data, paper III-B).
(string f0) first_force(float spacing, int n) "matlib" "1.0" [
    "set h [ blobutils::zeroes_float <<n>> ]
     matlib::lattice_forces <<spacing>> <<n>> $h
     set <<f0>> [ blobutils::get_float $h 0 ]
     blobutils::free $h"
];

int n_atoms = 24;
float energies[];
foreach i in [0:20] {
    float spacing = 0.9 + tofloat(i) * 0.02;
    energies[i] = energy(spacing, n_atoms);
}

// dataflow reduction over the sweep
printf("minimum energy per atom: %s", fromfloat(min_float(energies)));

printf("force on atom 0 at spacing 1.12: %s", first_force(1.12, n_atoms));
"""


def main() -> None:
    rt = SwiftRuntime(
        workers=4,
        setup=lambda interp, ctx, client: install_package(interp, matlib),
    )
    result = rt.run(PROGRAM)
    for line in result.stdout_lines:
        print(line)
    print()
    print(
        "native kernel called %d times across %d workers"
        % (matlib.functions["lattice_energy"].calls, len(result.worker_stats))
    )


if __name__ == "__main__":
    main()
