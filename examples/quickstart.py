"""Quickstart: interlanguage dataflow scripting in five minutes.

Compiles a Swift program and runs it on the thread-backed Swift/T
runtime: the `foreach` iterations run concurrently, each leaf task
evaluating a fragment of Python or R inside the workers' embedded
interpreters (no fork/exec — the paper's §III-C).

Run:  python examples/quickstart.py
"""

from repro import swift_run

PROGRAM = """
// Dataflow: every statement runs when its inputs are ready.
(int o) square(int x) {
    o = x * x;
}

int squares[];
foreach i in [0:9] {
    squares[i] = square(i);
}
printf("sum of squares 0..9 = %i", sum_integer(squares));

// Leaf tasks in other languages: embedded Python and R interpreters.
string py = python("import math; v = math.factorial(10)", "v");
printf("python says 10! = %s", py);

string rr = r("v <- mean(c(2, 4, 6, 8))", "v");
printf("R says mean = %s", rr);

// ... and the shell.
printf("shell says: %s", system("echo hello from a subprocess"));
"""


def main() -> None:
    result = swift_run(PROGRAM, workers=4)
    for line in result.stdout_lines:
        print(line)
    print()
    print(
        "ran %d leaf tasks on %d workers in %.3fs"
        % (result.tasks_run, len(result.worker_stats), result.elapsed)
    )


if __name__ == "__main__":
    main()
