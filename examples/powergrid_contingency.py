"""Power-grid contingency analysis: Fortran + R + Swift.

The paper's application list includes power-grid simulation.  This
example exercises the full interlanguage width of the system:

* the DC power-flow kernel is written as a *Fortran* subroutine, put
  through the FortWrap -> C header -> SWIG pipeline (§III-B), with the
  line-flow vector returned through a blob;
* the per-contingency severity statistics run in embedded *R*;
* *Swift* scripts the N-1 contingency sweep (drop each line, re-solve,
  flag overloads) and reduces the results.

Run:  python examples/powergrid_contingency.py
"""

import numpy as np

from repro import SwiftRuntime
from repro.swig import NativeLibrary, install_package, translate_fortran

# ---------------------------------------------------------------------------
# "Fortran" kernel: declared in Fortran, translated by the FortWrap
# analog, implemented (as the compiled object would be) over NumPy.
# ---------------------------------------------------------------------------

FORTRAN_SOURCE = """
module powerflow
contains
  subroutine dc_flow(inj, n, drop, flows)
    ! DC power flow on a ring of n buses with one line dropped.
    real(8), intent(in) :: inj(n)
    integer, intent(in) :: n
    integer, intent(in) :: drop
    real(8), intent(out) :: flows(n)
  end subroutine dc_flow
end module powerflow
"""

HEADER = translate_fortran(FORTRAN_SOURCE)


def _dc_flow_impl(inj, n, drop, flows):
    """Solve a ring network's DC flow with line `drop` removed.

    Removing one line from a ring leaves a radial chain: flows follow
    from cumulative injections along the chain.
    """
    inj = np.asarray(inj[:n])
    order = [(drop + 1 + k) % n for k in range(n)]
    cumulative = 0.0
    for k in range(n - 1):
        cumulative += inj[order[k]]
        flows[order[k]] = cumulative
    flows[drop] = 0.0  # the dropped line carries nothing


gridlib = NativeLibrary("powerflow")
gridlib.add_header(HEADER, {"dc_flow": _dc_flow_impl})

N_BUSES = 12

PROGRAM = """
// Fortran kernel via FortWrap+SWIG: returns max |flow| after dropping a line
(float worst) solve_contingency(int drop, int n) "powerflow" "1.0" [
    "set inj [ blobutils::from_list $::injections double ]
     set flows [ blobutils::zeroes_float <<n>> ]
     powerflow::dc_flow $inj <<n>> <<drop>> $flows
     set worst 0.0
     for { set i 0 } { $i < <<n>> } { incr i } {
         set f [ expr { abs([ blobutils::get_float $flows $i ]) } ]
         if { $f > $worst } { set worst $f }
     }
     blobutils::free $inj $flows
     set <<worst>> $worst"
];

// R computes the severity assessment over the whole sweep
(string report) assess(float flows[]) "r" "1.0" [
    "set vals [ list ]
     foreach s [ turbine::enumerate <<flows>> ] {
         lappend vals [ turbine::retrieve [ turbine::container_lookup <<flows>> $s ] ]
     }
     set rcode {
f <- c(VALS)
overloads <- sum(f > 2.5)
report <- paste('worst =', sprintf('%.3f', max(f)),
                '| mean =', sprintf('%.3f', mean(f)),
                '| overloaded lines =', overloads)
}
     set rcode [ string map [ list VALS [ join $vals , ] ] $rcode ]
     set <<report>> [ r::eval $rcode report ]"
];

int n = @N@;
float worst[];
foreach line in [0:@LAST@] {
    worst[line] = solve_contingency(line, n);
}
// wait for all members, then run the R assessment on the closed array
printf("contingency sweep: %s", assess_when_ready(worst));

(string rep) assess_when_ready(float w[]) {
    // the members are filled asynchronously; sum_float forces a full
    // barrier on every member before the R stage reads them
    float barrier = sum_float(w);
    wait (barrier) {
        rep = assess(w);
    }
}
"""


def main() -> None:
    injections = np.random.RandomState(7).uniform(-1, 1, N_BUSES)
    injections -= injections.mean()  # balanced grid

    def setup(interp, ctx, client):
        install_package(interp, gridlib)
        interp.set_var("::injections", " ".join(repr(float(x)) for x in injections))

    rt = SwiftRuntime(workers=4, setup=setup)
    src = PROGRAM.replace("@N@", str(N_BUSES)).replace("@LAST@", str(N_BUSES - 1))
    result = rt.run(src)
    for line in result.stdout_lines:
        print(line)
    print()
    print(
        "%d contingencies solved by the Fortran kernel"
        % gridlib.functions["dc_flow"].calls
    )


if __name__ == "__main__":
    main()
