"""Deploying a scripted application with static packages (paper §IV).

On a parallel filesystem every rank opening dozens of small script
files hammers the metadata server — the "many small file problem".
This example builds the application's Tcl/Python/R modules into a
single static package, measures the metadata cost of loose files vs.
the bundle under a simulated parallel-FS latency, runs a Swift program
whose leaf tasks import from the bundle, and emits the batch submission
scripts (PBS / SLURM / Cobalt) that would launch it on a real machine.

Run:  python examples/deploy_static_package.py
"""

import os
import tempfile

from repro import SwiftRuntime
from repro.launch import JobSpec, render
from repro.packaging import MetadataFS, StaticPackage, load_loose_modules

N_MODULES = 30


def build_application_package() -> StaticPackage:
    pkg = StaticPackage("climate-app")
    # the application's real modules
    pkg.add(
        "units",
        "tcl",
        "package provide units 1.0\n"
        "proc units::c_to_k { c } { expr { $c + 273.15 } }\n",
    )
    pkg.add(
        "analysis",
        "python",
        "def anomaly(t_kelvin, baseline=288.0):\n"
        "    return t_kelvin - baseline\n",
    )
    pkg.add(
        "stats",
        "r",
        "trend <- function(x) (x[length(x)] - x[1]) / length(x)\n",
    )
    # plus the long tail of helper modules every scripted app drags in
    for i in range(N_MODULES - 3):
        pkg.add("helper%02d" % i, "tcl", "proc helper%02d {} { return %d }" % (i, i))
    return pkg


PROGRAM = """
// leaf tasks use modules from the static package: Tcl, Python, and R
(float k) to_kelvin(float c) "units" "1.0" [
    "set <<k>> [ units::c_to_k <<c>> ]"
];

(string a) anomaly(float k) "python" "1.0" [
    "python::require analysis
     set expr_text \\"anomaly(<<k>>)\\"
     set <<a>> [ python::eval {} $expr_text ]"
];

(string t) trend(float temps[]) "r" "1.0" [
    "r::require stats
     set vals [ list ]
     foreach s [ lsort -integer [ turbine::enumerate <<temps>> ] ] {
         lappend vals [ turbine::retrieve [ turbine::container_lookup <<temps>> $s ] ]
     }
     set rcode [ string map [ list VALS [ join $vals , ] ] {t <- trend(c(VALS))} ]
     set <<t>> [ r::eval $rcode t ]"
];

float celsius[];
celsius[0] = 14.2; celsius[1] = 14.5; celsius[2] = 14.9; celsius[3] = 15.4;

float kelvins[];
foreach c, i in celsius {
    kelvins[i] = to_kelvin(c);
}
printf("anomaly of year 3: %s K", anomaly(kelvins[3]));

float barrier = sum_float(kelvins);
wait (barrier) {
    printf("warming trend: %s K/yr", trend(kelvins));
}
"""


def main() -> None:
    pkg = build_application_package()

    with tempfile.TemporaryDirectory() as tmp:
        # --- the many-small-files comparison -------------------------
        loose_dir = os.path.join(tmp, "loose")
        os.makedirs(loose_dir)
        paths = []
        for (lang, name), mod in pkg.modules.items():
            p = os.path.join(loose_dir, "%s.%s" % (name.replace("/", "_"), lang))
            with open(p, "w") as f:
                f.write(mod.source)
            paths.append(p)

        bundle_path = os.path.join(tmp, "climate-app.pkg")
        pkg.save(bundle_path)

        fs_loose = MetadataFS(metadata_latency=1e-3)  # 1 ms metadata RTT
        load_loose_modules(fs_loose, paths)
        fs_static = MetadataFS(metadata_latency=1e-3)
        StaticPackage.load(bundle_path, fs=fs_static)

        ranks = 8192
        print("startup metadata cost model (1 ms/operation):")
        print(
            "  loose files : %3d opens/rank -> %6.1f s across %d ranks"
            % (fs_loose.stats.opens, fs_loose.stats.simulated_time * ranks, ranks)
        )
        print(
            "  static pkg  : %3d opens/rank -> %6.1f s across %d ranks"
            % (fs_static.stats.opens, fs_static.stats.simulated_time * ranks, ranks)
        )

        # --- run the application from the bundle ---------------------
        loaded = StaticPackage.load(bundle_path)

        rt = SwiftRuntime(
            workers=3,
            setup=lambda interp, ctx, client: loaded.install_into(interp),
        )
        result = rt.run(PROGRAM)
        print()
        for line in result.stdout_lines:
            print(line)

    # --- submission scripts for real machines -------------------------
    spec = JobSpec(
        name="climate-app",
        nodes=512,
        procs_per_node=16,
        walltime_s=3600,
        program="climate-app.tic",
        env={"TURBINE_STATIC_PACKAGE": "climate-app.pkg"},
    )
    print()
    print("== SLURM submission script ==")
    print(render(spec, "slurm"))
    print("== Cobalt (Blue Gene/Q) submission script ==")
    print(render(spec, "cobalt"))


if __name__ == "__main__":
    main()
