"""Iterative fixpoint: connected-component labeling in pure dataflow.

The rule-table torture shape the ROADMAP's scenario item calls for:
label propagation runs for a fixed number of rounds, and every round
registers a fresh wave of dataflow rules whose inputs are the previous
round's still-open TDs — so the engine's rule table churns (create,
block, fire, retire) instead of draining monotonically like a fan-out.
Each ``relax`` below is a composite with a data-dependent branch, so
rules are created *by fired rules* round after round; the final report
ships one embedded-Python leaf task per node through ADLB.

The graph is a 9-node chain with two cut edges — components {0,1,2},
{3,4,5,6}, {7,8} — and min-label propagation converges in <= 4 rounds
(the widest component has diameter 3).

Run:  python examples/fixpoint_labels.py
"""

from repro import SwiftRuntime

N_NODES = 9
N_ROUNDS = 4

# Expected fixpoint: every node labeled by its component's least member.
EXPECTED_ROOTS = [0, 0, 0, 3, 3, 3, 3, 7, 7]

PROGRAM = """
// undirected chain edges: edge[i] == 1 joins nodes i and i+1.
// cut after node 2 and node 6 -> components {0,1,2} {3,4,5,6} {7,8}
int edge[];
edge[0] = 1;
edge[1] = 1;
edge[2] = 0;
edge[3] = 1;
edge[4] = 1;
edge[5] = 1;
edge[6] = 0;
edge[7] = 1;

(int o) min2(int a, int b) {
    int t[];
    t[0] = a;
    t[1] = b;
    o = min_integer(t);
}

// one neighbor's contribution: min with the neighbor's previous-round
// label when the joining edge exists, else the label passes through
(int o) relax(int self_label, int nbr_label, int e) {
    if (e == 1) {
        o = min2(self_label, nbr_label);
    } else {
        o = self_label;
    }
}

// lab is the flattened (round, node) label table: lab[r*%(n)d + i].
// Round r's rules block on round r-1's TDs, so each round is a fresh
// wave of rule creations riding the previous wave's closes.
int lab[];
foreach i in [0:%(last)d] {
    lab[i] = i;
}
foreach r in [1:%(rounds)d] {
    int base = (r - 1) * %(n)d;
    foreach i in [0:%(last)d] {
        if (i == 0) {
            lab[r * %(n)d + i] = relax(lab[base + i], lab[base + i + 1], edge[i]);
        } else {
            if (i == %(last)d) {
                lab[r * %(n)d + i] = relax(lab[base + i], lab[base + i - 1], edge[i - 1]);
            } else {
                int m = relax(lab[base + i], lab[base + i - 1], edge[i - 1]);
                lab[r * %(n)d + i] = relax(m, lab[base + i + 1], edge[i]);
            }
        }
    }
}

// fixpoint readout: a node is a root when it kept its own label
int roots[];
foreach i in [0:%(last)d] {
    if (lab[%(final)d + i] == i) {
        roots[i] = 1;
    } else {
        roots[i] = 0;
    }
}
printf("components: %%i", sum_integer(roots));

// per-node report as embedded-Python leaf tasks (workers, via ADLB)
foreach i in [0:%(last)d] {
    string desc = python(
        strcat("d = 'node ", fromint(i), " -> root ",
               fromint(lab[%(final)d + i]), "'"),
        "d");
    printf("%%s", desc);
}
""" % {
    "n": N_NODES,
    "last": N_NODES - 1,
    "rounds": N_ROUNDS,
    "final": N_ROUNDS * N_NODES,
}


def main() -> None:
    rt = SwiftRuntime(workers=4, engines=2, servers=2, trace=True)
    result = rt.run(PROGRAM)
    lines = sorted(result.stdout_lines)
    for line in lines:
        print(line)
    assert "components: 3" in lines, lines
    for i, root in enumerate(EXPECTED_ROOTS):
        want = "node %d -> root %d" % (i, root)
        assert want in lines, "missing %r in %r" % (want, lines)
    counters = result.trace.metrics["counters"]
    print()
    print(
        "%d rules churned through %d engines; %d leaf tasks"
        % (
            counters.get("engine.rules_created", 0),
            len(result.engine_stats),
            result.tasks_run,
        )
    )


if __name__ == "__main__":
    main()
