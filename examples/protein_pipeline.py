"""Protein-analysis pipeline: dataflow pipelines with load balancing.

Reproduces the paper's Fig. 1 pattern at application scale: for every
candidate peptide, stage f (embedded Python: hydrophobicity docking
score with deliberately varying runtime) feeds stage g (embedded R:
statistical acceptance test).  Stage g for peptide i blocks only on its
own stage f — the pipelines proceed independently and the ADLB layer
load-balances the uneven tasks across workers (§II-A).

Run:  python examples/protein_pipeline.py
"""

from repro import SwiftRuntime

N_PEPTIDES = 24

PROGRAM = """
// stage f: compute-intensive docking score in Python (runtime varies
// with sequence length, like real kernels do).  The multi-line Python
// fragment is brace-quoted Tcl; <<seq>> substitutes at compile time.
(string score) dock(string seq) "python" "1.0" [
    "set code {
seq = SEQVAL
kd = {'A': 1.8, 'L': 3.8, 'K': -3.9, 'E': -3.5, 'G': -0.4, 'W': -0.9}
acc = 0.0
for i, a in enumerate(seq):
    for j, b in enumerate(seq):
        acc += kd.get(a, 0.0) * kd.get(b, 0.0) / (abs(i - j) + 1.0)
score = acc / len(seq)
}
    set code [ string map [ list SEQVAL '<<seq>>' ] $code ]
    set <<score>> [ python::eval $code score ]"
];

// stage g: acceptance decision in R
(string verdict) accept(string score) "r" "1.0" [
    "set rcode {
s <- as.numeric(SVAL)
z <- (s - 20.0) / 2.0
verdict <- ifelse(z > 0, 'HIT', 'miss')
}
    set rcode [ string map [ list SVAL '<<score>>' ] $rcode ]
    set <<verdict>> [ r::eval $rcode verdict ]"
];

string bases[];
bases[0] = "ALKE";
bases[1] = "GWAL";
bases[2] = "KKEG";
bases[3] = "ALLW";

foreach b, bi in bases {
    foreach rep in [1:%(reps)d] {
        // build peptides of growing length: runtimes vary ~quadratically
        string seq = python(
            strcat("s = '", b, "' * ", fromint(rep)), "s");
        string score = dock(seq);
        string verdict = accept(score);
        printf("peptide %%i/%%i (len %%i): %%s (score %%s)",
               bi, rep, strlen(seq), verdict, score);
    }
}
""" % {"reps": N_PEPTIDES // 4}


def main() -> None:
    rt = SwiftRuntime(workers=4, trace=True)
    result = rt.run(PROGRAM)
    hits = sorted(line for line in result.stdout_lines if "HIT" in line)
    print("\n".join(sorted(result.stdout_lines)))
    print()
    print("%d peptides scored, %d hits" % (N_PEPTIDES, len(hits)))
    counts = [w.tasks_run for w in result.worker_stats]
    busy = [w.busy_time for w in result.worker_stats]
    print("per-worker task counts:", counts)
    print("per-worker busy seconds:", ["%.3f" % b for b in busy])
    if max(busy) > 0:
        imbalance = max(busy) / (sum(busy) / len(busy)) - 1
        print("busy-time imbalance: %.1f%% (dynamic load balancing)" % (100 * imbalance))
    print()
    print(result.profile.render())


if __name__ == "__main__":
    main()
