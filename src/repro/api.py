"""Public API: compile and run Swift programs on the Swift/T runtime.

Quickstart::

    from repro import swift_run

    result = swift_run('''
        foreach i in [0:9] {
            string out = python(strcat("x = ", fromint(i), " * 2"), "x");
            printf("doubled: %s", out);
        }
    ''', workers=4)
    print(result.stdout)

Every runtime knob lives on :class:`RuntimeConfig`; ``swift_run`` and
:class:`SwiftRuntime` accept a ``config=`` plus keyword overrides that
are validated by :meth:`RuntimeConfig.with_options` (unknown names
raise ``TypeError``).  Notable hot-path knobs: ``tcl_compile`` (the
compile-and-cache Tcl layer) and ``tcl_exec`` (``"vm"`` — the default
bytecode VM — or ``"ast"`` for compiled-AST interpretation, e.g.
``swift_run(src, tcl_exec="ast")``).  For repeated runs, use the session form — one
compiled-program cache and one trace sink across runs::

    from repro import RuntimeConfig, SwiftRuntime

    cfg = RuntimeConfig.of(workers=4, trace=True)
    with SwiftRuntime.from_config(cfg) as rt:
        first = rt.run(source)      # compiles
        second = rt.run(source)     # cache hit
    print(rt.trace.by_category())   # merged trace of both runs
"""

from __future__ import annotations

from typing import Any, Callable

from .core import CompiledProgram, compile_swift
from .turbine import RunResult, RuntimeConfig, run_turbine_program

_UNSET = object()


class SwiftRuntime:
    """A reusable, configurable handle for running Swift programs.

    Construct directly with role counts and option overrides, or from
    an explicit config via :meth:`from_config`.  Used as a context
    manager it becomes a *session*: compiled programs are cached by
    ``(source, opt)`` and — when tracing is enabled — all runs share a
    single :class:`repro.obs.Tracer`, with the merged
    :class:`repro.obs.Trace` available as ``rt.trace`` after exit.
    """

    def __init__(
        self,
        workers: int | None = None,
        servers: int | None = None,
        engines: int | None = None,
        opt: int = 1,
        setup: Callable | None = None,
        args: dict | None = None,
        config: RuntimeConfig | None = None,
        **overrides,
    ):
        cfg = config if config is not None else RuntimeConfig.of()
        roles = {}
        if workers is not None:
            roles["workers"] = workers
        if servers is not None:
            roles["servers"] = servers
        if engines is not None:
            roles["engines"] = engines
        if args is not None:
            overrides["args"] = dict(args)
        if roles or overrides:
            cfg = cfg.with_options(**roles, **overrides)
        self.config = cfg
        self.opt = opt
        self.setup = setup
        # session state (populated by __enter__)
        self._cache: dict[tuple[str, int], CompiledProgram] | None = None
        self._session_tracer = None
        #: merged session trace, set on context-manager exit
        self.trace = None

    @classmethod
    def from_config(
        cls,
        config: RuntimeConfig,
        opt: int = 1,
        setup: Callable | None = None,
    ) -> "SwiftRuntime":
        return cls(opt=opt, setup=setup, config=config)

    # ------------------------------------------------------------- session

    def __enter__(self) -> "SwiftRuntime":
        self._cache = {}
        if self.config.tracer is not None:
            self._session_tracer = self.config.tracer
        elif self.config.trace:
            from .obs import Tracer

            self._session_tracer = Tracer(capacity=self.config.trace_capacity)
        return self

    def __exit__(self, *exc) -> bool:
        if self._session_tracer is not None:
            self.trace = self._session_tracer.freeze()
            self._session_tracer = None
        self._cache = None
        return False

    # ------------------------------------------------------------- running

    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def servers(self) -> int:
        return self.config.n_servers

    @property
    def engines(self) -> int:
        return self.config.n_engines

    def _run_config(self, overrides: dict) -> RuntimeConfig:
        cfg = self.config
        if self._session_tracer is not None:
            cfg = cfg.with_options(tracer=self._session_tracer)
        if overrides:
            cfg = cfg.with_options(**overrides)
        return cfg

    def compile(self, source: str, _tracer=None) -> CompiledProgram:
        key = (source, self.opt)
        if self._cache is not None:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        compiled = compile_swift(
            source, opt=self.opt, tracer=_tracer or self._session_tracer
        )
        if self._cache is not None:
            self._cache[key] = compiled
        return compiled

    def run(self, source: str, **overrides) -> RunResult:
        cfg = self._run_config(overrides)
        if cfg.tracer is None and cfg.trace:
            # Create the run's tracer up front so compile-phase spans
            # land in the same trace as the runtime events.
            from .obs import Tracer

            cfg = cfg.with_options(tracer=Tracer(capacity=cfg.trace_capacity))
        compiled = self.compile(source, _tracer=cfg.tracer)
        return run_turbine_program(
            compiled.tcl_text,
            config=cfg,
            setup=self.setup,
            entry=compiled.entry,
        )

    def run_compiled(self, compiled: CompiledProgram, **overrides) -> RunResult:
        return run_turbine_program(
            compiled.tcl_text,
            config=self._run_config(overrides),
            setup=self.setup,
            entry=compiled.entry,
        )


def swift_run(
    source: str,
    workers: int | None = None,
    servers: int | None = None,
    engines: int | None = None,
    opt: int = 1,
    setup: Callable | None = None,
    args: dict | None = None,
    config: RuntimeConfig | None = None,
    **overrides: Any,
) -> RunResult:
    """Compile and execute a Swift program; returns the RunResult.

    ``config`` seeds all runtime options; the remaining keywords are
    overrides applied on top (``swift_run(src, config=cfg, trace=True)``).
    Unknown option names raise ``TypeError``.

    The flight recorder (``RuntimeConfig.flightrec``, default True) is
    always armed: on any failure path a black-box snapshot of every
    rank's event ring lands on the raised exception (``e.blackbox``)
    or on ``RunResult.blackbox`` for runs that drain past failures —
    render it with :func:`repro.obs.render_postmortem`.  Pass
    ``flightrec=False`` to disable, ``blackbox_dir=...`` to also dump
    ``blackbox-*.json`` to disk.
    """
    rt = SwiftRuntime(
        workers=workers,
        servers=servers,
        engines=engines,
        opt=opt,
        setup=setup,
        args=args,
        config=config,
        **overrides,
    )
    return rt.run(source)
