"""Public API: compile and run Swift programs on the Swift/T runtime.

Quickstart::

    from repro import swift_run

    result = swift_run('''
        foreach i in [0:9] {
            string out = python(strcat("x = ", fromint(i), " * 2"), "x");
            printf("doubled: %s", out);
        }
    ''', workers=4)
    print(result.stdout)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .core import CompiledProgram, compile_swift
from .turbine import RunResult, RuntimeConfig, run_turbine_program


@dataclass
class SwiftRuntime:
    """A reusable configuration for running Swift programs."""

    workers: int = 2
    servers: int = 1
    engines: int = 1
    opt: int = 1
    steal: bool = True
    echo: bool = False
    interp_mode: str = "retain"
    record_spans: bool = False
    recv_timeout: float = 120.0
    setup: Callable | None = None
    args: dict | None = None  # program arguments for argv()

    def config(self) -> RuntimeConfig:
        return RuntimeConfig(
            size=self.workers + self.servers + self.engines,
            n_servers=self.servers,
            n_engines=self.engines,
            steal=self.steal,
            echo=self.echo,
            interp_mode=self.interp_mode,
            record_spans=self.record_spans,
            recv_timeout=self.recv_timeout,
            args=dict(self.args or {}),
        )

    def compile(self, source: str) -> CompiledProgram:
        return compile_swift(source, opt=self.opt)

    def run(self, source: str) -> RunResult:
        compiled = self.compile(source)
        return self.run_compiled(compiled)

    def run_compiled(self, compiled: CompiledProgram) -> RunResult:
        return run_turbine_program(
            compiled.tcl_text,
            config=self.config(),
            setup=self.setup,
            entry=compiled.entry,
        )


def swift_run(
    source: str,
    workers: int = 2,
    servers: int = 1,
    engines: int = 1,
    opt: int = 1,
    setup: Callable | None = None,
    args: dict | None = None,
    **kwargs,
) -> RunResult:
    """Compile and execute a Swift program; returns the RunResult."""
    rt = SwiftRuntime(
        workers=workers,
        servers=servers,
        engines=engines,
        opt=opt,
        setup=setup,
        args=args,
        **kwargs,
    )
    return rt.run(source)
