"""A small bounded LRU cache shared by the hot-path caches.

Used by the Tcl script parse cache, the ``expr`` AST cache, each
interpreter's compiled-script cache, and the ADLB client's
immutable-read cache.  Eviction is one-at-a-time least-recently-used —
never a full clear, which would cause a thundering re-parse/re-fetch of
every live entry (the bug this replaced in ``parse_cached``).

Plain dict preserves insertion order in CPython; ``get`` re-inserts the
key to mark it most-recently-used, and ``put`` evicts from the front.
Not thread-safe; every user owns its cache from a single thread (the
module-level parse/AST caches are only mutated under the GIL with
atomic dict ops, which is sufficient for their use).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    __slots__ = ("capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self._data: dict[K, V] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: Any = None) -> V | Any:
        data = self._data
        value = data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        # Move to most-recently-used position.
        del data[key]
        data[key] = value
        return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.capacity:
            # Evict exactly one entry: the least recently used.
            del data[next(iter(data))]
            self.evictions += 1
        data[key] = value

    def get_or_compute(self, key: K, compute: Callable[[], V]) -> V:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    def pop(self, key: K) -> V | None:
        return self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def keys(self) -> Iterator[K]:
        return iter(self._data)
