"""Static packages and the filesystem metadata model (paper §IV)."""

from .fsmodel import FSStats, MetadataFS
from .package import Module, PackageError, StaticPackage, load_loose_modules

__all__ = [
    "StaticPackage",
    "Module",
    "PackageError",
    "MetadataFS",
    "FSStats",
    "load_loose_modules",
]
