"""A filesystem model that accounts for metadata operations.

The paper's "many small file problem": on a large machine, every
``open``/``stat`` of a small script file hits the parallel filesystem's
metadata server, and interpreter startup touches hundreds of them per
rank.  :class:`MetadataFS` wraps real file access while *accounting*
simulated metadata latency (no wall-clock sleeping), so benchmarks can
report the cost loose files would incur at scale versus one static
package.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class FSStats:
    opens: int = 0
    stats: int = 0
    reads: int = 0
    bytes_read: int = 0
    simulated_time: float = 0.0


class MetadataFS:
    """File access with simulated per-metadata-op latency.

    ``metadata_latency`` models the parallel-FS metadata RTT (seconds
    per open/stat); ``read_bandwidth`` models streaming reads
    (bytes/second).  Real I/O still happens; the latency is accounted,
    not slept.
    """

    def __init__(
        self,
        metadata_latency: float = 1e-3,
        read_bandwidth: float = 500e6,
    ):
        self.metadata_latency = metadata_latency
        self.read_bandwidth = read_bandwidth
        self.stats = FSStats()

    def open_read(self, path: str) -> str:
        self.stats.opens += 1
        self.stats.simulated_time += self.metadata_latency
        with open(path, "r", encoding="utf-8") as f:
            data = f.read()
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        self.stats.simulated_time += len(data) / self.read_bandwidth
        return data

    def open_read_bytes(self, path: str) -> bytes:
        self.stats.opens += 1
        self.stats.simulated_time += self.metadata_latency
        with open(path, "rb") as f:
            data = f.read()
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        self.stats.simulated_time += len(data) / self.read_bandwidth
        return data

    def stat(self, path: str) -> bool:
        self.stats.stats += 1
        self.stats.simulated_time += self.metadata_latency
        return os.path.exists(path)

    def reset(self) -> None:
        self.stats = FSStats()
