"""Static packages: bundle an application's scripts into one artifact.

The paper (§IV): "the many small file problem common in scripted
solutions can be addressed with our static packages."  A
:class:`StaticPackage` collects every Tcl/Python/R module an
application needs into a single archive; at startup each rank performs
*one* filesystem access instead of one per module, and
``package require`` / ``source`` / Python ``import``-ish loading
resolve from memory.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass
from typing import Iterable

from ..tcl.interp import Interp

_LANGS = ("tcl", "python", "r", "data")


class PackageError(RuntimeError):
    pass


@dataclass(frozen=True)
class Module:
    name: str  # logical name, e.g. "my_package" or "mylib/helpers"
    lang: str  # tcl | python | r | data
    source: str
    version: str = "1.0"


class StaticPackage:
    def __init__(self, name: str = "app"):
        self.name = name
        self.modules: dict[tuple[str, str], Module] = {}

    # -- building ---------------------------------------------------------

    def add(self, name: str, lang: str, source: str, version: str = "1.0") -> None:
        if lang not in _LANGS:
            raise PackageError("unknown module language %r" % lang)
        key = (lang, name)
        if key in self.modules:
            raise PackageError("module %s/%s already added" % (lang, name))
        self.modules[key] = Module(name, lang, source, version)

    def add_many(self, modules: Iterable[Module]) -> None:
        for m in modules:
            self.add(m.name, m.lang, m.source, m.version)

    def get(self, name: str, lang: str) -> Module:
        mod = self.modules.get((lang, name))
        if mod is None:
            raise PackageError("no %s module %r in package %s" % (lang, name, self.name))
        return mod

    def __len__(self) -> int:
        return len(self.modules)

    # -- serialization -------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the package as a single zip archive."""
        manifest = {
            "name": self.name,
            "modules": [
                {"name": m.name, "lang": m.lang, "version": m.version}
                for m in self.modules.values()
            ],
        }
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr("MANIFEST.json", json.dumps(manifest, indent=1))
            for m in self.modules.values():
                zf.writestr("%s/%s" % (m.lang, m.name), m.source)

    @classmethod
    def load(cls, path: str, fs=None) -> "StaticPackage":
        """Load a package archive — one filesystem access total."""
        if fs is not None:
            raw: bytes = fs.open_read_bytes(path)
        else:
            with open(path, "rb") as f:
                raw = f.read()
        with zipfile.ZipFile(io.BytesIO(raw)) as zf:
            manifest = json.loads(zf.read("MANIFEST.json"))
            pkg = cls(manifest["name"])
            for entry in manifest["modules"]:
                source = zf.read(
                    "%s/%s" % (entry["lang"], entry["name"])
                ).decode("utf-8")
                pkg.add(entry["name"], entry["lang"], source, entry.get("version", "1.0"))
        return pkg

    # -- installation into a rank ----------------------------------------------

    def install_into(self, interp: Interp) -> None:
        """Wire the package into a Tcl interpreter.

        Tcl modules become lazily-required packages; ``source`` resolves
        package-relative paths from memory; Python and R modules become
        available to the embedded interpreters via ``python::require``
        and ``r::require``.
        """
        for (lang, name), mod in self.modules.items():
            if lang == "tcl":
                interp.package_loaders[name] = (
                    mod.version,
                    lambda it, src=mod.source: it.eval(src),
                )

        def resolver(path: str, _pkg=self) -> str:
            for lang in _LANGS:
                try:
                    return _pkg.get(path, lang).source
                except PackageError:
                    continue
            raise PackageError("source: no module %r in static package" % path)

        interp.source_resolver = resolver  # type: ignore[attr-defined]

        def cmd_python_require(it, args):
            emb = getattr(it, "_embedded_python", None)
            if emb is None:
                from ..tcl.errors import TclError

                raise TclError("python package not registered")
            for name in args:
                emb["embedded"].eval(self.get(name, "python").source, "")
            return ""

        def cmd_r_require(it, args):
            emb = getattr(it, "_embedded_r", None)
            if emb is None:
                from ..tcl.errors import TclError

                raise TclError("r package not registered")
            for name in args:
                emb["embedded"].eval(self.get(name, "r").source, "")
            return ""

        interp.register("python::require", cmd_python_require)
        interp.register("r::require", cmd_r_require)


def load_loose_modules(
    fs, paths: list[str]
) -> list[tuple[str, str]]:
    """Baseline: load each module as its own file (M metadata ops)."""
    out = []
    for path in paths:
        out.append((path, fs.open_read(path)))
    return out
