"""Batch job specifications and submission-script generation.

Swift/K "offers wide-ranging support for schedulers (PBS, LSF, SLURM,
SGE, Condor, Cobalt, SSH)" and Swift/T ships launch scripts for the
same systems.  A :class:`JobSpec` captures the resource request; the
``render_*`` functions emit the scheduler-specific submission script
that would launch the Swift/T MPI program on that system.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class JobError(ValueError):
    pass


@dataclass(frozen=True)
class JobSpec:
    name: str
    nodes: int
    procs_per_node: int = 1
    walltime_s: int = 3600
    program: str = "program.tcl"
    queue: str = "default"
    env: dict = field(default_factory=dict)
    estimated_runtime_s: float = 60.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise JobError("nodes must be >= 1")
        if self.procs_per_node < 1:
            raise JobError("procs_per_node must be >= 1")
        if self.walltime_s < 1:
            raise JobError("walltime must be positive")

    @property
    def total_procs(self) -> int:
        return self.nodes * self.procs_per_node

    def walltime_hms(self) -> str:
        h, rem = divmod(self.walltime_s, 3600)
        m, s = divmod(rem, 60)
        return "%02d:%02d:%02d" % (h, m, s)


def _env_lines(spec: JobSpec, fmt: str) -> str:
    return "\n".join(fmt % (k, v) for k, v in sorted(spec.env.items()))


def render_pbs(spec: JobSpec) -> str:
    return """#!/bin/bash
#PBS -N {name}
#PBS -l nodes={nodes}:ppn={ppn}
#PBS -l walltime={wall}
#PBS -q {queue}
{env}
cd $PBS_O_WORKDIR
mpiexec -n {np} turbine {program}
""".format(
        name=spec.name,
        nodes=spec.nodes,
        ppn=spec.procs_per_node,
        wall=spec.walltime_hms(),
        queue=spec.queue,
        env=_env_lines(spec, "export %s=%s"),
        np=spec.total_procs,
        program=spec.program,
    )


def render_slurm(spec: JobSpec) -> str:
    return """#!/bin/bash
#SBATCH --job-name={name}
#SBATCH --nodes={nodes}
#SBATCH --ntasks-per-node={ppn}
#SBATCH --time={wall}
#SBATCH --partition={queue}
{env}
srun -n {np} turbine {program}
""".format(
        name=spec.name,
        nodes=spec.nodes,
        ppn=spec.procs_per_node,
        wall=spec.walltime_hms(),
        queue=spec.queue,
        env=_env_lines(spec, "export %s=%s"),
        np=spec.total_procs,
        program=spec.program,
    )


def render_cobalt(spec: JobSpec) -> str:
    """Cobalt (the Blue Gene/Q scheduler at Argonne)."""
    return """#!/bin/bash
#COBALT -n {nodes}
#COBALT -t {minutes}
#COBALT -q {queue}
#COBALT --jobname {name}
{env}
runjob --np {np} -p {ppn} : turbine {program}
""".format(
        nodes=spec.nodes,
        minutes=max(1, spec.walltime_s // 60),
        queue=spec.queue,
        name=spec.name,
        env=_env_lines(spec, "export %s=%s"),
        np=spec.total_procs,
        ppn=spec.procs_per_node,
        program=spec.program,
    )


RENDERERS = {
    "pbs": render_pbs,
    "slurm": render_slurm,
    "cobalt": render_cobalt,
}


def render(spec: JobSpec, scheduler: str) -> str:
    fn = RENDERERS.get(scheduler.lower())
    if fn is None:
        raise JobError(
            "unknown scheduler %r (supported: %s)"
            % (scheduler, ", ".join(sorted(RENDERERS)))
        )
    return fn(spec)
