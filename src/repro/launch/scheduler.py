"""A simulated batch scheduler (FIFO with conservative backfill).

Models the machine's node pool in simulated time: jobs are submitted
with a node count and estimated runtime, start when nodes free up (or
earlier via backfill if they fit without delaying the queue head), and
the trace records queueing/start/end times.  Optionally a job can carry
real Swift source that is executed (on the thread-backed runtime) when
the job "starts", tying the scheduler substrate to the actual system.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .jobspec import JobError, JobSpec


@dataclass
class JobRecord:
    job_id: int
    spec: JobSpec
    submit_time: float
    start_time: float | None = None
    end_time: float | None = None
    state: str = "queued"  # queued | running | done

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            return 0.0
        return self.start_time - self.submit_time


class SimScheduler:
    def __init__(self, total_nodes: int, backfill: bool = True):
        if total_nodes < 1:
            raise JobError("cluster must have at least one node")
        self.total_nodes = total_nodes
        self.backfill = backfill
        self.now = 0.0
        self.free_nodes = total_nodes
        self.queue: list[JobRecord] = []
        self.running: list[tuple[float, int, JobRecord]] = []  # (end, id, rec)
        self.records: dict[int, JobRecord] = {}
        self._ids = itertools.count(1)

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec, at: float | None = None) -> int:
        if spec.nodes > self.total_nodes:
            raise JobError(
                "job needs %d nodes; machine has %d" % (spec.nodes, self.total_nodes)
            )
        if at is not None:
            self.now = max(self.now, at)
        job_id = next(self._ids)
        rec = JobRecord(job_id=job_id, spec=spec, submit_time=self.now)
        self.queue.append(rec)
        self.records[job_id] = rec
        self._schedule()
        return job_id

    # -- simulation ------------------------------------------------------------

    def _start(self, rec: JobRecord) -> None:
        rec.state = "running"
        rec.start_time = self.now
        end = self.now + rec.spec.estimated_runtime_s
        rec.end_time = end
        self.free_nodes -= rec.spec.nodes
        heapq.heappush(self.running, (end, rec.job_id, rec))

    def _finish_due(self) -> None:
        while self.running and self.running[0][0] <= self.now:
            _, _, rec = heapq.heappop(self.running)
            rec.state = "done"
            self.free_nodes += rec.spec.nodes

    def _head_start_estimate(self) -> float:
        """Earliest time the queue head could start (for backfill)."""
        if not self.queue:
            return self.now
        head = self.queue[0]
        free = self.free_nodes
        t = self.now
        for end, _, rec in sorted(self.running):
            if free >= head.spec.nodes:
                return t
            free += rec.spec.nodes
            t = end
        return t

    def _schedule(self) -> None:
        self._finish_due()
        progressed = True
        while progressed:
            progressed = False
            if self.queue and self.queue[0].spec.nodes <= self.free_nodes:
                self._start(self.queue.pop(0))
                progressed = True
                continue
            if self.backfill and len(self.queue) > 1:
                head_start = self._head_start_estimate()
                for i in range(1, len(self.queue)):
                    cand = self.queue[i]
                    if (
                        cand.spec.nodes <= self.free_nodes
                        and self.now + cand.spec.estimated_runtime_s <= head_start
                    ):
                        self.queue.pop(i)
                        self._start(cand)
                        progressed = True
                        break

    def advance(self, until: float) -> None:
        """Advance simulated time, completing and starting jobs."""
        while self.running and self.running[0][0] <= until:
            self.now = self.running[0][0]
            self._schedule()
        self.now = max(self.now, until)
        self._schedule()

    def run_to_completion(self) -> float:
        """Drain the queue; returns the makespan."""
        guard = 0
        while self.queue or self.running:
            if self.running:
                self.now = self.running[0][0]
            self._schedule()
            guard += 1
            if guard > 1_000_000:
                raise JobError("scheduler failed to make progress")
        return self.now

    # -- introspection -------------------------------------------------------------

    def state(self, job_id: int) -> str:
        return self.records[job_id].state

    def utilization(self) -> float:
        """Node-seconds used / node-seconds available over the makespan."""
        done = [r for r in self.records.values() if r.state == "done"]
        if not done:
            return 0.0
        makespan = max(r.end_time for r in done) - min(r.submit_time for r in done)
        if makespan <= 0:
            return 1.0
        used = sum(r.spec.nodes * r.spec.estimated_runtime_s for r in done)
        return used / (self.total_nodes * makespan)
