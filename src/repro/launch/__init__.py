"""Scheduler integration: job specs, submission scripts, simulated batch queue."""

from .jobspec import RENDERERS, JobError, JobSpec, render
from .scheduler import JobRecord, SimScheduler

__all__ = [
    "JobSpec",
    "JobError",
    "JobRecord",
    "SimScheduler",
    "render",
    "RENDERERS",
]
