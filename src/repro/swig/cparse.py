"""A C-header parser for function declarations (the SWIG front half).

Parses the subset of C that SWIG consumes in the paper's workflow:
function prototypes over scalars, strings, and pointers.  Preprocessor
lines, comments, ``extern "C"`` wrappers, and simple typedefs are
handled; anything else is rejected loudly rather than guessed at.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class CParseError(ValueError):
    pass


_BASE_TYPES = {
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "unsigned",
    "size_t",
    "int32_t",
    "int64_t",
}


@dataclass(frozen=True)
class CType:
    base: str
    pointers: int = 0
    const: bool = False

    def __str__(self) -> str:
        return ("const " if self.const else "") + self.base + "*" * self.pointers

    @property
    def is_string(self) -> bool:
        return self.base == "char" and self.pointers == 1

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0 and not self.is_string

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.pointers == 0


@dataclass(frozen=True)
class CParam:
    ctype: CType
    name: str


@dataclass(frozen=True)
class CFunc:
    ret: CType
    name: str
    params: tuple[CParam, ...] = ()

    def signature(self) -> str:
        args = ", ".join("%s %s" % (p.ctype, p.name) for p in self.params)
        return "%s %s(%s)" % (self.ret, self.name, args)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def _parse_type(tokens: list[str], typedefs: dict[str, CType]) -> tuple[CType, list[str]]:
    const = False
    i = 0
    while i < len(tokens) and tokens[i] == "const":
        const = True
        i += 1
    if i >= len(tokens):
        raise CParseError("missing type in declaration")
    base_parts = []
    while i < len(tokens) and tokens[i] in _BASE_TYPES:
        base_parts.append(tokens[i])
        i += 1
    if not base_parts:
        td = typedefs.get(tokens[i])
        if td is not None:
            base_parts = [td.base]
            i += 1
            # const/pointers of the typedef fold in
            const = const or td.const
            extra_ptrs = td.pointers
        else:
            raise CParseError("unknown type %r" % tokens[i])
    else:
        extra_ptrs = 0
    base = " ".join(base_parts)
    # normalize multiword ints
    if base in ("unsigned", "unsigned int", "long", "long long", "short",
                "size_t", "int32_t", "int64_t"):
        base = "int"
    pointers = extra_ptrs
    while i < len(tokens) and tokens[i] == "*":
        pointers += 1
        i += 1
    return CType(base, pointers, const), tokens[i:]


_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\*|,|\(|\)|;")


def parse_header(text: str) -> list[CFunc]:
    """Parse all function declarations in a header."""
    text = _strip_comments(text)
    # drop preprocessor lines and extern "C" wrappers
    lines = []
    for line in text.split("\n"):
        stripped = line.strip()
        if stripped.startswith("#"):
            continue
        lines.append(line)
    text = "\n".join(lines)
    text = text.replace('extern "C"', " ")
    text = text.replace("{", " ").replace("}", " ")

    funcs: list[CFunc] = []
    typedefs: dict[str, CType] = {}
    for decl in text.split(";"):
        decl = decl.strip()
        if not decl:
            continue
        tokens = _TOKEN_RE.findall(decl)
        if not tokens:
            continue
        if tokens[0] == "typedef":
            # typedef <type> name
            try:
                ctype, rest = _parse_type(tokens[1:], typedefs)
                if len(rest) == 1:
                    typedefs[rest[0]] = ctype
            except CParseError:
                pass
            continue
        if "(" not in tokens:
            continue  # a variable declaration; not bound
        try:
            ret, rest = _parse_type(tokens, typedefs)
        except CParseError as e:
            raise CParseError("in declaration %r: %s" % (decl, e)) from None
        if not rest or rest[0] == "(":
            raise CParseError("missing function name in %r" % decl)
        name = rest[0]
        if rest[1] != "(":
            raise CParseError("expected '(' after %r" % name)
        body = rest[2:]
        if not body or body[-1] != ")":
            raise CParseError("missing ')' in %r" % decl)
        body = body[:-1]
        params: list[CParam] = []
        if body and body != ["void"]:
            groups: list[list[str]] = [[]]
            for tok in body:
                if tok == ",":
                    groups.append([])
                else:
                    groups[-1].append(tok)
            for k, group in enumerate(groups):
                ctype, rest2 = _parse_type(group, typedefs)
                pname = rest2[0] if rest2 else "arg%d" % k
                params.append(CParam(ctype, pname))
        funcs.append(CFunc(ret, name, tuple(params)))
    return funcs
