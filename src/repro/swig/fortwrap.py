"""FortWrap analog: translate Fortran interfaces to C declarations.

The paper's pipeline for Fortran is: FortWrap generates a C++-formatted
header from the Fortran source, which then goes through SWIG.  This
module implements the header-generation half for a Fortran 90 subset:
modules containing ``subroutine`` and ``function`` definitions with
``intent`` attributes.  The output is C text accepted by
:func:`repro.swig.cparse.parse_header`.

Mapping rules (standard Fortran/C interop):

* ``integer`` -> ``int`` (``intent(in)`` scalar passes by value here;
  ``intent(out)/(inout)`` or array -> ``int*``)
* ``real(8)`` / ``double precision`` -> ``double`` / ``double*``
* ``real`` / ``real(4)`` -> ``float`` / ``float*``
* ``character(len=*)`` -> ``char*``
* ``logical`` -> ``int``
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class FortranError(ValueError):
    pass


_TYPE_MAP = {
    "integer": "int",
    "real(8)": "double",
    "real(kind=8)": "double",
    "doubleprecision": "double",
    "real": "float",
    "real(4)": "float",
    "logical": "int",
}

_SUB_RE = re.compile(
    r"^\s*subroutine\s+(\w+)\s*\(([^)]*)\)", re.IGNORECASE
)
_FUNC_RE = re.compile(
    r"^\s*function\s+(\w+)\s*\(([^)]*)\)\s*(?:result\s*\(\s*(\w+)\s*\))?",
    re.IGNORECASE,
)
_DECL_RE = re.compile(
    r"^\s*([\w()=,* ]+?)\s*(?:,\s*(intent\s*\(\s*(\w+)\s*\)))?\s*::\s*(.+)$",
    re.IGNORECASE,
)


@dataclass
class _ArgInfo:
    ftype: str = ""
    intent: str = "inout"
    is_array: bool = False


def _normalize_type(text: str) -> str:
    key = text.lower().replace(" ", "")
    if key.startswith("character"):
        return "char*"
    ctype = _TYPE_MAP.get(key)
    if ctype is None:
        raise FortranError("unsupported Fortran type %r" % text)
    return ctype


def _ctype_for(info: _ArgInfo) -> str:
    base = _normalize_type(info.ftype)
    if base == "char*":
        return "char*"
    if info.is_array or info.intent in ("out", "inout"):
        return base + "*"
    return base


def translate_fortran(source: str) -> str:
    """Translate Fortran module source to a C header string."""
    lines = [ln.split("!")[0].rstrip() for ln in source.split("\n")]
    decls: list[str] = []
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        m_sub = _SUB_RE.match(line)
        m_fun = _FUNC_RE.match(line) if m_sub is None else None
        if m_sub is None and m_fun is None:
            i += 1
            continue
        if m_sub is not None:
            name = m_sub.group(1)
            arg_names = [a.strip() for a in m_sub.group(2).split(",") if a.strip()]
            result_name = None
        else:
            name = m_fun.group(1)
            arg_names = [a.strip() for a in m_fun.group(2).split(",") if a.strip()]
            result_name = m_fun.group(3) or name
        args: dict[str, _ArgInfo] = {a: _ArgInfo() for a in arg_names}
        result_type: str | None = None
        # scan the body for declarations
        i += 1
        end_re = re.compile(
            r"^\s*end\s*(subroutine|function)", re.IGNORECASE
        )
        while i < n and not end_re.match(lines[i]):
            m = _DECL_RE.match(lines[i])
            if m:
                ftype = m.group(1).strip()
                intent = (m.group(3) or "inout").lower()
                names_part = m.group(4)
                for piece in _split_decl_names(names_part):
                    var, is_array = piece
                    if var in args:
                        args[var] = _ArgInfo(ftype, intent, is_array)
                    elif result_name is not None and var == result_name:
                        result_type = _normalize_type(ftype)
            i += 1
        i += 1  # past 'end subroutine/function'
        for a, info in args.items():
            if not info.ftype:
                raise FortranError(
                    "argument %r of %s has no type declaration" % (a, name)
                )
        params = ", ".join(
            "%s %s" % (_ctype_for(args[a]), a) for a in arg_names
        )
        if result_name is None:
            decls.append("void %s(%s);" % (name, params))
        else:
            if result_type is None:
                raise FortranError(
                    "function %s: result %r has no type" % (name, result_name)
                )
            decls.append("%s %s(%s);" % (result_type, name, params))
    if not decls:
        raise FortranError("no subroutines or functions found")
    return "\n".join(decls) + "\n"


def _split_decl_names(text: str) -> list[tuple[str, bool]]:
    """Split 'a(n), b, c(m,k)' into [(a,True),(b,False),(c,True)]."""
    out: list[tuple[str, bool]] = []
    depth = 0
    current = ""
    for ch in text + ",":
        if ch == "," and depth == 0:
            piece = current.strip()
            current = ""
            if not piece:
                continue
            m = re.match(r"^(\w+)\s*(\(.*\))?$", piece)
            if m:
                out.append((m.group(1), m.group(2) is not None))
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        current += ch
    return out
