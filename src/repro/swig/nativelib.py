"""Simulated native-code libraries.

The paper's workflow compiles C/C++/Fortran into a loadable library
whose functions SWIG exposes to Tcl.  Offline we cannot compile machine
code, so a :class:`NativeLibrary` pairs each *parsed C declaration*
with a Python/NumPy implementation standing in for the compiled object
file.  Everything above this point — the declaration parsing, the
binding generation, the pointer/blob conversions at the Tcl boundary —
is the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .cparse import CFunc, CParseError, parse_header


class NativeError(RuntimeError):
    pass


@dataclass
class NativeFunc:
    decl: CFunc
    impl: Callable
    calls: int = 0


class NativeLibrary:
    """A named library of declared-and-implemented native functions."""

    def __init__(self, name: str, version: str = "1.0"):
        self.name = name
        self.version = version
        self.functions: dict[str, NativeFunc] = {}

    def function(self, declaration: str):
        """Decorator: declare a C prototype and attach its implementation.

        >>> lib = NativeLibrary("stats")
        >>> @lib.function("double arr_mean(double* x, int n);")
        ... def arr_mean(x, n):
        ...     return float(x[:n].mean())
        """
        decls = parse_header(
            declaration if declaration.rstrip().endswith(";") else declaration + ";"
        )
        if len(decls) != 1:
            raise CParseError(
                "expected exactly one declaration, got %d" % len(decls)
            )
        decl = decls[0]

        def wrap(fn: Callable) -> Callable:
            self.functions[decl.name] = NativeFunc(decl=decl, impl=fn)
            return fn

        return wrap

    def add_header(self, header_text: str, impls: dict[str, Callable]) -> None:
        """Bind a whole header at once against a dict of implementations."""
        for decl in parse_header(header_text):
            impl = impls.get(decl.name)
            if impl is None:
                raise NativeError(
                    "no implementation provided for %s" % decl.signature()
                )
            self.functions[decl.name] = NativeFunc(decl=decl, impl=impl)

    def call(self, name: str, args: list[Any]) -> Any:
        nf = self.functions.get(name)
        if nf is None:
            raise NativeError("library %s has no function %r" % (self.name, name))
        nf.calls += 1
        return nf.impl(*args)

    def header_text(self) -> str:
        """Regenerate a header for the library (round-trip aid)."""
        return "\n".join(nf.decl.signature() + ";" for nf in self.functions.values())
