"""SWIG/FortWrap-style native-code binding pipeline (paper §III-B, Fig. 3).

C headers are parsed into declarations (:mod:`cparse`); Fortran modules
are first translated to C headers (:mod:`fortwrap`, the FortWrap
analog); declarations are paired with implementations in a
:class:`NativeLibrary` (the stand-in for the compiled ``.so``); and
:mod:`bindgen` generates the Tcl commands with SWIG typemap semantics,
including typed-pointer checking at the blob boundary.
"""

from .bindgen import install_package, make_package_loader, register_library
from .cparse import CFunc, CParam, CParseError, CType, parse_header
from .fortwrap import FortranError, translate_fortran
from .nativelib import NativeError, NativeFunc, NativeLibrary

__all__ = [
    "parse_header",
    "CFunc",
    "CParam",
    "CType",
    "CParseError",
    "translate_fortran",
    "FortranError",
    "NativeLibrary",
    "NativeFunc",
    "NativeError",
    "register_library",
    "install_package",
    "make_package_loader",
]
