"""Tcl binding generation (the SWIG back half, Fig. 3 of the paper).

For every declared native function this generates a Tcl command
``<lib>::<func>`` that performs SWIG-style typemap conversions at the
boundary:

* numeric scalars <-> Tcl strings;
* ``char*`` <-> Tcl strings;
* data pointers (``double*``, ``void*``, ...) <-> blob handles or
  SWIG typed-pointer handles, with the type suffix checked — the
  ``void*``/``double*`` mismatch the paper calls out is a real error
  here, and ``blobutils::cast`` is the documented fix.

The package integrates with ``package require`` so Swift extension
functions can name it, exactly like a SWIG-built Tcl package.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..blob import Blob, PointerTable
from ..blob.pointers import PointerError
from ..tcl.errors import TclError
from ..tcl.expr import to_string
from ..tcl.interp import Interp
from .cparse import CType
from .nativelib import NativeLibrary


def _from_tcl(interp: Interp, ctype: CType, text: str, pointers: PointerTable) -> Any:
    if ctype.is_string:
        return text
    if ctype.pointers == 0:
        if ctype.base in ("int",):
            try:
                return int(text)
            except ValueError:
                raise TclError(
                    "expected %s, got %r" % (ctype, text)
                ) from None
        if ctype.base in ("float", "double"):
            try:
                return float(text)
            except ValueError:
                raise TclError(
                    "expected %s, got %r" % (ctype, text)
                ) from None
        if ctype.base == "char":
            return text[:1]
        raise TclError("unsupported parameter type %s" % ctype)
    # a data pointer: accept a blob handle or a typed pointer handle
    if text.startswith("_") and "_p_" in text:
        try:
            return pointers.lookup(text, ctype.base if ctype.base != "void" else None)
        except PointerError as e:
            raise TclError(str(e)) from None
    if interp.has_object(text):
        obj = interp.unwrap(text)
        if isinstance(obj, Blob):
            if ctype.base == "void":
                return obj
            try:
                return obj.cast(
                    "double" if ctype.base == "double" else
                    "float32" if ctype.base == "float" else
                    "int" if ctype.base == "int" else ctype.base
                ).data
            except ValueError as e:
                raise TclError(str(e)) from None
        return obj
    raise TclError(
        "argument %r is not a valid %s pointer handle" % (text, ctype)
    )


def _to_tcl(interp: Interp, ctype: CType, value: Any, pointers: PointerTable) -> str:
    if ctype.is_void:
        return ""
    if ctype.is_string:
        return "" if value is None else str(value)
    if ctype.pointers == 0:
        if isinstance(value, bool):
            return "1" if value else "0"
        return to_string(value)
    # pointer return: wrap as a blob handle (ndarray/bytes) or typed pointer
    if isinstance(value, np.ndarray):
        ct = {"double": "double", "float": "float32", "int": "int"}.get(
            ctype.base, "byte"
        )
        return interp.wrap_object(Blob(np.ascontiguousarray(value), ct), "blob")
    if isinstance(value, (bytes, bytearray)):
        return interp.wrap_object(Blob.from_bytes(bytes(value)), "blob")
    if isinstance(value, Blob):
        return interp.wrap_object(value, "blob")
    return pointers.register(value, ctype.base)


def register_library(interp: Interp, lib: NativeLibrary) -> None:
    """Register Tcl command bindings for a native library (eager)."""
    pointers = getattr(interp, "_swig_pointers", None)
    if pointers is None:
        pointers = PointerTable()
        interp._swig_pointers = pointers  # type: ignore[attr-defined]

    for fname, nf in lib.functions.items():
        cmd_name = "%s::%s" % (lib.name, fname)

        def command(it, args, _nf=nf, _ptrs=pointers):
            decl = _nf.decl
            if len(args) != len(decl.params):
                raise TclError(
                    "wrong # args for %s: expected %d, got %d"
                    % (decl.name, len(decl.params), len(args))
                )
            converted = [
                _from_tcl(it, p.ctype, a, _ptrs)
                for p, a in zip(decl.params, args)
            ]
            try:
                result = _nf.impl(*converted)
            except TclError:
                raise
            except Exception as e:
                raise TclError(
                    "native call %s failed: %s: %s"
                    % (decl.name, type(e).__name__, e)
                ) from e
            _nf.calls += 1
            return _to_tcl(it, decl.ret, result, _ptrs)

        interp.register(cmd_name, command)
    interp.packages_provided.setdefault(lib.name, lib.version)


def make_package_loader(lib: NativeLibrary):
    """A loader suitable for interp.package_loaders (lazy require)."""

    def load(interp: Interp) -> None:
        register_library(interp, lib)

    return lib.version, load


def install_package(interp: Interp, lib: NativeLibrary) -> None:
    """Make ``package require <lib>`` work without eager registration."""
    interp.package_loaders[lib.name] = make_package_loader(lib)
