"""R value model.

R's atomic vectors are represented as NumPy arrays (double, int64,
bool) or Python ``list[str]`` for character vectors; every scalar is a
length-1 vector, as in R.  ``RNull`` is the NULL singleton; ``RList``
is a generic list with optional names; closures and builtins are
callable objects defined in :mod:`repro.rlang.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .errors import RError


class _RNullType:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False


RNull = _RNullType()


@dataclass
class RList:
    items: list[Any] = field(default_factory=list)
    names: list[str | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.names:
            self.names = [None] * len(self.items)

    def get(self, name: str) -> Any:
        for n, item in zip(self.names, self.items):
            if n == name:
                return item
        return RNull


# --- constructors ----------------------------------------------------------


def mk_num(*values: float) -> np.ndarray:
    return np.array(values, dtype=np.float64)


def mk_int(*values: int) -> np.ndarray:
    return np.array(values, dtype=np.int64)


def mk_bool(*values: bool) -> np.ndarray:
    return np.array(values, dtype=bool)


def mk_chr(*values: str) -> list[str]:
    return list(values)


# --- classification ----------------------------------------------------------


def is_numeric(v: Any) -> bool:
    return isinstance(v, np.ndarray) and v.dtype.kind in ("f", "i", "b")


def is_character(v: Any) -> bool:
    return isinstance(v, list) and all(isinstance(x, str) for x in v)


def r_length(v: Any) -> int:
    if v is RNull:
        return 0
    if isinstance(v, np.ndarray):
        return int(v.size)
    if isinstance(v, list):
        return len(v)
    if isinstance(v, RList):
        return len(v.items)
    return 1


def as_numeric(v: Any) -> np.ndarray:
    if isinstance(v, np.ndarray):
        return v.astype(np.float64) if v.dtype.kind == "b" else v
    if isinstance(v, list):
        try:
            return np.array([float(x) for x in v], dtype=np.float64)
        except ValueError:
            raise RError("NAs introduced by coercion (non-numeric string)") from None
    if v is RNull:
        return np.array([], dtype=np.float64)
    raise RError("cannot coerce to numeric: %r" % (v,))


def as_logical(v: Any) -> np.ndarray:
    if isinstance(v, np.ndarray):
        return v.astype(bool)
    if isinstance(v, list):
        out = []
        for x in v:
            if x in ("TRUE", "T", "true"):
                out.append(True)
            elif x in ("FALSE", "F", "false"):
                out.append(False)
            else:
                raise RError("argument is not interpretable as logical")
        return np.array(out, dtype=bool)
    raise RError("cannot coerce to logical: %r" % (v,))


def as_character(v: Any) -> list[str]:
    if isinstance(v, list):
        return [str(x) for x in v]
    if isinstance(v, np.ndarray):
        return [fmt_scalar(x) for x in v.tolist()]
    if v is RNull:
        return []
    return [str(v)]


def scalar_bool(v: Any) -> bool:
    arr = as_logical(v) if not is_numeric(v) else v
    if r_length(arr) < 1:
        raise RError("argument is of length zero")
    if isinstance(arr, np.ndarray):
        return bool(arr.flat[0])
    raise RError("cannot use %r as a condition" % (v,))


# --- printing ------------------------------------------------------------------


def fmt_scalar(x: Any) -> str:
    if isinstance(x, bool) or isinstance(x, np.bool_):
        return "TRUE" if x else "FALSE"
    if isinstance(x, float) or isinstance(x, np.floating):
        if x != x:
            return "NA"
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return "%.6g" % x
    return str(x)


def r_repr(v: Any) -> str:
    """Deparse a value like R's ``cat`` output (space-separated)."""
    if v is RNull:
        return "NULL"
    if isinstance(v, np.ndarray):
        return " ".join(fmt_scalar(x) for x in v.tolist())
    if isinstance(v, list):
        return " ".join(str(x) for x in v)
    if isinstance(v, RList):
        parts = []
        for name, item in zip(v.names, v.items):
            prefix = "%s=" % name if name else ""
            parts.append(prefix + r_repr(item))
        return "list(%s)" % ", ".join(parts)
    return str(v)


def r_print_repr(v: Any) -> str:
    """Like R's ``print`` for vectors: ``[1] ...`` prefix."""
    if v is RNull:
        return "NULL"
    if isinstance(v, (np.ndarray, list)):
        body = r_repr(v)
        return "[1] " + (
            " ".join('"%s"' % x for x in v) if is_character(v) else body
        )
    return r_repr(v)
