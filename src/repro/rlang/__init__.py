"""A mini-R interpreter.

The paper embeds the R interpreter as a native library inside Swift/T
workers.  R itself is not available offline, so this package implements
a faithful subset — vectors with recycling, 1-based indexing, lexical
scoping with ``<-``/``<<-``, closures, control flow, and the core
numeric/string builtins — sufficient for the paper's use case of
evaluating R code fragments as leaf tasks.  Numeric vectors are backed
by NumPy.

Public surface: :class:`RInterp` (evaluate code, read variables),
:func:`r_eval` (one-shot convenience), :class:`RError`.
"""

from .errors import RError
from .interp import RInterp, r_eval
from .values import RList, RNull, mk_bool, mk_chr, mk_num, r_repr

__all__ = [
    "RInterp",
    "RError",
    "r_eval",
    "RNull",
    "RList",
    "mk_num",
    "mk_chr",
    "mk_bool",
    "r_repr",
]
