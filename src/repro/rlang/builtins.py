"""Builtin functions for the mini-R interpreter.

Each builtin takes ``(interp, args)`` where ``args`` is a list of
``(name|None, value)`` pairs.  The subset mirrors what scientific R
fragments in Swift/T leaf tasks actually use: vector construction and
math, sequences, string paste, apply-style mapping, RNG, and output.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from .errors import RError, ReturnSignal
from .values import (
    RList,
    RNull,
    as_character,
    as_logical,
    as_numeric,
    fmt_scalar,
    is_character,
    is_numeric,
    r_length,
    r_repr,
)


def _pos(args: list, n: int | None = None) -> list[Any]:
    vals = [v for name, v in args if name is None]
    if n is not None and len(vals) < n:
        raise RError("too few arguments")
    return vals


def _kw(args: list, name: str, default: Any = None) -> Any:
    for k, v in args:
        if k == name:
            return v
    return default


def _num1(v: Any) -> float:
    arr = as_numeric(v)
    if arr.size < 1:
        raise RError("argument of length 0")
    return float(arr[0])


def _int1(v: Any) -> int:
    return int(_num1(v))


# --- vector construction -------------------------------------------------


def b_c(interp, args):
    values = [v for _, v in args]
    if not values:
        return RNull
    if any(isinstance(v, RList) for v in values):
        items: list[Any] = []
        for v in values:
            if isinstance(v, RList):
                items.extend(v.items)
            else:
                items.append(v)
        return RList(items=items)
    if any(is_character(v) for v in values):
        out: list[str] = []
        for v in values:
            out.extend(as_character(v))
        return out
    parts = [as_numeric(v) for v in values if v is not RNull]
    if not parts:
        return RNull
    if all(p.dtype == bool for p in parts):
        return np.concatenate(parts)
    return np.concatenate([p.astype(np.float64) for p in parts])


def b_vector(interp, args):
    mode = as_character(_kw(args, "mode", _pos(args)[0] if args else ["numeric"]))[0]
    length = _int1(_kw(args, "length", _pos(args)[1] if len(_pos(args)) > 1 else [0]))
    if mode in ("numeric", "double", "integer"):
        return np.zeros(length, dtype=np.float64)
    if mode == "logical":
        return np.zeros(length, dtype=bool)
    if mode == "character":
        return [""] * length
    if mode == "list":
        return RList(items=[RNull] * length)
    raise RError("vector: unsupported mode %r" % mode)


def b_numeric(interp, args):
    n = _int1(_pos(args)[0]) if _pos(args) else 0
    return np.zeros(n, dtype=np.float64)


def b_list(interp, args):
    return RList(items=[v for _, v in args], names=[k for k, _ in args])


def b_seq(interp, args):
    pos = _pos(args)
    frm = _kw(args, "from", pos[0] if len(pos) > 0 else [1])
    to = _kw(args, "to", pos[1] if len(pos) > 1 else [1])
    by = _kw(args, "by", pos[2] if len(pos) > 2 else None)
    length_out = _kw(args, "length.out")
    a, b = _num1(frm), _num1(to)
    if length_out is not None:
        n = _int1(length_out)
        return np.linspace(a, b, n)
    step = _num1(by) if by is not None else (1.0 if b >= a else -1.0)
    return np.arange(a, b + step / 2, step, dtype=np.float64)


def b_seq_len(interp, args):
    return np.arange(1, _int1(_pos(args, 1)[0]) + 1, dtype=np.float64)


def b_seq_along(interp, args):
    return np.arange(1, r_length(_pos(args, 1)[0]) + 1, dtype=np.float64)


def b_rep(interp, args):
    pos = _pos(args, 1)
    x = pos[0]
    times = _int1(_kw(args, "times", pos[1] if len(pos) > 1 else [1]))
    each = _int1(_kw(args, "each", [1]))
    if is_character(x):
        base = [item for item in x for _ in range(each)]
        return base * times
    arr = as_numeric(x)
    return np.tile(np.repeat(arr, each), times)


def b_length(interp, args):
    return np.array([r_length(_pos(args, 1)[0])], dtype=np.float64)


def b_rev(interp, args):
    x = _pos(args, 1)[0]
    if is_character(x):
        return list(reversed(x))
    return as_numeric(x)[::-1].copy()


def b_sort(interp, args):
    x = _pos(args, 1)[0]
    dec = _kw(args, "decreasing")
    rev = dec is not None and bool(as_logical(dec)[0])
    if is_character(x):
        return sorted(x, reverse=rev)
    out = np.sort(as_numeric(x))
    return out[::-1].copy() if rev else out


def b_which(interp, args):
    mask = as_logical(_pos(args, 1)[0])
    return (np.nonzero(mask)[0] + 1).astype(np.float64)


def b_unique(interp, args):
    x = _pos(args, 1)[0]
    if is_character(x):
        seen: list[str] = []
        for item in x:
            if item not in seen:
                seen.append(item)
        return seen
    arr = as_numeric(x)
    _, idx = np.unique(arr, return_index=True)
    return arr[np.sort(idx)]


# --- reductions & math ------------------------------------------------------


def _reduction(fn: Callable[[np.ndarray], float]):
    def impl(interp, args):
        parts = [as_numeric(v) for _, v in args if v is not RNull]
        if not parts:
            raise RError("no arguments to reduction")
        return np.array([fn(np.concatenate(parts))], dtype=np.float64)

    return impl


def _elementwise(fn: Callable[[np.ndarray], np.ndarray]):
    def impl(interp, args):
        with np.errstate(all="ignore"):
            return fn(as_numeric(_pos(args, 1)[0])).astype(np.float64)

    return impl


def b_round(interp, args):
    pos = _pos(args, 1)
    digits = _int1(_kw(args, "digits", pos[1] if len(pos) > 1 else [0]))
    return np.round(as_numeric(pos[0]), digits)


def b_cumsum(interp, args):
    return np.cumsum(as_numeric(_pos(args, 1)[0]))


def b_prod(interp, args):
    parts = [as_numeric(v) for _, v in args]
    return np.array([float(np.prod(np.concatenate(parts)))])


def b_any(interp, args):
    return np.array([bool(np.any(as_logical(_pos(args, 1)[0])))])


def b_all(interp, args):
    return np.array([bool(np.all(as_logical(_pos(args, 1)[0])))])


# --- strings -------------------------------------------------------------------


def _paste(args, default_sep: str):
    sep_v = _kw(args, "sep")
    sep = as_character(sep_v)[0] if sep_v is not None else default_sep
    collapse_v = _kw(args, "collapse")
    vecs = [as_character(v) for k, v in args if k not in ("sep", "collapse")]
    if not vecs:
        return [""]
    n = max(len(v) for v in vecs)
    out = []
    for i in range(n):
        out.append(sep.join(v[i % len(v)] for v in vecs if v))
    if collapse_v is not None:
        return [as_character(collapse_v)[0].join(out)]
    return out


def b_paste(interp, args):
    return _paste(args, " ")


def b_paste0(interp, args):
    return _paste(args, "")


def b_nchar(interp, args):
    return np.array(
        [len(s) for s in as_character(_pos(args, 1)[0])], dtype=np.float64
    )


def b_substr(interp, args):
    pos = _pos(args, 3)
    strings = as_character(pos[0])
    start, stop = _int1(pos[1]), _int1(pos[2])
    return [s[start - 1 : stop] for s in strings]


def b_toupper(interp, args):
    return [s.upper() for s in as_character(_pos(args, 1)[0])]


def b_tolower(interp, args):
    return [s.lower() for s in as_character(_pos(args, 1)[0])]


def b_strsplit(interp, args):
    pos = _pos(args, 2)
    strings = as_character(pos[0])
    sep = as_character(pos[1])[0]
    return RList(items=[s.split(sep) if sep else list(s) for s in strings])


def b_sprintf(interp, args):
    pos = _pos(args, 1)
    fmt = as_character(pos[0])[0]
    values = []
    import re

    convs = re.findall(r"%[-+ #0-9.]*([diufeEgGsxX])", fmt)
    for conv, v in zip(convs, pos[1:]):
        if conv in "di":
            values.append(_int1(v))
        elif conv == "s":
            values.append(as_character(v)[0])
        else:
            values.append(_num1(v))
    return [fmt % tuple(values)]


# --- coercion / predicates ---------------------------------------------------------


def b_as_numeric(interp, args):
    return as_numeric(_pos(args, 1)[0]).astype(np.float64)


def b_as_integer(interp, args):
    return np.trunc(as_numeric(_pos(args, 1)[0]))


def b_as_character(interp, args):
    return as_character(_pos(args, 1)[0])


def b_as_logical(interp, args):
    return as_logical(_pos(args, 1)[0])


def b_is_null(interp, args):
    return np.array([_pos(args, 1)[0] is RNull])


def b_is_numeric(interp, args):
    return np.array([is_numeric(_pos(args, 1)[0])])


def b_is_character(interp, args):
    return np.array([is_character(_pos(args, 1)[0])])


def b_is_function(interp, args):
    from .interp import RClosure

    v = _pos(args, 1)[0]
    return np.array([isinstance(v, RClosure) or callable(v)])


def b_is_na(interp, args):
    return np.isnan(as_numeric(_pos(args, 1)[0]))


def b_identical(interp, args):
    a, b = _pos(args, 2)[:2]
    if type(a) is not type(b):
        return np.array([False])
    if isinstance(a, np.ndarray):
        return np.array([a.shape == b.shape and bool(np.array_equal(a, b))])
    return np.array([a == b])


def b_ifelse(interp, args):
    pos = _pos(args, 3)
    mask = as_logical(pos[0])
    n = mask.size
    if is_character(pos[1]) or is_character(pos[2]):
        yes_c, no_c = as_character(pos[1]), as_character(pos[2])
        return [
            yes_c[i % len(yes_c)] if mask[i] else no_c[i % len(no_c)]
            for i in range(n)
        ]
    yes, no = as_numeric(pos[1]), as_numeric(pos[2])
    out = np.empty(n)
    for i in range(n):
        out[i] = yes[i % yes.size] if mask[i] else no[i % no.size]
    return out


# --- functional --------------------------------------------------------------------


def b_sapply(interp, args):
    pos = _pos(args, 2)
    x, fn = pos[0], pos[1]
    results = []
    if isinstance(x, np.ndarray):
        items = [np.array([v]) for v in x.tolist()]
    elif isinstance(x, RList):
        items = list(x.items)
    elif isinstance(x, list):
        items = [[v] for v in x]
    else:
        items = []
    for item in items:
        results.append(interp.apply(fn, [(None, item)]))
    if results and all(is_numeric(r) and r.size == 1 for r in results):
        return np.array([float(r[0]) for r in results])
    if results and all(is_character(r) and len(r) == 1 for r in results):
        return [r[0] for r in results]
    return RList(items=results)


def b_lapply(interp, args):
    result = b_sapply(interp, args)
    if isinstance(result, RList):
        return result
    if isinstance(result, np.ndarray):
        return RList(items=[np.array([v]) for v in result.tolist()])
    return RList(items=[[v] for v in result])


def b_do_call(interp, args):
    pos = _pos(args, 2)
    fn, arglist = pos[0], pos[1]
    if not isinstance(arglist, RList):
        raise RError("do.call: second argument must be a list")
    call_args = [
        (name, value) for name, value in zip(arglist.names, arglist.items)
    ]
    return interp.apply(fn, call_args)


def b_Reduce(interp, args):
    pos = _pos(args, 2)
    fn, x = pos[0], pos[1]
    if isinstance(x, np.ndarray):
        items = [np.array([v]) for v in x.tolist()]
    elif isinstance(x, RList):
        items = list(x.items)
    else:
        items = [[v] for v in x]
    if not items:
        return RNull
    acc = items[0]
    for item in items[1:]:
        acc = interp.apply(fn, [(None, acc), (None, item)])
    return acc


def b_Map(interp, args):
    pos = _pos(args, 2)
    fn = pos[0]
    vectors = pos[1:]
    lists = []
    for v in vectors:
        if isinstance(v, np.ndarray):
            lists.append([np.array([x]) for x in v.tolist()])
        elif isinstance(v, RList):
            lists.append(list(v.items))
        else:
            lists.append([[x] for x in v])
    n = max(len(lst) for lst in lists) if lists else 0
    out = []
    for i in range(n):
        call = [(None, lst[i % len(lst)]) for lst in lists]
        out.append(interp.apply(fn, call))
    return RList(items=out)


# --- control / environment -------------------------------------------------------------


def b_return(interp, args):
    pos = _pos(args)
    raise ReturnSignal(pos[0] if pos else RNull)


def b_stop(interp, args):
    raise RError("".join(as_character(v)[0] for _, v in args) or "error")


def b_stopifnot(interp, args):
    for _, v in args:
        if not bool(np.all(as_logical(v))):
            raise RError("stopifnot: condition is not TRUE")
    return RNull


def b_exists(interp, args):
    name = as_character(_pos(args, 1)[0])[0]
    return np.array([interp.global_env.has(name)])


def b_cat(interp, args):
    sep_v = _kw(args, "sep")
    sep = as_character(sep_v)[0] if sep_v is not None else " "
    parts: list[str] = []
    for k, v in args:
        if k == "sep":
            continue
        parts.extend(as_character(v))
    interp.output.append(sep.join(parts))
    return RNull


def b_print(interp, args):
    from .values import r_print_repr

    v = _pos(args, 1)[0]
    interp.output.append(r_print_repr(v))
    return v


# --- RNG (deterministic, numpy-backed) -----------------------------------------------------

_RNG_KEY = "__rng__"


def _rng(interp) -> np.random.RandomState:
    rng = interp.global_env.vars.get(_RNG_KEY)
    if rng is None:
        rng = np.random.RandomState(0)
        interp.global_env.vars[_RNG_KEY] = rng
    return rng


def b_set_seed(interp, args):
    interp.global_env.vars[_RNG_KEY] = np.random.RandomState(
        _int1(_pos(args, 1)[0])
    )
    return RNull


def b_runif(interp, args):
    pos = _pos(args, 1)
    n = _int1(pos[0])
    lo = _num1(_kw(args, "min", pos[1] if len(pos) > 1 else [0]))
    hi = _num1(_kw(args, "max", pos[2] if len(pos) > 2 else [1]))
    return _rng(interp).uniform(lo, hi, n)


def b_rnorm(interp, args):
    pos = _pos(args, 1)
    n = _int1(pos[0])
    mean = _num1(_kw(args, "mean", pos[1] if len(pos) > 1 else [0]))
    sd = _num1(_kw(args, "sd", pos[2] if len(pos) > 2 else [1]))
    return _rng(interp).normal(mean, sd, n)


def b_sample(interp, args):
    pos = _pos(args, 1)
    x = as_numeric(pos[0])
    if x.size == 1 and x[0] >= 1:
        x = np.arange(1, int(x[0]) + 1, dtype=np.float64)
    size = _int1(_kw(args, "size", pos[1] if len(pos) > 1 else [x.size]))
    replace_v = _kw(args, "replace")
    replace = bool(as_logical(replace_v)[0]) if replace_v is not None else False
    return _rng(interp).choice(x, size=size, replace=replace)


BUILTINS: dict[str, Callable] = {
    "c": b_c,
    "vector": b_vector,
    "numeric": b_numeric,
    "list": b_list,
    "seq": b_seq,
    "seq_len": b_seq_len,
    "seq_along": b_seq_along,
    "rep": b_rep,
    "length": b_length,
    "rev": b_rev,
    "sort": b_sort,
    "which": b_which,
    "unique": b_unique,
    "sum": _reduction(lambda a: float(np.sum(a))),
    "mean": _reduction(lambda a: float(np.mean(a)) if a.size else float("nan")),
    "min": _reduction(lambda a: float(np.min(a))),
    "max": _reduction(lambda a: float(np.max(a))),
    "median": _reduction(lambda a: float(np.median(a))),
    "sd": _reduction(lambda a: float(np.std(a, ddof=1)) if a.size > 1 else float("nan")),
    "var": _reduction(lambda a: float(np.var(a, ddof=1)) if a.size > 1 else float("nan")),
    "prod": b_prod,
    "cumsum": b_cumsum,
    "abs": _elementwise(np.abs),
    "sqrt": _elementwise(np.sqrt),
    "exp": _elementwise(np.exp),
    "log": _elementwise(np.log),
    "log2": _elementwise(np.log2),
    "log10": _elementwise(np.log10),
    "sin": _elementwise(np.sin),
    "cos": _elementwise(np.cos),
    "tan": _elementwise(np.tan),
    "floor": _elementwise(np.floor),
    "ceiling": _elementwise(np.ceil),
    "trunc": _elementwise(np.trunc),
    "sign": _elementwise(np.sign),
    "round": b_round,
    "any": b_any,
    "all": b_all,
    "paste": b_paste,
    "paste0": b_paste0,
    "nchar": b_nchar,
    "substr": b_substr,
    "toupper": b_toupper,
    "tolower": b_tolower,
    "strsplit": b_strsplit,
    "sprintf": b_sprintf,
    "as.numeric": b_as_numeric,
    "as.double": b_as_numeric,
    "as.integer": b_as_integer,
    "as.character": b_as_character,
    "as.logical": b_as_logical,
    "is.null": b_is_null,
    "is.numeric": b_is_numeric,
    "is.character": b_is_character,
    "is.function": b_is_function,
    "is.na": b_is_na,
    "identical": b_identical,
    "ifelse": b_ifelse,
    "sapply": b_sapply,
    "lapply": b_lapply,
    "vapply": b_sapply,
    "Map": b_Map,
    "Reduce": b_Reduce,
    "do.call": b_do_call,
    "return": b_return,
    "stop": b_stop,
    "stopifnot": b_stopifnot,
    "exists": b_exists,
    "cat": b_cat,
    "print": b_print,
    "set.seed": b_set_seed,
    "runif": b_runif,
    "rnorm": b_rnorm,
    "sample": b_sample,
}


def r_eval(src: str) -> Any:
    """One-shot convenience: evaluate R source in a fresh interpreter."""
    from .interp import RInterp

    return RInterp().eval_code(src)
