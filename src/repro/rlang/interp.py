"""Evaluator for the mini-R language."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .errors import BreakSignal, NextSignal, RError, ReturnSignal
from .parser import parse
from .values import (
    RList,
    RNull,
    as_character,
    as_logical,
    as_numeric,
    fmt_scalar,
    is_character,
    is_numeric,
    r_length,
    r_repr,
    scalar_bool,
)


class Env:
    __slots__ = ("vars", "parent")

    def __init__(self, parent: "Env | None" = None):
        self.vars: dict[str, Any] = {}
        self.parent = parent

    def get(self, name: str) -> Any:
        env: Env | None = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise RError("object '%s' not found" % name)

    def set_local(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def set_super(self, name: str, value: Any) -> None:
        env: Env | None = self.parent
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        # R assigns in the global env when not found
        root = self
        while root.parent is not None:
            root = root.parent
        root.vars[name] = value

    def has(self, name: str) -> bool:
        env: Env | None = self
        while env is not None:
            if name in env.vars:
                return True
            env = env.parent
        return False


class RClosure:
    __slots__ = ("params", "body", "env")

    def __init__(self, params: list[tuple[str, tuple | None]], body: tuple, env: Env):
        self.params = params
        self.body = body
        self.env = env


def _recycle(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """R vector recycling: repeat the shorter cyclically."""
    la, lb = a.size, b.size
    if la == lb:
        return a, b
    if la == 0 or lb == 0:
        return a[:0], b[:0]
    n = max(la, lb)
    if la < lb:
        a = np.resize(a, n)
    else:
        b = np.resize(b, n)
    return a, b


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a**b,
    "%%": lambda a, b: np.mod(a, b),
    "%/%": lambda a, b: np.floor_divide(a, b),
}
_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


class RInterp:
    """One embedded R interpreter instance (per worker rank)."""

    def __init__(self) -> None:
        self.global_env = Env()
        self.output: list[str] = []
        self._register_builtins()

    # -- public API -----------------------------------------------------------

    def eval_code(self, src: str, env: Env | None = None) -> Any:
        node = parse(src)
        try:
            return self._eval(node, env or self.global_env)
        except ReturnSignal as r:
            return r.value

    def eval_to_string(self, src: str) -> str:
        return r_repr(self.eval_code(src))

    def get(self, name: str) -> Any:
        return self.global_env.get(name)

    def set(self, name: str, value: Any) -> None:
        self.global_env.set_local(name, value)

    def reset(self) -> None:
        """Reinitialize: drop all user state (paper's reinit mode)."""
        self.global_env = Env()
        self.output = []
        self._register_builtins()

    # -- evaluation --------------------------------------------------------------

    def _eval(self, node: tuple, env: Env) -> Any:
        kind = node[0]
        if kind == "num":
            return np.array([node[1]], dtype=np.float64)
        if kind == "str":
            return [node[1]]
        if kind == "bool":
            return np.array([node[1]], dtype=bool)
        if kind == "null":
            return RNull
        if kind == "missing":
            return RNull
        if kind == "id":
            return env.get(node[1])
        if kind == "block":
            result: Any = RNull
            for stmt in node[1]:
                result = self._eval(stmt, env)
            return result
        if kind == "assign":
            value = self._eval(node[2], env)
            self._assign(node[1], value, env, node[3])
            return value
        if kind == "binop":
            return self._binop(node[1], node[2], node[3], env)
        if kind == "unop":
            return self._unop(node[1], node[2], env)
        if kind == "if":
            if scalar_bool(self._eval(node[1], env)):
                return self._eval(node[2], env)
            if node[3] is not None:
                return self._eval(node[3], env)
            return RNull
        if kind == "for":
            seq = self._eval(node[2], env)
            items: list[Any]
            if isinstance(seq, np.ndarray):
                items = [np.array([x], dtype=seq.dtype) for x in seq.tolist()]
            elif isinstance(seq, list):
                items = [[x] for x in seq]
            elif isinstance(seq, RList):
                items = list(seq.items)
            else:
                items = []
            for item in items:
                env.set_local(node[1], item)
                try:
                    self._eval(node[3], env)
                except BreakSignal:
                    break
                except NextSignal:
                    continue
            return RNull
        if kind == "while":
            while scalar_bool(self._eval(node[1], env)):
                try:
                    self._eval(node[2], env)
                except BreakSignal:
                    break
                except NextSignal:
                    continue
            return RNull
        if kind == "repeat":
            while True:
                try:
                    self._eval(node[1], env)
                except BreakSignal:
                    break
                except NextSignal:
                    continue
            return RNull
        if kind == "function":
            return RClosure(node[1], node[2], env)
        if kind == "call":
            return self._call(node[1], node[2], env)
        if kind == "index":
            return self._index(node[1], node[2], env)
        if kind == "index2":
            return self._index2(node[1], node[2], env)
        if kind == "dollar":
            obj = self._eval(node[1], env)
            if isinstance(obj, RList):
                return obj.get(node[2])
            raise RError("$ operator is invalid for this object")
        if kind == "break":
            raise BreakSignal()
        if kind == "next":
            raise NextSignal()
        raise RError("cannot evaluate node %r" % (node,))

    # -- assignment ----------------------------------------------------------------

    def _assign(self, target: tuple, value: Any, env: Env, superassign: bool) -> None:
        kind = target[0]
        if kind == "id":
            if superassign:
                env.set_super(target[1], value)
            else:
                env.set_local(target[1], value)
            return
        if kind in ("index", "index2"):
            # x[i] <- v : read-modify-write
            obj_node = target[1]
            obj = self._eval(obj_node, env)
            if kind == "index":
                if len(target[2]) != 1:
                    raise RError("only single-subscript assignment supported")
                idx = self._eval(target[2][0][1], env)
                obj = self._index_assign(obj, idx, value)
            else:
                idx = self._eval(target[2], env)
                if isinstance(obj, RList):
                    i = int(as_numeric(idx)[0]) - 1
                    while len(obj.items) <= i:
                        obj.items.append(RNull)
                        obj.names.append(None)
                    obj.items[i] = value
                else:
                    obj = self._index_assign(obj, idx, value)
            self._assign(obj_node, obj, env, superassign)
            return
        if kind == "dollar":
            obj = self._eval(target[1], env)
            if not isinstance(obj, RList):
                raise RError("$<- is only supported on lists")
            name = target[2]
            if name in obj.names:
                obj.items[obj.names.index(name)] = value
            else:
                obj.names.append(name)
                obj.items.append(value)
            self._assign(target[1], obj, env, superassign)
            return
        raise RError("invalid assignment target")

    def _index_assign(self, obj: Any, idx: Any, value: Any) -> Any:
        if obj is RNull:
            obj = np.array([], dtype=np.float64)
        if isinstance(obj, np.ndarray):
            positions = self._positions(idx, obj.size)
            vals = as_numeric(value)
            grown = max(positions) + 1 if positions else obj.size
            if grown > obj.size:
                out = np.full(grown, np.nan)
                out[: obj.size] = as_numeric(obj)
                obj = out
            else:
                obj = as_numeric(obj).copy()
            for k, p in enumerate(positions):
                obj[p] = vals[k % vals.size]
            return obj
        if isinstance(obj, list):
            positions = self._positions(idx, len(obj))
            vals = as_character(value)
            out = list(obj)
            grown = max(positions) + 1 if positions else len(out)
            while len(out) < grown:
                out.append("NA")
            for k, p in enumerate(positions):
                out[p] = vals[k % len(vals)]
            return out
        raise RError("cannot index-assign this object")

    # -- indexing -------------------------------------------------------------------

    def _positions(self, idx: Any, length: int) -> list[int]:
        """Resolve an R index vector to 0-based positions."""
        if isinstance(idx, np.ndarray) and idx.dtype == bool:
            mask, _ = _recycle(idx, np.zeros(length, dtype=bool))
            return [i for i in range(length) if mask[i]]
        nums = as_numeric(idx)
        if nums.size and (nums < 0).all():
            excluded = {int(-x) - 1 for x in nums.tolist()}
            return [i for i in range(length) if i not in excluded]
        out = []
        for x in nums.tolist():
            i = int(x)
            if i < 1:
                raise RError("invalid subscript %d" % i)
            out.append(i - 1)
        return out

    def _index(self, obj_node: tuple, args: list, env: Env) -> Any:
        obj = self._eval(obj_node, env)
        if len(args) != 1:
            raise RError("only one-dimensional indexing is supported")
        idx = self._eval(args[0][1], env)
        if isinstance(obj, RList):
            positions = self._positions(idx, len(obj.items))
            return RList(
                items=[obj.items[p] for p in positions],
                names=[obj.names[p] for p in positions],
            )
        if isinstance(obj, np.ndarray):
            positions = self._positions(idx, obj.size)
            return np.array(
                [obj[p] if 0 <= p < obj.size else np.nan for p in positions],
                dtype=obj.dtype if all(0 <= p < obj.size for p in positions) else np.float64,
            )
        if isinstance(obj, list):
            positions = self._positions(idx, len(obj))
            return [obj[p] if p < len(obj) else "NA" for p in positions]
        raise RError("object is not subsettable")

    def _index2(self, obj_node: tuple, arg: tuple, env: Env) -> Any:
        obj = self._eval(obj_node, env)
        idx = self._eval(arg, env)
        i = int(as_numeric(idx)[0]) - 1
        if isinstance(obj, RList):
            if not 0 <= i < len(obj.items):
                raise RError("subscript out of bounds")
            return obj.items[i]
        if isinstance(obj, np.ndarray):
            return obj[i : i + 1]
        if isinstance(obj, list):
            return [obj[i]]
        raise RError("object is not subsettable")

    # -- operators -------------------------------------------------------------------

    def _binop(self, op: str, a_node: tuple, b_node: tuple, env: Env) -> Any:
        if op in ("&&", "||"):
            a = scalar_bool(self._eval(a_node, env))
            if op == "&&":
                if not a:
                    return np.array([False])
                return np.array([scalar_bool(self._eval(b_node, env))])
            if a:
                return np.array([True])
            return np.array([scalar_bool(self._eval(b_node, env))])
        a = self._eval(a_node, env)
        b = self._eval(b_node, env)
        if op == ":":
            lo = float(as_numeric(a)[0])
            hi = float(as_numeric(b)[0])
            step = 1.0 if hi >= lo else -1.0
            return np.arange(lo, hi + step / 2, step, dtype=np.float64)
        if op == "%in%":
            left = as_character(a)
            right = set(as_character(b))
            return np.array([x in right for x in left], dtype=bool)
        if op in _ARITH:
            x, y = _recycle(as_numeric(a), as_numeric(b))
            with np.errstate(divide="ignore", invalid="ignore"):
                return _ARITH[op](x, y)
        if op in _CMP:
            if is_character(a) or is_character(b):
                xs, ys = as_character(a), as_character(b)
                n = max(len(xs), len(ys))
                if xs and ys:
                    out = [
                        _CMP[op](xs[i % len(xs)], ys[i % len(ys)])
                        for i in range(n)
                    ]
                else:
                    out = []
                return np.array(out, dtype=bool)
            x, y = _recycle(as_numeric(a), as_numeric(b))
            return _CMP[op](x, y)
        if op in ("&", "|"):
            x, y = _recycle(as_logical(a), as_logical(b))
            return (x & y) if op == "&" else (x | y)
        raise RError("unknown operator %r" % op)

    def _unop(self, op: str, node: tuple, env: Env) -> Any:
        v = self._eval(node, env)
        if op == "-":
            return -as_numeric(v)
        if op == "+":
            return as_numeric(v)
        if op == "!":
            return ~as_logical(v)
        raise RError("unknown unary operator %r" % op)

    # -- calls ------------------------------------------------------------------------

    def _call(self, fn_node: tuple, args: list, env: Env) -> Any:
        fn = self._eval(fn_node, env)
        evaluated: list[tuple[str | None, Any]] = [
            (name, self._eval(a, env)) for name, a in args
        ]
        return self.apply(fn, evaluated)

    def apply(self, fn: Any, evaluated: list[tuple[str | None, Any]]) -> Any:
        if isinstance(fn, RClosure):
            call_env = Env(parent=fn.env)
            names = [p for p, _ in fn.params]
            bound: dict[str, Any] = {}
            positional = []
            for name, value in evaluated:
                if name is None:
                    positional.append(value)
                else:
                    if name not in names:
                        raise RError("unused argument (%s)" % name)
                    bound[name] = value
            free = [p for p in names if p not in bound]
            if len(positional) > len(free):
                raise RError("unused arguments in call")
            for p, value in zip(free, positional):
                bound[p] = value
            for p, default in fn.params:
                if p not in bound:
                    if default is None:
                        continue  # missing; error on use
                    bound[p] = self._eval(default, call_env)
            for k, v in bound.items():
                call_env.set_local(k, v)
            try:
                return self._eval(fn.body, call_env)
            except ReturnSignal as r:
                return r.value
        if callable(fn):
            return fn(self, evaluated)
        raise RError("attempt to apply non-function")

    # -- builtins ----------------------------------------------------------------------

    def _register_builtins(self) -> None:
        from .builtins import BUILTINS

        for name, fn in BUILTINS.items():
            self.global_env.set_local(name, fn)


def r_eval(src: str) -> Any:
    """One-shot convenience: evaluate R source in a fresh interpreter."""
    return RInterp().eval_code(src)
