"""R interpreter errors and control-flow signals."""

from __future__ import annotations


class RError(Exception):
    """An R-level error (``stop()`` or a semantic violation)."""


class RParseError(RError):
    pass


class BreakSignal(Exception):
    pass


class NextSignal(Exception):
    pass


class ReturnSignal(Exception):
    def __init__(self, value):
        super().__init__("return")
        self.value = value
