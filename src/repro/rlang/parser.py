"""Lexer and parser for the mini-R language.

AST nodes are plain tuples: ('num', x) ('str', s) ('id', name)
('bool', b) ('null',) ('call', fn_node, args) where args are
(name|None, node) pairs, ('binop', op, a, b), ('unop', op, a),
('assign', target_node, value_node, super), ('function', params, body),
('if', cond, then, else|None), ('for', var, seq, body),
('while', cond, body), ('repeat', body), ('block', [stmts]),
('index', obj, args), ('index2', obj, arg), ('dollar', obj, name),
('break',), ('next',), ('missing',).
"""

from __future__ import annotations

from .errors import RParseError

_KEYWORDS = {
    "if",
    "else",
    "for",
    "while",
    "repeat",
    "function",
    "break",
    "next",
    "in",
    "TRUE",
    "FALSE",
    "NULL",
    "NA",
    "Inf",
    "NaN",
    "T",
    "F",
}

_OPS = [
    "<<-", "<-", "<=", ">=", "==", "!=", "&&", "||", "%%", "%/%", "%in%",
    "[[", "]]", "(", ")", "[", "]", "{", "}", ",", ";", "+", "-", "*",
    "/", "^", "<", ">", "=", "!", "&", "|", ":", "$", "?",
]


def tokenize(src: str) -> list[tuple[str, str, int]]:
    """Return (kind, text, line) tokens; kind in num/str/id/kw/op/nl."""
    toks: list[tuple[str, str, int]] = []
    i, n = 0, len(src)
    line = 1
    while i < n:
        c = src[i]
        if c == "\n":
            toks.append(("nl", "\n", line))
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if c == "#":
            while i < n and src[i] != "\n":
                i += 1
            continue
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            seen_e = False
            while j < n:
                ch = src[j]
                if ch.isdigit() or ch == ".":
                    j += 1
                elif ch in "eE" and not seen_e:
                    seen_e = True
                    j += 1
                    if j < n and src[j] in "+-":
                        j += 1
                elif ch == "L":  # integer literal suffix
                    j += 1
                    break
                else:
                    break
            toks.append(("num", src[i:j], line))
            i = j
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            buf = []
            while j < n and src[j] != quote:
                if src[j] == "\\" and j + 1 < n:
                    esc = src[j + 1]
                    buf.append({"n": "\n", "t": "\t", "r": "\r"}.get(esc, esc))
                    j += 2
                    continue
                buf.append(src[j])
                j += 1
            if j >= n:
                raise RParseError("unterminated string (line %d)" % line)
            toks.append(("str", "".join(buf), line))
            i = j + 1
            continue
        if c.isalpha() or c in "._":
            j = i
            while j < n and (src[j].isalnum() or src[j] in "._"):
                j += 1
            word = src[i:j]
            toks.append(("kw" if word in _KEYWORDS else "id", word, line))
            i = j
            continue
        matched = False
        for op in _OPS:
            if src.startswith(op, i):
                toks.append(("op", op, line))
                i += len(op)
                matched = True
                break
        if not matched:
            raise RParseError("unexpected character %r (line %d)" % (c, line))
    toks.append(("eof", "", line))
    return toks


class Parser:
    def __init__(self, toks: list[tuple[str, str, int]]):
        self.toks = toks
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, skip_nl: bool = False) -> tuple[str, str, int]:
        pos = self.pos
        while skip_nl and self.toks[pos][0] == "nl":
            pos += 1
        return self.toks[pos]

    def advance(self, skip_nl: bool = False) -> tuple[str, str, int]:
        while skip_nl and self.toks[self.pos][0] == "nl":
            self.pos += 1
        tok = self.toks[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def accept_op(self, op: str, skip_nl: bool = False) -> bool:
        if self.peek(skip_nl)[0:2] == ("op", op):
            self.advance(skip_nl)
            return True
        return False

    def expect_op(self, op: str, skip_nl: bool = True) -> None:
        tok = self.advance(skip_nl)
        if tok[0:2] != ("op", op):
            raise RParseError(
                "expected %r but found %r (line %d)" % (op, tok[1], tok[2])
            )

    def accept_kw(self, word: str, skip_nl: bool = False) -> bool:
        if self.peek(skip_nl)[0:2] == ("kw", word):
            self.advance(skip_nl)
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> tuple:
        stmts = []
        while True:
            tok = self.peek(skip_nl=True)
            if tok[0] == "eof":
                break
            stmts.append(self.statement())
            while self.peek()[0] == "nl" or self.peek()[0:2] == ("op", ";"):
                self.advance()
        return ("block", stmts)

    def statement(self) -> tuple:
        return self.expr()

    def expr(self) -> tuple:
        return self.assignment()

    def assignment(self) -> tuple:
        lhs = self.or_expr()
        tok = self.peek()
        if tok[0] == "op" and tok[1] in ("<-", "<<-", "="):
            self.advance()
            rhs = self.assignment()
            return ("assign", lhs, rhs, tok[1] == "<<-")
        return lhs

    def _bin_level(self, ops: set[str], sub) -> tuple:
        node = sub()
        while True:
            tok = self.peek()
            if tok[0] == "op" and tok[1] in ops:
                self.advance()
                node = ("binop", tok[1], node, sub())
            elif tok[0:2] == ("op", "%in%") and "%in%" in ops:
                self.advance()
                node = ("binop", "%in%", node, sub())
            else:
                return node

    def or_expr(self):
        return self._bin_level({"|", "||"}, self.and_expr)

    def and_expr(self):
        return self._bin_level({"&", "&&"}, self.not_expr)

    def not_expr(self) -> tuple:
        if self.peek()[0:2] == ("op", "!"):
            self.advance()
            return ("unop", "!", self.not_expr())
        return self.comparison()

    def comparison(self):
        return self._bin_level(
            {"==", "!=", "<", ">", "<=", ">="}, self.additive
        )

    def additive(self):
        return self._bin_level({"+", "-"}, self.multiplicative)

    def multiplicative(self):
        return self._bin_level({"*", "/"}, self.special)

    def special(self):
        return self._bin_level({"%%", "%/%", "%in%"}, self.range_expr)

    def range_expr(self):
        return self._bin_level({":"}, self.unary)

    def unary(self) -> tuple:
        tok = self.peek()
        if tok[0] == "op" and tok[1] in ("-", "+"):
            self.advance()
            return ("unop", tok[1], self.unary())
        return self.power()

    def power(self) -> tuple:
        base = self.postfix()
        if self.peek()[0:2] == ("op", "^"):
            self.advance()
            return ("binop", "^", base, self.unary())  # right-assoc
        return base

    def postfix(self) -> tuple:
        node = self.primary()
        while True:
            tok = self.peek()
            if tok[0:2] == ("op", "("):
                self.advance()
                args = self.call_args(")")
                node = ("call", node, args)
            elif tok[0:2] == ("op", "[["):
                self.advance()
                arg = self.expr()
                self.expect_op("]]")
                node = ("index2", node, arg)
            elif tok[0:2] == ("op", "["):
                self.advance()
                args = self.call_args("]")
                node = ("index", node, args)
            elif tok[0:2] == ("op", "$"):
                self.advance()
                name_tok = self.advance()
                if name_tok[0] not in ("id", "str", "kw"):
                    raise RParseError(
                        "expected name after $ (line %d)" % name_tok[2]
                    )
                node = ("dollar", node, name_tok[1])
            else:
                return node

    def call_args(self, closer: str) -> list[tuple[str | None, tuple]]:
        args: list[tuple[str | None, tuple]] = []
        if self.accept_op(closer, skip_nl=True):
            return args
        while True:
            tok = self.peek(skip_nl=True)
            if tok[0:2] == ("op", ","):
                # empty argument (e.g. m[, 1]); represent as missing
                self.advance(skip_nl=True)
                args.append((None, ("missing",)))
                continue
            name: str | None = None
            # named argument: ident '=' (but not '==')
            if tok[0] in ("id", "str"):
                save = self.pos
                self.advance(skip_nl=True)
                if self.peek()[0:2] == ("op", "=") and self.toks[self.pos + 1][0:2] != ("op", "="):
                    self.advance()
                    name = tok[1]
                else:
                    self.pos = save
            args.append((name, self.expr()))
            if self.accept_op(",", skip_nl=True):
                continue
            self.expect_op(closer)
            return args

    def primary(self) -> tuple:
        tok = self.advance(skip_nl=True)
        kind, text, line = tok
        if kind == "num":
            return ("num", float(text.rstrip("L")))
        if kind == "str":
            return ("str", text)
        if kind == "id":
            return ("id", text)
        if kind == "kw":
            if text in ("TRUE", "T"):
                return ("bool", True)
            if text in ("FALSE", "F"):
                return ("bool", False)
            if text == "NULL":
                return ("null",)
            if text == "NA":
                return ("num", float("nan"))
            if text == "Inf":
                return ("num", float("inf"))
            if text == "NaN":
                return ("num", float("nan"))
            if text == "if":
                self.expect_op("(")
                cond = self.expr()
                self.expect_op(")")
                then = self.statement_or_block()
                els = None
                if self.accept_kw("else", skip_nl=True):
                    els = self.statement_or_block()
                return ("if", cond, then, els)
            if text == "for":
                self.expect_op("(")
                var_tok = self.advance(skip_nl=True)
                if var_tok[0] != "id":
                    raise RParseError("bad for-loop variable (line %d)" % line)
                if not self.accept_kw("in", skip_nl=True):
                    raise RParseError("expected 'in' in for (line %d)" % line)
                seq = self.expr()
                self.expect_op(")")
                return ("for", var_tok[1], seq, self.statement_or_block())
            if text == "while":
                self.expect_op("(")
                cond = self.expr()
                self.expect_op(")")
                return ("while", cond, self.statement_or_block())
            if text == "repeat":
                return ("repeat", self.statement_or_block())
            if text == "function":
                self.expect_op("(")
                params: list[tuple[str, tuple | None]] = []
                if not self.accept_op(")", skip_nl=True):
                    while True:
                        p = self.advance(skip_nl=True)
                        if p[0] != "id":
                            raise RParseError(
                                "bad parameter name %r (line %d)" % (p[1], p[2])
                            )
                        default = None
                        if self.accept_op("="):
                            default = self.expr()
                        params.append((p[1], default))
                        if self.accept_op(",", skip_nl=True):
                            continue
                        self.expect_op(")")
                        break
                body = self.statement_or_block()
                return ("function", params, body)
            if text == "break":
                return ("break",)
            if text == "next":
                return ("next",)
            raise RParseError("unexpected keyword %r (line %d)" % (text, line))
        if kind == "op" and text == "(":
            node = self.expr()
            self.expect_op(")")
            return node
        if kind == "op" and text == "{":
            stmts = []
            while True:
                if self.accept_op("}", skip_nl=True):
                    break
                stmts.append(self.statement())
                while self.peek()[0] == "nl" or self.peek()[0:2] == ("op", ";"):
                    self.advance()
            return ("block", stmts)
        if kind == "op" and text == "-":
            return ("unop", "-", self.unary())
        raise RParseError("unexpected token %r (line %d)" % (text, line))

    def statement_or_block(self) -> tuple:
        return self.statement()


_CACHE: dict[str, tuple] = {}


def parse(src: str) -> tuple:
    node = _CACHE.get(src)
    if node is None:
        node = Parser(tokenize(src)).parse_program()
        if len(_CACHE) > 2048:
            _CACHE.clear()
        _CACHE[src] = node
    return node
