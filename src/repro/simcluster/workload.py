"""Task-duration workload generators for the cluster model."""

from __future__ import annotations

import numpy as np


def constant(n: int, duration: float) -> np.ndarray:
    return np.full(n, duration, dtype=np.float64)


def uniform(n: int, lo: float, hi: float, seed: int = 0) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return rng.uniform(lo, hi, n)


def lognormal(n: int, median: float, sigma: float = 1.0, seed: int = 0) -> np.ndarray:
    """Heavy-tailed durations: the varying-runtime regime of §II-A."""
    rng = np.random.RandomState(seed)
    return np.exp(rng.normal(np.log(median), sigma, n))


def bimodal(
    n: int,
    short: float,
    long: float,
    long_fraction: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """A few stragglers among many short tasks."""
    rng = np.random.RandomState(seed)
    durations = np.full(n, short, dtype=np.float64)
    n_long = max(1, int(round(n * long_fraction)))
    idx = rng.choice(n, size=n_long, replace=False)
    durations[idx] = long
    return durations
