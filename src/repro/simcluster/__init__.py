"""Discrete-event cluster model for large-scale Swift/T behavior."""

from .des import Simulator
from .model import ClusterModel, ClusterParams, ClusterResult, simulate
from .workload import bimodal, constant, lognormal, uniform

__all__ = [
    "Simulator",
    "ClusterModel",
    "ClusterParams",
    "ClusterResult",
    "simulate",
    "constant",
    "uniform",
    "lognormal",
    "bimodal",
]
