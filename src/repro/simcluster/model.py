"""Discrete-event model of the Swift/T runtime at large scale.

This reproduces the *scaling shape* of the real system at rank counts a
single machine cannot host natively (the paper reports runs on "hundreds
of thousands of cores").  The model follows Fig. 2: engines emit leaf
tasks (serialized by a per-task emit overhead), ADLB servers process
protocol messages serially (GET/PUT/steal, each costing a service time),
and workers loop get -> execute -> get with network latency on every
message.  All protocol decisions (parked gets, round-robin attachment,
half-queue stealing) mirror :mod:`repro.adlb`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .des import Simulator


@dataclass
class ClusterParams:
    n_workers: int = 64
    n_servers: int = 1
    n_engines: int = 1
    net_latency: float = 2e-6  # one-way message latency (s)
    server_op_time: float = 1e-6  # server CPU per protocol message
    engine_emit_time: float = 5e-6  # engine CPU to release one task
    worker_overhead: float = 1e-6  # worker CPU around each task
    steal: bool = True
    steal_retry: float = 200e-6

    @property
    def total_ranks(self) -> int:
        return self.n_workers + self.n_servers + self.n_engines


@dataclass
class ClusterResult:
    params: ClusterParams
    n_tasks: int
    makespan: float
    tasks_per_sec: float
    worker_utilization: float
    worker_busy_spread: float  # max-min busy fraction across workers
    server_utilization: list[float] = field(default_factory=list)
    messages: int = 0
    steals: int = 0
    events: int = 0


class _Server:
    __slots__ = (
        "idx", "queue", "parked", "next_free", "busy", "steal_inflight",
        "ring",
    )

    def __init__(self, idx: int):
        self.idx = idx
        self.queue: deque[float] = deque()  # task durations
        self.parked: deque[int] = deque()  # worker ids
        self.next_free = 0.0
        self.busy = 0.0
        self.steal_inflight = False
        self.ring = 0


class ClusterModel:
    def __init__(self, params: ClusterParams, durations: np.ndarray):
        self.p = params
        self.durations = durations
        self.sim = Simulator()
        self.servers = [_Server(i) for i in range(params.n_servers)]
        self.worker_busy = np.zeros(params.n_workers)
        self.worker_server = [
            i % params.n_servers for i in range(params.n_workers)
        ]
        self.completed = 0
        self.n_tasks = len(durations)
        self.messages = 0
        self.steals = 0
        self.finish_time = 0.0
        self._emit_cursor = 0

    # -- server message serialization -------------------------------------

    def _server_process(self, server: _Server, fn, *args) -> None:
        """Model the server's serial CPU: queue the op, apply at done."""
        start = max(self.sim.now, server.next_free)
        done = start + self.p.server_op_time
        server.next_free = done
        server.busy += self.p.server_op_time
        self.sim.at(done, fn, server, *args)

    # -- engine ---------------------------------------------------------------

    def _engine_emit(self, engine_idx: int) -> None:
        if self._emit_cursor >= self.n_tasks:
            return
        duration = float(self.durations[self._emit_cursor])
        self._emit_cursor += 1
        # As in real ADLB, a PUT goes to the emitting client's attached
        # server; work reaches other servers only by stealing.
        server = self.servers[engine_idx % self.p.n_servers]
        # message flies to the server while the engine keeps emitting
        self.messages += 1
        self.sim.schedule(
            self.p.net_latency,
            self._server_process,
            server,
            self._on_put,
            duration,
        )
        self.sim.schedule(self.p.engine_emit_time, self._engine_emit, engine_idx)

    def _on_put(self, server: _Server, duration: float) -> None:
        if server.parked:
            worker = server.parked.popleft()
            self._deliver(worker, duration)
        else:
            server.queue.append(duration)

    # -- worker ------------------------------------------------------------------

    def _worker_get(self, worker: int) -> None:
        server = self.servers[self.worker_server[worker]]
        self.messages += 1
        self.sim.schedule(
            self.p.net_latency, self._server_process, server, self._on_get, worker
        )

    def _on_get(self, server: _Server, worker: int) -> None:
        if server.queue:
            duration = server.queue.popleft()
            self._deliver(worker, duration)
            return
        server.parked.append(worker)
        if self.p.steal and self.p.n_servers > 1:
            self._maybe_steal(server)

    def _deliver(self, worker: int, duration: float) -> None:
        self.messages += 1
        exec_time = duration + self.p.worker_overhead
        self.worker_busy[worker] += duration
        # reply latency + execution, then the task completes
        self.sim.schedule(
            self.p.net_latency + exec_time, self._task_done, worker
        )

    def _task_done(self, worker: int) -> None:
        self.completed += 1
        if self.completed >= self.n_tasks:
            self.finish_time = self.sim.now
        self._worker_get(worker)

    # -- stealing ----------------------------------------------------------------

    def _maybe_steal(self, server: _Server) -> None:
        if server.steal_inflight or self.completed >= self.n_tasks:
            return
        victims = [s for s in self.servers if s is not server]
        victim = victims[server.ring % len(victims)]
        server.ring += 1
        server.steal_inflight = True
        self.steals += 1
        self.messages += 2
        self.sim.schedule(
            self.p.net_latency,
            self._server_process,
            victim,
            self._on_steal_req,
            server,
        )

    def _on_steal_req(self, victim: _Server, thief: _Server) -> None:
        n = (len(victim.queue) + 1) // 2  # up to half the victim's queue
        batch = [victim.queue.popleft() for _ in range(n)]
        self.sim.schedule(
            self.p.net_latency,
            self._server_process,
            thief,
            self._on_steal_resp,
            batch,
        )

    def _on_steal_resp(self, thief: _Server, batch: list[float]) -> None:
        thief.steal_inflight = False
        for duration in batch:
            self._on_put(thief, duration)
        if not batch and thief.parked and self.completed < self.n_tasks:
            self.sim.schedule(self.p.steal_retry, self._maybe_steal, thief)

    # -- run -------------------------------------------------------------------------

    def run(self) -> ClusterResult:
        for e in range(self.p.n_engines):
            # engines interleave over the shared task list
            self.sim.schedule(0.0, self._engine_emit, e)
        for w in range(self.p.n_workers):
            self.sim.schedule(0.0, self._worker_get, w)
        self.sim.run()
        makespan = self.finish_time if self.finish_time > 0 else self.sim.now
        busy_frac = self.worker_busy / makespan if makespan > 0 else self.worker_busy
        return ClusterResult(
            params=self.p,
            n_tasks=self.n_tasks,
            makespan=makespan,
            tasks_per_sec=self.n_tasks / makespan if makespan > 0 else 0.0,
            worker_utilization=float(np.mean(busy_frac)),
            worker_busy_spread=float(np.max(busy_frac) - np.min(busy_frac))
            if len(busy_frac)
            else 0.0,
            server_utilization=[
                min(1.0, s.busy / makespan) if makespan > 0 else 0.0
                for s in self.servers
            ],
            messages=self.messages,
            steals=self.steals,
            events=self.sim.events_processed,
        )


def simulate(params: ClusterParams, durations: np.ndarray) -> ClusterResult:
    """Run one cluster simulation to completion."""
    return ClusterModel(params, durations).run()
