"""A minimal discrete-event simulator core."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Simulator:
    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%g)" % delay)
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn, args))

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        if time < self.now:
            raise ValueError("cannot schedule into the past (t=%g < now=%g)" % (time, self.now))
        heapq.heappush(self._heap, (time, next(self._seq), fn, args))

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the heap drains (or a bound is hit)."""
        n = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and n >= max_events:
                break
            time, _, fn, args = heapq.heappop(self._heap)
            self.now = time
            fn(*args)
            n += 1
        self.events_processed += n
        return n

    @property
    def pending(self) -> int:
        return len(self._heap)
