"""Run-invariant auditing: conservation laws over terminal rank state.

When ``RuntimeConfig.audit`` is set, every rank that shuts down cleanly
snapshots its terminal bookkeeping state once (``audit_row()`` on
:class:`repro.adlb.server.Server`, :class:`repro.turbine.engine.Engine`,
and :class:`repro.turbine.worker.Worker`) and the driver checks the
rows against the laws below.  Killed ranks contribute no row — their
absence is itself part of the audit (``missing_ranks``).

The laws, each cheap enough to hold on every run:

* **Termination-counter conservation** — the master's counter returns
  to exactly zero once work started, unless the run was poisoned (a
  permanently failed or quarantined unit makes the blocked remainder
  of the dataflow unaccountable by design).
* **No leaked leases** — the lease table is empty at shutdown: every
  handed-out unit was either completed (lease popped at the client's
  next get) or swept (dead rank / expiry) and requeued.
* **No leaked journal entries** — engines flush their rule-lifecycle
  buffer before blocking, so server-side journal mirrors are empty at
  quiescence (pending mirrors are legal only for a poisoned drain);
  a dead engine's mirror must have been popped by adoption.
* **No unflushed refcount deltas** — clients flush coalesced refcount
  decrements at every task boundary and discard them on retry, so the
  pending map is empty whenever a rank exits cleanly.
* **Bounded dedup slots** — reliable-RPC reply caches hold at most one
  entry per attached client per channel.
* **Consistent failure/quarantine accounting** — the run-level
  ``failures`` / ``quarantined`` lists agree with the per-rank counts,
  and a poisoned master implies at least one recorded cause.

:func:`compare_outputs` is the other half used by the chaos runner:
bit-identical program output versus a fault-free golden run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class RunAudit:
    """Verdict of one audited run: rows, derived facts, violations."""

    rows: list[dict] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    # Ranks of the layout that produced no row (killed or lost).
    missing_ranks: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_role(self, role: str) -> list[dict]:
        return [row for row in self.rows if row["role"] == role]

    def render(self) -> str:
        lines = [
            "run audit: %d rank row(s), %d missing, %d violation(s)"
            % (len(self.rows), len(self.missing_ranks), len(self.violations))
        ]
        for v in self.violations:
            lines.append("  VIOLATION: %s" % v)
        return "\n".join(lines)


def audit_run(
    rows: list[dict],
    layout: Any | None = None,
    failures: Iterable = (),
    quarantined: Iterable = (),
) -> RunAudit:
    """Check the conservation laws over one run's audit rows.

    ``layout`` (a :class:`repro.adlb.layout.Layout`) lets the audit
    name the ranks that went missing and distinguish "engine died and
    was adopted" from "journal mirror leaked"; without it only the
    row-local laws are checked.
    """
    audit = RunAudit(rows=sorted(rows, key=lambda r: r["rank"]))
    bad = audit.violations.append
    failures = list(failures)
    quarantined = list(quarantined)

    present = [row["rank"] for row in audit.rows]
    if len(set(present)) != len(present):
        bad("duplicate audit rows for ranks %r" % (sorted(present),))
    dead: set[int] = set()
    for row in audit.by_role("server"):
        dead.update(row.get("dead_ranks", ()))
    if layout is not None:
        audit.missing_ranks = [
            r for r in range(layout.size) if r not in set(present)
        ]
        for row in audit.rows:
            if layout.role(row["rank"]) != row["role"]:
                bad(
                    "rank %d reported role %r but the layout says %r"
                    % (row["rank"], row["role"], layout.role(row["rank"]))
                )

    # The run was legitimately cut short: a poisoned drain leaves the
    # blocked remainder of the dataflow unresolved by design, so the
    # completion-shaped laws (counter at zero, no pending rules) only
    # bind on unpoisoned runs.
    poisoned = any(row.get("poisoned") for row in audit.by_role("server"))
    drained = poisoned or bool(failures) or bool(quarantined)

    masters = [row for row in audit.by_role("server") if row["is_master"]]
    if len(masters) > 1:
        bad(
            "termination counter split across %d masters (ranks %r)"
            % (len(masters), [m["rank"] for m in masters])
        )
    for row in masters:
        if row["work_started"] and row["work_count"] != 0 and not drained:
            bad(
                "termination counter not conserved: master rank %d "
                "finished with work_count=%d" % (row["rank"], row["work_count"])
            )
        if row["work_count"] < 0:
            bad(
                "termination counter negative on master rank %d: %d"
                % (row["rank"], row["work_count"])
            )

    n_clients = None
    if layout is not None:
        n_clients = layout.size - layout.n_servers
    for row in audit.by_role("server"):
        rank = row["rank"]
        for client, uid in sorted(row.get("leases", {}).items()):
            bad(
                "leaked lease on server rank %d: client %d still holds "
                "unit %s at shutdown" % (rank, client, uid)
            )
        if row.get("queued_tasks"):
            bad(
                "server rank %d shut down with %d task(s) still queued"
                % (rank, row["queued_tasks"])
            )
        if row.get("delayed_tasks"):
            bad(
                "server rank %d shut down with %d backoff-delayed "
                "task(s) pending" % (rank, row["delayed_tasks"])
            )
        for engine, pending in sorted(row.get("journal_pending", {}).items()):
            if not pending:
                continue
            if engine in dead:
                bad(
                    "leaked journal: dead engine %d's mirror on server "
                    "rank %d still holds %d rule(s) — adoption never "
                    "popped it" % (engine, rank, pending)
                )
            elif not drained:
                bad(
                    "leaked journal: live engine %d left %d pending "
                    "rule(s) mirrored on server rank %d at quiescence"
                    % (engine, pending, rank)
                )
        for channel, count in sorted(row.get("dedup_slots", {}).items()):
            limit = n_clients if n_clients is not None else row.get(
                "attached_clients", count
            )
            if count > limit:
                bad(
                    "dedup slots leaked on server rank %d: %d %s entries "
                    "for at most %d clients" % (rank, count, channel, limit)
                )

    for row in audit.by_role("engine") + audit.by_role("worker"):
        if row.get("pending_refcounts"):
            bad(
                "%s rank %d exited with %d unflushed refcount delta(s)"
                % (row["role"], row["rank"], row["pending_refcounts"])
            )
    for row in audit.by_role("engine"):
        if row.get("unflushed_journal"):
            bad(
                "engine rank %d exited with %d unflushed journal "
                "entr(ies)" % (row["rank"], row["unflushed_journal"])
            )
        if row.get("pending_rules") and not drained:
            bad(
                "engine rank %d exited holding %d pending rule(s) on an "
                "unpoisoned run" % (row["rank"], row["pending_rules"])
            )

    # Accounting cross-check: only exact when every rank survived to
    # report (a killed rank's local failure records die with it).
    if layout is not None and not audit.missing_ranks:
        recorded = sum(row.get("failures", 0) for row in audit.rows)
        if recorded != len(failures):
            bad(
                "failure accounting mismatch: ranks recorded %d "
                "failure(s) but the run surfaced %d" % (recorded, len(failures))
            )
        recorded_q = sum(
            row.get("quarantined", 0) for row in audit.by_role("server")
        )
        if recorded_q != len(quarantined):
            bad(
                "quarantine accounting mismatch: servers recorded %d "
                "unit(s) but the run surfaced %d"
                % (recorded_q, len(quarantined))
            )
        if poisoned and not failures and not quarantined:
            bad(
                "master drained a poisoned run but no failure or "
                "quarantine record explains the poison"
            )
    return audit


def compare_outputs(
    golden: list[str], actual: list[str], ordered: bool = False
) -> list[str]:
    """Bit-identical output check against a fault-free golden run.

    Program output order across ranks is scheduling-dependent, so the
    default compares sorted lines; ``ordered=True`` compares verbatim.
    Returns a list of violation strings (empty = identical).
    """
    a = list(golden) if ordered else sorted(golden)
    b = list(actual) if ordered else sorted(actual)
    if a == b:
        return []
    from collections import Counter

    ca, cb = Counter(a), Counter(b)
    violations = []
    if len(a) != len(b):
        violations.append(
            "output line count diverged: golden %d vs run %d"
            % (len(a), len(b))
        )
    for line in list((ca - cb).elements())[:5]:
        violations.append("output missing line: %r" % line)
    for line in list((cb - ca).elements())[:5]:
        violations.append("output extra line: %r" % line)
    if not violations:  # same multiset, order-only divergence
        violations.append("output line order diverged from golden run")
    return violations
