"""Chaos trial runner: seeded trials, classification, ddmin shrinking.

One *trial* = one workload run under one generated
:class:`repro.faults.FaultPlan` with auditing on and a deadline armed.
Every trial is classified:

* ``clean`` — completed, audit passed, output bit-identical to the
  fault-free golden run, and no injection actually fired;
* ``tolerated`` — injections fired (or units were quarantined /
  recorded as failures) and the run still ended in a classified state:
  full recovery means bit-identical output, a poisoned/quarantined
  drain means the loss is accounted on ``RunResult``;
* ``hang`` — the armed deadline expired and shut the run down
  (``DeadlineExceeded``): caught, classified, reported;
* ``violation`` — an invariant audit failure, an output divergence on
  a run that claimed success, or an unclassified crash.

Violating plans are delta-debugged (:func:`shrink_plan`, classic ddmin
over the flattened rule list) to a minimal rule set that still
reproduces the same outcome, and shipped as a replayable JSON repro
artifact (``repro run --fault-plan repro.json`` replays it).

The workload registry wraps the real ``examples/`` programs — the same
code paths users run — plus the iterative-fixpoint workload.
"""

from __future__ import annotations

import importlib.util
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..faults import DeadlineExceeded, FaultPlan
from .invariants import compare_outputs
from .schedule import generate_plan

_EXAMPLES_DIR = Path(__file__).resolve().parents[3] / "examples"

#: retry allowance for every trial; fail-rule budgets stay below it
TRIAL_MAX_RETRIES = 3
#: aggressive lease sweep so silent kills recover in ~a second
TRIAL_LEASE_TIMEOUT = 1.0


@dataclass
class Workload:
    """One registered chaos workload: a program plus its launch shape."""

    name: str
    program: str
    setup: Callable | None = None
    workers: int = 4
    servers: int = 2
    engines: int = 2

    def layout(self):
        from ..adlb.layout import Layout

        return Layout(
            self.workers + self.servers + self.engines,
            self.servers,
            self.engines,
        )


@dataclass
class Trial:
    """Outcome of one seeded trial."""

    workload: str
    seed: int
    intensity: str
    outcome: str  # clean | tolerated | hang | violation
    detail: str
    elapsed: float
    plan: dict  # FaultPlan.to_dict() image
    violations: list[str] = field(default_factory=list)
    # Flight-recorder snapshot captured on the failure path (hangs,
    # crashes, drained-with-failures runs); None for clean trials.
    blackbox: dict | None = None


@dataclass
class ChaosReport:
    """Summary of a whole chaos campaign."""

    trials: list[Trial] = field(default_factory=list)
    golden_elapsed: dict[str, float] = field(default_factory=dict)
    artifacts: list[str] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return not any(t.outcome == "violation" for t in self.trials)

    def render(self) -> str:
        counts = self.counts()
        lines = [
            "chaos: %d trial(s) across %d workload(s): %s"
            % (
                len(self.trials),
                len({t.workload for t in self.trials}),
                ", ".join(
                    "%d %s" % (counts[k], k) for k in sorted(counts)
                )
                or "none",
            )
        ]
        for t in self.trials:
            if t.outcome == "violation":
                lines.append(
                    "  VIOLATION %s seed=%d: %s"
                    % (t.workload, t.seed, t.detail)
                )
                for v in t.violations[:8]:
                    lines.append("    - %s" % v)
        for path in self.artifacts:
            lines.append("  repro artifact: %s" % path)
        return "\n".join(lines)


# ----------------------------------------------------------------- registry


def _load_example(name: str):
    path = _EXAMPLES_DIR / ("%s.py" % name)
    spec = importlib.util.spec_from_file_location("repro_chaos_wl_%s" % name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def load_workloads(names: list[str] | None = None) -> list[Workload]:
    """Build the workload registry from the real ``examples/``.

    Workloads whose example cannot load (e.g. NumPy-backed kernels on a
    box without NumPy) are skipped unless explicitly requested by name.
    """
    builders: dict[str, Callable[[], Workload]] = {
        "fixpoint_labels": _wl_fixpoint,
        "protein_pipeline": _wl_protein,
        "materials_sweep": _wl_materials,
        "powergrid_contingency": _wl_powergrid,
    }
    if names:
        unknown = sorted(set(names) - set(builders))
        if unknown:
            raise ValueError(
                "unknown workload(s) %s; registered: %s"
                % (", ".join(unknown), ", ".join(sorted(builders)))
            )
        return [builders[name]() for name in names]
    out: list[Workload] = []
    for name, build in builders.items():
        try:
            out.append(build())
        except ImportError:
            continue
    return out


def _wl_fixpoint() -> Workload:
    mod = _load_example("fixpoint_labels")
    return Workload(name="fixpoint_labels", program=mod.PROGRAM)


def _wl_protein() -> Workload:
    mod = _load_example("protein_pipeline")
    return Workload(name="protein_pipeline", program=mod.PROGRAM)


def _wl_materials() -> Workload:
    mod = _load_example("materials_sweep")
    from ..swig import install_package

    return Workload(
        name="materials_sweep",
        program=mod.PROGRAM,
        setup=lambda interp, ctx, client: install_package(interp, mod.matlib),
    )


def _wl_powergrid() -> Workload:
    mod = _load_example("powergrid_contingency")
    import numpy as np

    from ..swig import install_package

    injections = np.random.RandomState(7).uniform(-1, 1, mod.N_BUSES)
    injections -= injections.mean()
    inj_text = " ".join(repr(float(x)) for x in injections)

    def setup(interp, ctx, client):
        install_package(interp, mod.gridlib)
        interp.set_var("::injections", inj_text)

    program = mod.PROGRAM.replace("@N@", str(mod.N_BUSES)).replace(
        "@LAST@", str(mod.N_BUSES - 1)
    )
    return Workload(
        name="powergrid_contingency", program=program, setup=setup
    )


# ------------------------------------------------------------------- trials


def _runtime(workload: Workload):
    from ..api import SwiftRuntime

    return SwiftRuntime(
        workers=workload.workers,
        servers=workload.servers,
        engines=workload.engines,
        setup=workload.setup,
    )


def _run_options(deadline: float, plan: FaultPlan | None) -> dict:
    return {
        "on_error": "retry",
        "max_retries": TRIAL_MAX_RETRIES,
        "lease_timeout": TRIAL_LEASE_TIMEOUT,
        "deadline": deadline,
        "recv_timeout": deadline + 60.0,
        "audit": True,
        "faults": plan,
    }


def golden_run(workload: Workload, deadline: float = 120.0) -> list[str]:
    """The fault-free reference: sorted output lines of a clean run."""
    res = _runtime(workload).run(
        workload.program, **_run_options(deadline, None)
    )
    if not res.ok:
        raise RuntimeError(
            "golden run of %r failed: %d failure(s), %d quarantined"
            % (workload.name, len(res.failures), len(res.quarantined))
        )
    if res.audit is not None and not res.audit.ok:
        raise RuntimeError(
            "golden run of %r violated invariants:\n%s"
            % (workload.name, res.audit.render())
        )
    return sorted(res.stdout_lines)


def run_trial(
    workload: Workload,
    plan: FaultPlan,
    golden: list[str],
    seed: int = 0,
    intensity: str = "custom",
    deadline: float = 60.0,
) -> Trial:
    """Execute one plan against one workload and classify the outcome."""
    t0 = time.perf_counter()
    try:
        res = _runtime(workload).run(
            workload.program, **_run_options(deadline, plan)
        )
    except DeadlineExceeded as e:
        return Trial(
            workload=workload.name,
            seed=seed,
            intensity=intensity,
            outcome="hang",
            detail="deadline caught a wedged run: %s" % e,
            elapsed=time.perf_counter() - t0,
            plan=plan.to_dict(),
            blackbox=getattr(e, "blackbox", None),
        )
    except Exception as e:
        return Trial(
            workload=workload.name,
            seed=seed,
            intensity=intensity,
            outcome="violation",
            detail="unclassified crash: %s: %s" % (type(e).__name__, e),
            elapsed=time.perf_counter() - t0,
            plan=plan.to_dict(),
            violations=["crash: %s: %s" % (type(e).__name__, e)],
            blackbox=getattr(e, "blackbox", None),
        )
    elapsed = time.perf_counter() - t0
    violations: list[str] = []
    if res.audit is not None:
        violations.extend(res.audit.violations)
    fired = 0
    if res.fault_stats is not None:
        s = res.fault_stats
        fired = (
            s.kills
            + s.task_errors
            + s.slow_tasks
            + s.dropped_msgs
            + s.delayed_msgs
        )
    if res.ok:
        # The run claims full recovery: its output must be
        # bit-identical (modulo rank interleaving) to the golden run.
        violations.extend(compare_outputs(golden, res.stdout_lines))
        detail = (
            "recovered, output identical (%d injection(s) fired)" % fired
            if fired
            else "no injections fired"
        )
        outcome = "tolerated" if fired else "clean"
    else:
        # A quarantined/failed unit legitimately withholds its output;
        # the loss must be accounted, which the audit already checked.
        detail = "drained with %d failure(s), %d quarantined" % (
            len(res.failures),
            len(res.quarantined),
        )
        outcome = "tolerated"
    if violations:
        outcome = "violation"
        detail = "%d invariant/output violation(s)" % len(violations)
    return Trial(
        workload=workload.name,
        seed=seed,
        intensity=intensity,
        outcome=outcome,
        detail=detail,
        elapsed=elapsed,
        plan=plan.to_dict(),
        violations=violations,
        blackbox=res.blackbox,
    )


# ----------------------------------------------------------------- shrinking


def _flatten(plan_dict: dict) -> list[tuple[str, dict]]:
    rules: list[tuple[str, dict]] = []
    for key in ("kills", "poison_rules", "task_rules", "msg_rules"):
        for rule in plan_dict.get(key, []):
            rules.append((key, rule))
    return rules


def _rebuild(seed: int, rules: list[tuple[str, dict]]) -> FaultPlan:
    data: dict = {
        "seed": seed,
        "kills": [],
        "poison_rules": [],
        "task_rules": [],
        "msg_rules": [],
    }
    for key, rule in rules:
        data[key].append(rule)
    return FaultPlan.from_dict(data)


def shrink_plan(
    plan: FaultPlan,
    still_fails: Callable[[FaultPlan], bool],
    max_runs: int = 32,
) -> tuple[FaultPlan, int]:
    """ddmin over the plan's flattened rule list.

    Returns the smallest plan (by rule count) for which
    ``still_fails`` holds, plus how many predicate runs were spent.
    Classic delta debugging: try dropping chunks, halve the chunk size
    when nothing can be dropped, stop at granularity one rule.
    """
    seed = plan.seed
    rules = _flatten(plan.to_dict())
    runs = 0
    chunk = max(1, len(rules) // 2)
    while chunk >= 1 and len(rules) > 1 and runs < max_runs:
        shrunk = False
        i = 0
        while i < len(rules) and runs < max_runs:
            candidate = rules[:i] + rules[i + chunk :]
            if not candidate:
                i += chunk
                continue
            runs += 1
            if still_fails(_rebuild(seed, candidate)):
                rules = candidate
                shrunk = True
            else:
                i += chunk
        if not shrunk:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
        else:
            chunk = min(chunk, max(1, len(rules) // 2))
    return _rebuild(seed, rules), runs


# ------------------------------------------------------------------ campaign


def run_chaos(
    workload_names: list[str] | None = None,
    trials: int = 10,
    intensity: str = "medium",
    seed: int = 0,
    deadline: float = 60.0,
    out_dir: str | Path | None = None,
    shrink: bool = True,
    shrink_budget: int = 24,
    log: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run a chaos campaign: ``trials`` seeded trials per workload.

    Trial ``k`` of a workload uses the plan
    ``generate_plan(layout, seed + k, intensity)`` — fully
    reproducible from (workload, seed, intensity) alone.  Violating
    trials are shrunk to a minimal plan and written as replayable JSON
    repro artifacts under ``out_dir``.
    """
    say = log or (lambda line: None)
    workloads = load_workloads(workload_names)
    if not workloads:
        raise RuntimeError("no chaos workloads available")
    report = ChaosReport()
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)
    for wl in workloads:
        say("workload %s: golden run..." % wl.name)
        t0 = time.perf_counter()
        golden = golden_run(wl, deadline=max(deadline, 120.0))
        report.golden_elapsed[wl.name] = time.perf_counter() - t0
        layout = wl.layout()
        for k in range(trials):
            trial_seed = seed + k
            plan = generate_plan(layout, trial_seed, intensity)
            trial = run_trial(
                wl,
                plan,
                golden,
                seed=trial_seed,
                intensity=intensity,
                deadline=deadline,
            )
            report.trials.append(trial)
            say(
                "  trial %d/%d seed=%d: %s (%.1fs, %d rule(s)) — %s"
                % (
                    k + 1,
                    trials,
                    trial_seed,
                    trial.outcome,
                    trial.elapsed,
                    plan.rule_count(),
                    trial.detail,
                )
            )
            box_path = None
            if out_path is not None and trial.blackbox is not None:
                box_path = out_path / (
                    "blackbox-%s-seed%d.json" % (wl.name, trial_seed)
                )
                box_path.write_text(
                    json.dumps(trial.blackbox, indent=1) + "\n"
                )
                report.artifacts.append(str(box_path))
                say("  wrote black box %s (repro postmortem)" % box_path)
            if trial.outcome != "violation":
                continue
            shrunk_plan, runs = plan, 0
            if shrink and plan.rule_count() > 1:
                say("  shrinking %d-rule plan..." % plan.rule_count())

                def still_fails(candidate: FaultPlan) -> bool:
                    t = run_trial(
                        wl,
                        candidate,
                        golden,
                        seed=trial_seed,
                        intensity=intensity,
                        deadline=deadline,
                    )
                    return t.outcome == "violation"

                shrunk_plan, runs = shrink_plan(
                    plan, still_fails, max_runs=shrink_budget
                )
                say(
                    "  shrunk to %d rule(s) in %d re-run(s)"
                    % (shrunk_plan.rule_count(), runs)
                )
            if out_path is not None:
                artifact = {
                    "workload": wl.name,
                    "intensity": intensity,
                    "seed": trial_seed,
                    "outcome": trial.outcome,
                    "detail": trial.detail,
                    "violations": trial.violations,
                    "layout": {
                        "workers": wl.workers,
                        "servers": wl.servers,
                        "engines": wl.engines,
                    },
                    "options": {
                        "on_error": "retry",
                        "max_retries": TRIAL_MAX_RETRIES,
                        "lease_timeout": TRIAL_LEASE_TIMEOUT,
                        "deadline": deadline,
                    },
                    "original_plan": plan.to_dict(),
                    "plan": shrunk_plan.to_dict(),
                    "shrink_runs": runs,
                    "blackbox": box_path.name if box_path else None,
                }
                path = out_path / (
                    "repro-%s-seed%d.json" % (wl.name, trial_seed)
                )
                path.write_text(json.dumps(artifact, indent=2) + "\n")
                report.artifacts.append(str(path))
                say("  wrote repro artifact %s" % path)
    if out_path is not None:
        summary = out_path / "report.json"
        summary.write_text(
            json.dumps(
                {
                    "intensity": intensity,
                    "seed": seed,
                    "trials_per_workload": trials,
                    "counts": report.counts(),
                    "golden_elapsed": report.golden_elapsed,
                    "trials": [
                        {
                            "workload": t.workload,
                            "seed": t.seed,
                            "outcome": t.outcome,
                            "detail": t.detail,
                            "elapsed": t.elapsed,
                            "rules": len(_flatten(t.plan)),
                        }
                        for t in report.trials
                    ],
                },
                indent=2,
            )
            + "\n"
        )
    return report


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load a plan from JSON: either a bare ``FaultPlan.to_dict()``
    image or a chaos repro artifact (its ``plan`` key)."""
    data = json.loads(Path(path).read_text())
    if "plan" in data and isinstance(data["plan"], dict):
        data = data["plan"]
    return FaultPlan.from_dict(data)
