"""Chaos harness: randomized fault schedules, run-invariant auditing,
and minimal-repro shrinking over real workloads.

Three cooperating parts (see DESIGN.md "Chaos testing & run
invariants"):

* :mod:`repro.chaos.schedule` — a seeded generator that samples
  randomized :class:`repro.faults.FaultPlan` instances for a given rank
  layout and intensity (``light`` / ``medium`` / ``brutal``), within a
  survivability envelope (never kill the last worker, only kill
  servers/engines when replication/journaling can recover them, only
  drop messages the reliable-RPC layer can re-send).
* :mod:`repro.chaos.invariants` — conservation laws checked over the
  per-rank terminal bookkeeping rows collected when
  ``RuntimeConfig.audit`` is set: termination-counter conservation, no
  leaked leases / journal entries / dedup slots / unflushed refcount
  deltas at quiescence, and consistent failure/quarantine accounting.
* :mod:`repro.chaos.runner` — N seeded trials per registered workload
  (the real ``examples/``), outcome classification (clean /
  tolerated-fault / invariant-violation / hang-caught-by-deadline),
  ddmin shrinking of failing plans to a minimal rule set, and
  replayable JSON repro artifacts (``repro run --fault-plan``).
"""

from .invariants import RunAudit, audit_run, compare_outputs
from .runner import (
    ChaosReport,
    Trial,
    Workload,
    load_fault_plan,
    load_workloads,
    run_chaos,
    shrink_plan,
)
from .schedule import INTENSITIES, generate_plan

__all__ = [
    "ChaosReport",
    "INTENSITIES",
    "RunAudit",
    "Trial",
    "Workload",
    "audit_run",
    "compare_outputs",
    "generate_plan",
    "load_fault_plan",
    "load_workloads",
    "run_chaos",
    "shrink_plan",
]
