"""Seeded randomized fault-schedule generation.

:func:`generate_plan` samples a :class:`repro.faults.FaultPlan` for a
given rank layout and intensity.  Unlike the hand-written matrices in
``tests/test_replication.py`` / ``tests/test_engine_failover.py``, the
generator explores fault *timing and combination* — but stays inside a
survivability envelope so a violation means a real bug, not an
impossible configuration:

* **worker kills** always leave at least one worker alive;
* **engine kills** are sampled only when ``n_engines >= 2`` (so
  rule-table journaling and engine adoption are in play) and leave at
  least one engine;
* **server kills** are sampled only when ``n_servers >= 2`` (so buddy
  replication and promotion are in play) and leave at least one
  server;
* **silent kills** (no dead-rank announcement — recovery must come
  from the lease sweep / journal-staleness detection) are sampled with
  bounded probability;
* **poison rules** kill whichever rank runs a matching unit; budgets
  stay below the retry allowance so the unit is either re-run or
  quarantined, never respawn-looped.  Because a LOCAL rule fire counts
  as a unit, the poisoned rank may be an engine — so poison is never
  combined with a scheduled engine kill (the two together could
  exhaust the engine pool and leave no adopter);
* **message drops** are restricted to the request/response tags, which
  the reliable-RPC layer (auto-enabled by any message rule) re-sends;
  a drop on the async notification channel would wedge the dataflow
  by design and is only ever caught by a deadline, so the generator
  never emits one.  Delays are safe on any tag;
* **fail rules** are pinned to worker ranks — engine LOCAL rule
  bodies are deliberately *not* retryable (a rule is consumed when it
  fires), so an injected transient there would abort the run rather
  than exercise recovery.  Each rule's budget is 1 and at most
  ``max_retries`` rules are emitted, so even if every injection lands
  on retries of the same task the attempt allowance absorbs them.

Determinism: ``generate_plan(layout, seed, intensity)`` is a pure
function of its arguments — the chaos runner and a replayed repro
artifact sample the identical plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ..adlb import constants as C
from ..faults import FaultPlan

#: tags the reliable-RPC layer can recover a dropped message on
_DROPPABLE_TAGS = (C.TAG_REQUEST, C.TAG_RESPONSE)


@dataclass(frozen=True)
class Intensity:
    """Sampling ranges for one intensity level (inclusive bounds)."""

    name: str
    kills: tuple[int, int]  # total rank kills
    silent_p: float  # probability a kill is silent
    poison_p: float  # probability of one poison rule
    fail_rules: tuple[int, int]
    slow_rules: tuple[int, int]
    drop_rules: tuple[int, int]
    drop_budget: tuple[int, int]  # times per drop rule
    delay_rules: tuple[int, int]
    delay_s: tuple[float, float]


INTENSITIES: dict[str, Intensity] = {
    "light": Intensity(
        name="light",
        kills=(0, 1),
        silent_p=0.0,
        poison_p=0.0,
        fail_rules=(0, 1),
        slow_rules=(0, 1),
        drop_rules=(0, 1),
        drop_budget=(1, 1),
        delay_rules=(0, 1),
        delay_s=(0.001, 0.004),
    ),
    "medium": Intensity(
        name="medium",
        kills=(0, 2),
        silent_p=0.25,
        poison_p=0.25,
        fail_rules=(0, 2),
        slow_rules=(0, 2),
        drop_rules=(0, 2),
        drop_budget=(1, 2),
        delay_rules=(0, 2),
        delay_s=(0.001, 0.008),
    ),
    "brutal": Intensity(
        name="brutal",
        kills=(1, 3),
        silent_p=0.4,
        poison_p=0.5,
        fail_rules=(1, 3),
        slow_rules=(0, 3),
        drop_rules=(1, 3),
        drop_budget=(1, 3),
        delay_rules=(0, 3),
        delay_s=(0.002, 0.012),
    ),
}


def _kill_targets(layout: Any, rng: random.Random, count: int) -> list[int]:
    """Sample up to ``count`` distinct kill targets, never exhausting a
    role: at least one worker, one engine, and one server survive."""
    pools: list[tuple[str, list[int]]] = []
    workers = list(layout.workers)
    if len(workers) > 1:
        pools.append(("worker", workers))
    if layout.n_engines >= 2:
        pools.append(("engine", list(layout.engines)))
    if layout.n_servers >= 2:
        pools.append(("server", list(layout.servers)))
    targets: list[int] = []
    budget = {role: len(ranks) - 1 for role, ranks in pools}
    for _ in range(count):
        open_pools = [
            (role, ranks) for role, ranks in pools if budget[role] > 0
        ]
        if not open_pools:
            break
        role, ranks = rng.choice(open_pools)
        candidates = [r for r in ranks if r not in targets]
        if not candidates:
            budget[role] = 0
            continue
        targets.append(rng.choice(candidates))
        budget[role] -= 1
    return targets


def generate_plan(
    layout: Any,
    seed: int,
    intensity: str = "medium",
    max_retries: int = 3,
) -> FaultPlan:
    """Sample one randomized, survivable FaultPlan for ``layout``.

    ``max_retries`` is the run's retry allowance; fail-rule budgets
    stay strictly below it so injected task faults are absorbed by
    retries instead of aborting the run.
    """
    if intensity not in INTENSITIES:
        raise ValueError(
            "unknown intensity %r; choose from %s"
            % (intensity, ", ".join(sorted(INTENSITIES)))
        )
    spec = INTENSITIES[intensity]
    # A stable derivation (no hash(): it is salted per process) so the
    # same (seed, intensity) always yields the same plan and rule
    # probabilities draw from a distinct stream per intensity.
    level = sorted(INTENSITIES).index(intensity)
    rng = random.Random(seed * 1000003 + level)
    plan = FaultPlan(seed=seed * 1000003 + level)

    for rank in _kill_targets(layout, rng, rng.randint(*spec.kills)):
        silent = rng.random() < spec.silent_p
        if layout.is_server(rank):
            # Server units are dispatched messages; let the run build
            # some state first so promotion has something to recover.
            after = rng.randint(5, 60)
        elif rank in layout.engines:
            # Engine units are rule fires/releases; >= 1 so the journal
            # holds at least the first create when the kill lands.
            after = rng.randint(1, 8)
        else:
            after = rng.randint(0, 4)
        plan.kill_rank(rank, after_tasks=after, silent=silent)

    engine_killed = any(kill.rank in layout.engines for kill in plan.kills)
    if (
        layout.n_engines >= 2
        and not engine_killed
        and rng.random() < spec.poison_p
    ):
        # Match-anything poison: the first unit(s) executed anywhere
        # kill their host.  Budget 1 keeps it a transient (requeue
        # recovers); the engine pool must be >= 2 and untouched by the
        # sampled kills because the poisoned unit may be a LOCAL rule
        # on an engine — poison plus an engine kill could leave no
        # surviving engine to adopt the orphaned rule table.
        plan.poison_task("", times=1, silent=rng.random() < spec.silent_p)

    workers = list(layout.workers)
    # Pinned to workers: engine LOCAL rule bodies are not retryable
    # (the rule is consumed by firing), so a transient injected there
    # aborts the run instead of exercising the lease/retry path.  One
    # budget per rule, at most max_retries rules: even if every
    # injection lands on the same task's successive attempts, the
    # 1 + max_retries attempt allowance absorbs them.
    for _ in range(min(rng.randint(*spec.fail_rules), max_retries)):
        plan.fail_task(
            "",
            times=1,
            rank=rng.choice(workers),
            message="chaos: injected transient task fault",
        )
    for _ in range(rng.randint(*spec.slow_rules)):
        plan.slow_task(
            "",
            delay=rng.uniform(0.005, 0.05),
            times=rng.randint(1, 3),
        )

    for _ in range(rng.randint(*spec.drop_rules)):
        plan.drop_messages(
            tag=rng.choice(_DROPPABLE_TAGS),
            times=rng.randint(*spec.drop_budget),
            probability=rng.choice([None, 0.5, 0.8]),
        )
    for _ in range(rng.randint(*spec.delay_rules)):
        plan.delay_messages(
            delay=rng.uniform(*spec.delay_s),
            tag=rng.choice([None, C.TAG_REQUEST, C.TAG_RESPONSE, C.TAG_ASYNC]),
            times=rng.randint(2, 12),
            probability=rng.choice([None, 0.3, 0.6]),
        )
    return plan
