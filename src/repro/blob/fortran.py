"""Fortran (column-major) array views over blobs.

The paper notes blobutils handles "even multidimensional Fortran
arrays": the same contiguous buffer is exposed with column-major
indexing so FortWrap-wrapped code and C code agree on element order.
"""

from __future__ import annotations

import numpy as np

from .blob import Blob, BlobError


class FortranArray:
    """A column-major N-d view over a blob of doubles."""

    def __init__(self, blob: Blob, shape: tuple[int, ...]):
        data = blob.cast("double").data
        n = 1
        for dim in shape:
            if dim <= 0:
                raise BlobError("bad Fortran array dimension %d" % dim)
            n *= dim
        if n != data.size:
            raise BlobError(
                "shape %r needs %d elements; blob has %d"
                % (shape, n, data.size)
            )
        self.blob = blob
        self.shape = shape
        # Column-major view without copying.
        self.array = data.reshape(shape, order="F")

    @classmethod
    def zeros(cls, shape: tuple[int, ...]) -> "FortranArray":
        n = int(np.prod(shape))
        return cls(Blob(np.zeros(n, dtype=np.float64), "double"), shape)

    @classmethod
    def from_numpy(cls, arr: np.ndarray) -> "FortranArray":
        flat = np.asfortranarray(arr, dtype=np.float64).reshape(-1, order="F")
        return cls(Blob(flat.copy(), "double"), tuple(arr.shape))

    def get(self, *indices: int) -> float:
        return float(self.array[indices])

    def set(self, *args) -> None:
        *indices, value = args
        self.array[tuple(int(i) for i in indices)] = value

    def to_numpy(self) -> np.ndarray:
        return self.array.copy()

    def linear_index(self, *indices: int) -> int:
        """Column-major linear offset (what the Fortran side computes)."""
        offset = 0
        stride = 1
        for i, dim in zip(indices, self.shape):
            if not 0 <= i < dim:
                raise BlobError("index %r out of bounds for %r" % (indices, self.shape))
            offset += i * stride
            stride *= dim
        return offset
