"""Blob conversions, including the string-marshaling baseline.

``floats_to_string``/``floats_from_string`` implement the naive
alternative the paper's blob design avoids — printing numbers into a
text representation and re-parsing them — used as a baseline in the
BLOB benchmark.
"""

from __future__ import annotations

import numpy as np

from .blob import Blob, BlobError


def blob_from_string(s: str) -> Blob:
    """C-string framing: UTF-8 bytes plus a trailing NUL."""
    return Blob(s.encode("utf-8") + b"\x00", "byte")


def blob_to_string(blob: Blob) -> str:
    raw = blob.to_bytes()
    end = raw.find(b"\x00")
    if end >= 0:
        raw = raw[:end]
    return raw.decode("utf-8")


def blob_from_floats(values) -> Blob:
    return Blob(np.asarray(values, dtype=np.float64), "double")


def blob_to_floats(blob: Blob) -> np.ndarray:
    return blob.cast("double").data


def floats_to_string(values) -> str:
    """Baseline marshaling: repr-print doubles into a text list."""
    return " ".join(repr(float(v)) for v in np.asarray(values).tolist())


def floats_from_string(s: str) -> np.ndarray:
    if not s.strip():
        return np.array([], dtype=np.float64)
    try:
        return np.array([float(tok) for tok in s.split()], dtype=np.float64)
    except ValueError as e:
        raise BlobError("bad float string: %s" % e) from None
