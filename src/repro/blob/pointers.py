"""SWIG-style typed pointer handles.

SWIG represents C pointers in Tcl as strings like
``_a0b1c2d3_p_double``.  The :class:`PointerTable` reproduces that
scheme: host objects get handle strings carrying a type suffix, and
lookups type-check the suffix — which is exactly why blobutils needs
explicit cast helpers (``void*`` won't pass where ``double*`` is
expected).
"""

from __future__ import annotations

import itertools
from typing import Any


class PointerError(TypeError):
    pass


class PointerTable:
    def __init__(self) -> None:
        self._objects: dict[int, tuple[Any, str]] = {}
        self._seq = itertools.count(0x1000)

    def register(self, obj: Any, ctype: str) -> str:
        addr = next(self._seq)
        self._objects[addr] = (obj, ctype)
        return "_%08x_p_%s" % (addr, ctype)

    @staticmethod
    def parse(handle: str) -> tuple[int, str]:
        if not handle.startswith("_") or "_p_" not in handle:
            raise PointerError("not a pointer handle: %r" % handle)
        addr_text, _, ctype = handle[1:].partition("_p_")
        try:
            addr = int(addr_text, 16)
        except ValueError:
            raise PointerError("bad pointer handle: %r" % handle) from None
        return addr, ctype

    def lookup(self, handle: str, ctype: str | None = None) -> Any:
        addr, handle_type = self.parse(handle)
        entry = self._objects.get(addr)
        if entry is None:
            raise PointerError("dangling pointer %r" % handle)
        obj, actual = entry
        if ctype is not None and actual != ctype:
            raise PointerError(
                "type mismatch: %r is %s*, expected %s*"
                % (handle, actual, ctype)
            )
        return obj

    def cast(self, handle: str, ctype: str) -> str:
        """Re-register the same object under a new pointer type."""
        obj = self.lookup(handle)
        return self.register(obj, ctype)

    def free(self, handle: str) -> None:
        addr, _ = self.parse(handle)
        self._objects.pop(addr, None)

    def __len__(self) -> int:
        return len(self._objects)
