"""blobutils: binary large objects for interlanguage bulk data (§III-B).

Swift/T passes bulk binary data between languages as *blobs* — pointers
plus lengths.  Here a :class:`Blob` wraps a NumPy buffer (or raw bytes)
with an element type, and the conversion helpers reproduce the "simple
but myriad interlanguage complexities" the paper describes: C-string
framing, ``void*`` -> ``double*``-style reinterpreting casts, and
column-major (Fortran) array views.
"""

from .blob import Blob
from .convert import (
    blob_from_floats,
    blob_from_string,
    blob_to_floats,
    blob_to_string,
    floats_from_string,
    floats_to_string,
)
from .fortran import FortranArray
from .pointers import PointerTable

__all__ = [
    "Blob",
    "blob_from_string",
    "blob_to_string",
    "blob_from_floats",
    "blob_to_floats",
    "floats_to_string",
    "floats_from_string",
    "FortranArray",
    "PointerTable",
]
