"""The Blob type: a pointer+length pair over a typed buffer."""

from __future__ import annotations

from typing import Any

import numpy as np

_DTYPES = {
    "byte": np.uint8,
    "int": np.int32,
    "int64": np.int64,
    "float": np.float64,  # Swift 'float' is a C double
    "double": np.float64,
    "float32": np.float32,
}


class BlobError(ValueError):
    pass


class Blob:
    """A contiguous binary buffer with a declared element type.

    Mirrors the Swift/T blob: at the language boundary it is just
    (pointer, length-in-bytes); the element type is carried so casts
    are explicit, as blobutils requires in the real system.
    """

    __slots__ = ("data", "ctype")

    def __init__(self, data: np.ndarray | bytes | bytearray, ctype: str = "byte"):
        if ctype not in _DTYPES:
            raise BlobError("unknown blob element type %r" % ctype)
        if isinstance(data, (bytes, bytearray)):
            data = np.frombuffer(bytes(data), dtype=np.uint8)
        if not isinstance(data, np.ndarray):
            raise BlobError("blob data must be bytes or ndarray")
        if not data.flags["C_CONTIGUOUS"]:
            data = np.ascontiguousarray(data)
        expected = _DTYPES[ctype]
        if data.dtype != expected:
            data = data.view(expected) if data.dtype.itemsize == 1 else data.astype(expected)
        self.data = data
        self.ctype = ctype

    # -- pointer-ish surface --------------------------------------------------

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __len__(self) -> int:
        return int(self.data.size)

    def to_bytes(self) -> bytes:
        return self.data.tobytes()

    @classmethod
    def from_bytes(cls, raw: bytes, ctype: str = "byte") -> "Blob":
        arr = np.frombuffer(raw, dtype=np.uint8).copy()
        blob = cls(arr, "byte")
        if ctype != "byte":
            return blob.cast(ctype)
        return blob

    # -- casts ------------------------------------------------------------------

    def cast(self, ctype: str) -> "Blob":
        """Reinterpret the buffer (void* -> double* style; no copy)."""
        dtype = _DTYPES.get(ctype)
        if dtype is None:
            raise BlobError("unknown blob element type %r" % ctype)
        if self.nbytes % np.dtype(dtype).itemsize != 0:
            raise BlobError(
                "blob of %d bytes cannot be viewed as %s" % (self.nbytes, ctype)
            )
        out = Blob.__new__(Blob)
        out.data = self.data.view(dtype)
        out.ctype = ctype
        return out

    # -- element access ------------------------------------------------------------

    def get(self, index: int) -> Any:
        if not 0 <= index < self.data.size:
            raise BlobError("blob index %d out of range" % index)
        return self.data[index].item()

    def set(self, index: int, value: Any) -> None:
        if not 0 <= index < self.data.size:
            raise BlobError("blob index %d out of range" % index)
        self.data[index] = value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Blob)
            and self.ctype == other.ctype
            and self.nbytes == other.nbytes
            and bool(np.array_equal(self.data.view(np.uint8), other.data.view(np.uint8)))
        )

    def __repr__(self) -> str:
        return "Blob(%s[%d], %d bytes)" % (self.ctype, len(self), self.nbytes)
