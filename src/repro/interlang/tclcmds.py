"""Tcl command bindings for the interlanguage leaf packages.

These are the "Tcl extensions" of §III-C: each scripting language is
exposed to Tcl (and hence to Swift leaf tasks) as a package of
commands.  Handles to blobs and other host objects travel through Tcl
as opaque strings.
"""

from __future__ import annotations

from ..blob import Blob, FortranArray
from ..blob.convert import blob_from_string, blob_to_string
from ..tcl.errors import TclError
from ..tcl.interp import Interp
from .python_interp import EmbeddedPython, PythonTaskError
from .r_bridge import EmbeddedR, RTaskError
from .shell import ShellTaskError, run_command, run_line


def _usage(msg: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % msg)


# --------------------------------------------------------------------- python


def register_python(interp: Interp, mode: str = "retain", output=None) -> None:
    state = {"embedded": EmbeddedPython(mode=mode)}
    interp._embedded_python = state  # type: ignore[attr-defined]

    def _run(emb: EmbeddedPython, code: str, expr: str) -> str:
        try:
            result = emb.eval(code, expr)
        except PythonTaskError as e:
            raise TclError(str(e)) from e
        if output is not None and emb.stdout:
            for line in emb.stdout:
                output(line)
            emb.stdout.clear()
        return result

    def cmd_eval(it, args):
        if len(args) not in (1, 2):
            raise _usage("python::eval code ?expr?")
        return _run(state["embedded"], args[0], args[1] if len(args) > 1 else "")

    def cmd_persist(it, args):
        # Force-retain evaluation regardless of the configured mode.
        if len(args) not in (1, 2):
            raise _usage("python::persist code ?expr?")
        emb = state["embedded"]
        saved = emb.mode
        emb.mode = "retain"
        try:
            return _run(emb, args[0], args[1] if len(args) > 1 else "")
        finally:
            emb.mode = saved

    def cmd_reset(it, args):
        state["embedded"].reset()
        return ""

    def cmd_stats(it, args):
        emb = state["embedded"]
        return "inits %d tasks %d" % (emb.init_count, emb.task_count)

    interp.register("python::eval", cmd_eval)
    interp.register("python::persist", cmd_persist)
    interp.register("python::reset", cmd_reset)
    interp.register("python::stats", cmd_stats)
    interp.packages_provided.setdefault("python", "1.0")


# ------------------------------------------------------------------------- R


def register_r(interp: Interp, mode: str = "retain", output=None) -> None:
    state = {"embedded": EmbeddedR(mode=mode)}
    interp._embedded_r = state  # type: ignore[attr-defined]

    def _run(code: str, expr: str) -> str:
        emb = state["embedded"]
        try:
            result = emb.eval(code, expr)
        except RTaskError as e:
            raise TclError(str(e)) from e
        if output is not None and emb.stdout:
            for line in emb.stdout:
                output(line)
            emb.stdout.clear()
        return result

    def cmd_eval(it, args):
        if len(args) not in (1, 2):
            raise _usage("r::eval code ?expr?")
        return _run(args[0], args[1] if len(args) > 1 else "")

    def cmd_reset(it, args):
        state["embedded"].reset()
        return ""

    def cmd_stats(it, args):
        emb = state["embedded"]
        return "inits %d tasks %d" % (emb.init_count, emb.task_count)

    interp.register("r::eval", cmd_eval)
    interp.register("r::reset", cmd_reset)
    interp.register("r::stats", cmd_stats)
    interp.packages_provided.setdefault("r", "1.0")


# ---------------------------------------------------------------------- shell


def register_shell(interp: Interp) -> None:
    def cmd_exec(it, args):
        if not args:
            raise _usage("shell::exec command ?arg ...?")
        try:
            return run_command(list(args))
        except ShellTaskError as e:
            raise TclError(str(e)) from e

    def cmd_exec_line(it, args):
        if len(args) != 1:
            raise _usage("shell::exec_line commandLine")
        try:
            return run_line(args[0])
        except ShellTaskError as e:
            raise TclError(str(e)) from e

    interp.register("shell::exec", cmd_exec)
    interp.register("shell::exec_line", cmd_exec_line)
    interp.packages_provided.setdefault("shell", "1.0")


# -------------------------------------------------------------------- blobutils


def _blob(it: Interp, handle: str) -> Blob:
    obj = it.unwrap(handle)
    if not isinstance(obj, Blob):
        raise TclError("%r is not a blob handle" % handle)
    return obj


def register_blobutils(interp: Interp) -> None:
    def cmd_create_floats(it, args):
        import numpy as np

        values = np.array([float(a) for a in args], dtype=np.float64)
        return it.wrap_object(Blob(values, "double"), "blob")

    def cmd_zeroes(it, args):
        import numpy as np

        if len(args) != 1:
            raise _usage("blobutils::zeroes_float n")
        return it.wrap_object(
            Blob(np.zeros(int(args[0]), dtype=np.float64), "double"), "blob"
        )

    def cmd_from_string(it, args):
        if len(args) != 1:
            raise _usage("blobutils::from_string s")
        return it.wrap_object(blob_from_string(args[0]), "blob")

    def cmd_to_string(it, args):
        if len(args) != 1:
            raise _usage("blobutils::to_string handle")
        return blob_to_string(_blob(it, args[0]))

    def cmd_from_list(it, args):
        import numpy as np

        from ..tcl.listutil import parse_list

        if len(args) not in (1, 2):
            raise _usage("blobutils::from_list list ?ctype?")
        ctype = args[1] if len(args) > 1 else "double"
        values = [float(x) for x in parse_list(args[0])]
        dtype = np.int32 if ctype == "int" else np.float64
        return it.wrap_object(Blob(np.array(values, dtype=dtype), ctype), "blob")

    def cmd_to_list(it, args):
        from ..tcl.expr import to_string
        from ..tcl.listutil import format_list

        if len(args) != 1:
            raise _usage("blobutils::to_list handle")
        blob = _blob(it, args[0])
        return format_list([to_string(v) for v in blob.data.tolist()])

    def cmd_get_float(it, args):
        from ..tcl.expr import to_string

        if len(args) != 2:
            raise _usage("blobutils::get_float handle index")
        return to_string(float(_blob(it, args[0]).cast("double").get(int(args[1]))))

    def cmd_set_float(it, args):
        if len(args) != 3:
            raise _usage("blobutils::set_float handle index value")
        _blob(it, args[0]).cast("double").set(int(args[1]), float(args[2]))
        return ""

    def cmd_get_int(it, args):
        if len(args) != 2:
            raise _usage("blobutils::get_int handle index")
        return str(int(_blob(it, args[0]).cast("int").get(int(args[1]))))

    def cmd_length(it, args):
        if len(args) != 1:
            raise _usage("blobutils::length handle")
        return str(len(_blob(it, args[0])))

    def cmd_size(it, args):
        if len(args) != 1:
            raise _usage("blobutils::size handle")
        return str(_blob(it, args[0]).nbytes)

    def cmd_cast(it, args):
        if len(args) != 2:
            raise _usage("blobutils::cast handle ctype")
        try:
            out = _blob(it, args[0]).cast(args[1])
        except ValueError as e:
            raise TclError(str(e)) from e
        return it.wrap_object(out, "blob")

    def cmd_free(it, args):
        for h in args:
            it.release_object(h)
        return ""

    def cmd_matrix(it, args):
        if len(args) != 2:
            raise _usage("blobutils::matrix rows cols")
        fa = FortranArray.zeros((int(args[0]), int(args[1])))
        return it.wrap_object(fa, "fmat")

    def cmd_matrix_set(it, args):
        if len(args) != 4:
            raise _usage("blobutils::matrix_set handle i j value")
        fa = it.unwrap(args[0])
        fa.set(int(args[1]), int(args[2]), float(args[3]))
        return ""

    def cmd_matrix_get(it, args):
        from ..tcl.expr import to_string

        if len(args) != 3:
            raise _usage("blobutils::matrix_get handle i j")
        fa = it.unwrap(args[0])
        return to_string(fa.get(int(args[1]), int(args[2])))

    for name, fn in [
        ("create_floats", cmd_create_floats),
        ("zeroes_float", cmd_zeroes),
        ("from_string", cmd_from_string),
        ("to_string", cmd_to_string),
        ("from_list", cmd_from_list),
        ("to_list", cmd_to_list),
        ("get_float", cmd_get_float),
        ("set_float", cmd_set_float),
        ("get_int", cmd_get_int),
        ("length", cmd_length),
        ("size", cmd_size),
        ("cast", cmd_cast),
        ("free", cmd_free),
        ("matrix", cmd_matrix),
        ("matrix_set", cmd_matrix_set),
        ("matrix_get", cmd_matrix_get),
    ]:
        interp.register("blobutils::" + name, fn)
    interp.packages_provided.setdefault("blobutils", "1.0")
