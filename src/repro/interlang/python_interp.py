"""The embedded Python interpreter leaf (paper §III-C).

Real Swift/T loads libpython into each worker and evaluates code
fragments in-process; here each worker rank hosts an
:class:`EmbeddedPython` — an isolated namespace in the already-running
CPython — with the same two state policies the paper describes:

* **retain**: the namespace persists across tasks (fast, but old state
  is visible — usable as a cache "if the programmer is careful");
* **reinit**: the namespace is torn down and rebuilt per task (clean
  state, pays re-initialization every time).
"""

from __future__ import annotations

import io
import contextlib
from typing import Any


class PythonTaskError(RuntimeError):
    """An exception raised by embedded user code."""


class EmbeddedPython:
    def __init__(self, mode: str = "retain", preamble: str = ""):
        if mode not in ("retain", "reinit"):
            raise ValueError("mode must be 'retain' or 'reinit'")
        self.mode = mode
        self.preamble = preamble
        self.init_count = 0
        self.task_count = 0
        self.stdout: list[str] = []
        self._globals: dict[str, Any] = {}
        self._initialize()

    def _initialize(self) -> None:
        self._globals = {"__name__": "__swift_task__"}
        self.init_count += 1
        if self.preamble:
            exec(compile(self.preamble, "<preamble>", "exec"), self._globals)

    def reset(self) -> None:
        """Finalize-and-reinitialize, clearing all interpreter state."""
        self._initialize()

    def eval(self, code: str, expr: str = "") -> str:
        """Run a code fragment, then evaluate ``expr`` for the result.

        This is the signature of Swift/T's ``python(code, expr)``
        builtin: the code block does the work, the expression string
        produces the (string-converted) value handed back to Swift.
        """
        self.task_count += 1
        if self.mode == "reinit":
            self._initialize()
        buf = io.StringIO()
        try:
            with contextlib.redirect_stdout(buf):
                if code:
                    exec(compile(code, "<swift-python-task>", "exec"), self._globals)
                result: Any = ""
                if expr:
                    result = eval(  # noqa: S307 - embedded eval is the feature
                        compile(expr, "<swift-python-expr>", "eval"), self._globals
                    )
        except Exception as e:
            raise PythonTaskError(
                "python task failed: %s: %s" % (type(e).__name__, e)
            ) from e
        printed = buf.getvalue()
        if printed:
            self.stdout.extend(printed.rstrip("\n").split("\n"))
        return _to_swift_string(result)

    def get(self, name: str) -> Any:
        return self._globals.get(name)

    def set(self, name: str, value: Any) -> None:
        self._globals[name] = value


def _to_swift_string(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return " ".join(_to_swift_string(v) for v in value)
    return str(value)
