"""The embedded R interpreter leaf (paper §III-C), over repro.rlang."""

from __future__ import annotations

from ..rlang import RError, RInterp
from ..rlang.values import r_repr


class RTaskError(RuntimeError):
    pass


class EmbeddedR:
    """Same retain/reinit state policy as :class:`EmbeddedPython`."""

    def __init__(self, mode: str = "retain", preamble: str = ""):
        if mode not in ("retain", "reinit"):
            raise ValueError("mode must be 'retain' or 'reinit'")
        self.mode = mode
        self.preamble = preamble
        self.init_count = 0
        self.task_count = 0
        self.interp = RInterp()
        self._initialize()

    def _initialize(self) -> None:
        self.interp.reset()
        self.init_count += 1
        if self.preamble:
            self.interp.eval_code(self.preamble)

    def reset(self) -> None:
        self._initialize()

    @property
    def stdout(self) -> list[str]:
        return self.interp.output

    def eval(self, code: str, expr: str = "") -> str:
        """Swift/T's ``r(code, expr)``: run code, stringify expr."""
        self.task_count += 1
        if self.mode == "reinit":
            self._initialize()
        try:
            if code:
                self.interp.eval_code(code)
            if expr:
                return r_repr(self.interp.eval_code(expr))
            return ""
        except RError as e:
            raise RTaskError("R task failed: %s" % e) from e
