"""Shell/app leaf tasks.

Swift's ``app`` functions run external programs.  On systems that allow
fork/exec this uses real subprocesses; it is also the baseline for the
EMBED benchmark (launching ``python -c`` per task versus the embedded
interpreter).
"""

from __future__ import annotations

import shlex
import subprocess
import sys


class ShellTaskError(RuntimeError):
    pass


def run_command(argv: list[str], timeout: float = 60.0) -> str:
    """Run a command; return stdout (stripped).  Raises on failure."""
    if not argv:
        raise ShellTaskError("empty command")
    try:
        proc = subprocess.run(
            argv,
            capture_output=True,
            text=True,
            timeout=timeout,
            check=False,
        )
    except FileNotFoundError:
        raise ShellTaskError("command not found: %s" % argv[0]) from None
    except subprocess.TimeoutExpired:
        raise ShellTaskError("command timed out: %s" % argv[0]) from None
    if proc.returncode != 0:
        raise ShellTaskError(
            "command failed (%d): %s\n%s"
            % (proc.returncode, " ".join(argv), proc.stderr.strip())
        )
    return proc.stdout.rstrip("\n")


def run_line(line: str, timeout: float = 60.0) -> str:
    return run_command(shlex.split(line), timeout=timeout)


def python_exec_baseline(code: str, expr: str) -> str:
    """The paper's rejected strategy: launch the interpreter executable."""
    script = code + ("\nimport sys; sys.stdout.write(str(%s))" % expr if expr else "")
    return run_command([sys.executable, "-c", script])
