"""Interlanguage leaf-task support (the paper's contribution, §III).

Embedded Python and R interpreters (treated as in-process libraries,
with retain/reinitialize state policies), shell/app execution, and Tcl
command bindings so every language is callable from Swift leaf tasks.
"""

from .python_interp import EmbeddedPython, PythonTaskError
from .r_bridge import EmbeddedR, RTaskError
from .shell import ShellTaskError, python_exec_baseline, run_command, run_line
from .tclcmds import (
    register_blobutils,
    register_python,
    register_r,
    register_shell,
)

__all__ = [
    "EmbeddedPython",
    "EmbeddedR",
    "PythonTaskError",
    "RTaskError",
    "ShellTaskError",
    "run_command",
    "run_line",
    "python_exec_baseline",
    "register_python",
    "register_r",
    "register_shell",
    "register_blobutils",
    "register_standard_packages",
]


def register_standard_packages(interp, ctx=None) -> None:
    """Register python/r/shell/blobutils into a rank's Tcl interpreter.

    ``ctx`` is the rank's RankContext (for interp-state policy and
    output collection); None gives standalone defaults.
    """
    mode = "retain"
    output = None
    if ctx is not None:
        mode = ctx.config.interp_mode

        def output(line, _ctx=ctx):  # noqa: F811
            # Leaf-language prints surface as program output, rank-tagged.
            _ctx.output.emit(-1, line)

    register_python(interp, mode=mode, output=output)
    register_r(interp, mode=mode, output=output)
    register_shell(interp)
    register_blobutils(interp)
