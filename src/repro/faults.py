"""Fault injection and fault-tolerance primitives.

This module is the dependency-free core of the fault layer that spans
every runtime tier (see DESIGN.md "Failure model"):

* :class:`FaultPlan` — a seeded, declarative injection plan attached to
  :class:`repro.turbine.runtime.RuntimeConfig`.  It can kill a rank
  after its Nth task, make matching tasks raise or run slow, and delay
  or drop messages inside :mod:`repro.mpi.comm` — so every recovery
  path (leases, retries, dead-rank sweeps, deadlines) is testable and
  reproducible.
* :class:`FaultState` — the per-run instantiation of a plan: budgets,
  counters, and the seeded RNG.  One instance is shared by the MPI
  world and every worker/engine of a run, so a plan can be reused
  across runs without carrying state over.
* :class:`TaskFailure` / :class:`TaskError` — the failure record and
  the exception surfaced to users when a unit of work fails
  permanently.
* :class:`RankKilled` / :class:`InjectedFault` / :class:`DeadlineExceeded`
  — control-flow exceptions of the fault machinery.

Nothing here imports other repro modules; the MPI, ADLB, and Turbine
layers all hook into it without cycles.
"""

from __future__ import annotations

import random
import threading
from dataclasses import asdict, dataclass


def snippet(payload: object, limit: int = 200) -> str:
    """A bounded, single-object description of a task payload."""
    text = payload if isinstance(payload, str) else repr(payload)
    text = text.strip()
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


# --------------------------------------------------------------- failures


class BlackboxCarrier:
    """Mixin for failures that can carry a flight-recorder black box.

    The launcher (and the Turbine runtime when it unwraps rank
    failures) stamps two attributes onto the surfaced exception:
    ``blackbox`` is the captured artifact dict (see
    :mod:`repro.obs.flightrec`) and ``blackbox_path`` the path it was
    written to, when the run configured a dump directory.  Both stay
    ``None`` on runs with the recorder disabled.
    """

    #: Flight-recorder black box captured at failure time (dict), or None.
    blackbox: dict | None = None
    #: Where the black box was written (``blackbox-*.json``), or None.
    blackbox_path: str | None = None


@dataclass
class TaskFailure:
    """Record of one failed unit of work.

    ``kind`` is ``task`` (worker leaf task), ``ctask`` (engine control
    task), ``rule`` (engine LOCAL rule action), or ``program`` (the
    initial engine program).  ``attempts`` counts executions, so a task
    that failed once without retries has ``attempts == 1``.
    """

    rank: int
    kind: str
    payload: str
    attempts: int
    error: str
    traceback: str = ""


class TaskError(BlackboxCarrier, RuntimeError):
    """A unit of work failed permanently (fail-fast, or retries exhausted).

    Carries the :class:`TaskFailure`; the message embeds the original
    formatted traceback so the failure is debuggable from the message
    alone — this is the clean error users see instead of a rank crash.
    """

    def __init__(self, failure: TaskFailure):
        self.failure = failure
        msg = "%s failed on rank %d after %d attempt(s): %s" % (
            failure.kind,
            failure.rank,
            failure.attempts,
            failure.error,
        )
        if failure.traceback:
            msg += "\n" + failure.traceback.rstrip()
        if failure.payload:
            msg += "\npayload: %s" % failure.payload
        super().__init__(msg)


class InjectedFault(RuntimeError):
    """Raised inside a task by a :meth:`FaultPlan.fail_task` rule."""


class RankKilled(Exception):
    """A :meth:`FaultPlan.kill_rank` rule fired: the rank dies mid-task.

    Raised outside the task-failure handling so it is never treated as
    a task exception; the launcher-side wrapper turns it into a
    dead-rank notification to the ADLB servers (unless ``silent``, in
    which case recovery relies on the server lease sweep).
    """

    def __init__(self, rank: int, silent: bool = False):
        self.rank = rank
        self.silent = silent
        super().__init__(
            "rank %d killed by fault injection%s"
            % (rank, " (silent)" if silent else "")
        )


class DeadlineExceeded(BlackboxCarrier, RuntimeError):
    """The run's wall-clock deadline expired before completion."""


class TaskTimeout(RuntimeError):
    """A per-task watchdog expired: the unit overran ``task_timeout``.

    Raised on the worker's watchdog thread, never inside the task
    itself; the overdue unit is *abandoned* (its lease is failed back
    to the server for retry) and the worker recycles its embedded
    interpreter state before taking new work, so a wedged interpreter
    cannot poison subsequent units.
    """


class ServerLost(BlackboxCarrier, RuntimeError):
    """An ADLB server rank died and replication was not enabled.

    The dead server took its data-store shard, work queue, and (if it
    was the master) the termination counter with it, so the run cannot
    complete.  Raised by the surviving servers as a diagnostic instead
    of letting the run hang; enable ``replicate=True`` (automatic under
    ``on_error="retry"`` with at least two servers) to make server
    death recoverable.
    """

    def __init__(self, rank: int, reason: str = "server died"):
        self.rank = rank
        super().__init__(
            "ADLB server rank %d lost (%s) and replication is disabled; "
            "its data shard and queued work are gone. Run with "
            "replicate=True and n_servers >= 2 to survive server death."
            % (rank, reason)
        )


class EngineLost(BlackboxCarrier, RuntimeError):
    """A Turbine engine rank died and rule-table journaling was off.

    The dead engine took its pending dataflow rules with it, so the
    TDs those rules would have produced can never close and the run
    cannot complete.  Raised promptly as a diagnostic — by the dying
    rank itself for announced kills, or by the server lease sweep for
    silent ones — instead of letting the run hang until a recv
    timeout.  Enable ``journal=True`` (automatic under
    ``on_error="retry"`` with at least two engines) to make engine
    death recoverable via journal replay and engine adoption.
    """

    def __init__(
        self,
        rank: int,
        reason: str = "engine died",
        rules_pending: int | None = None,
        units_registered: int | None = None,
    ):
        self.rank = rank
        self.rules_pending = rules_pending
        self.units_registered = units_registered
        detail = ""
        if rules_pending is not None:
            detail = " It held %d pending rule(s)" % rules_pending
            if units_registered is not None:
                detail += " across %d registered unit(s) of work" % (
                    units_registered
                )
            detail += "."
        super().__init__(
            "Turbine engine rank %d lost (%s) and rule-table journaling "
            "is disabled; its pending dataflow rules are gone.%s Run "
            "with journal=True and n_engines >= 2 to survive engine "
            "death." % (rank, reason, detail)
        )


@dataclass
class QuarantinedTask:
    """Record of a unit quarantined as poisonous to its host ranks.

    A unit is quarantined when its lease attempts are exhausted by
    *rank deaths* (``RankKilled`` announcements or lease expiry) rather
    than by task exceptions: re-queueing it again would keep killing
    ranks.  ``chain`` records each failed attempt as ``(rank, reason)``
    in order.  Surfaced on ``RunResult.quarantined``.
    """

    uid: str
    kind: str
    payload: str
    attempts: int
    chain: tuple = ()


# --------------------------------------------------------------- the plan


@dataclass
class _KillRule:
    rank: int
    after_tasks: int
    silent: bool


@dataclass
class _PoisonRule:
    match: str
    times: int | None
    silent: bool


@dataclass
class _TaskRule:
    kind: str  # "raise" | "slow"
    match: str
    rank: int | None
    times: int | None
    delay: float
    message: str


@dataclass
class _MsgRule:
    kind: str  # "drop" | "delay"
    src: int | None
    dest: int | None
    tag: int | None
    times: int | None
    probability: float | None
    delay: float


class FaultPlan:
    """A deterministic, seeded fault-injection plan.

    Builder methods return ``self`` so plans chain::

        plan = (FaultPlan(seed=7)
                .kill_rank(2, after_tasks=1)
                .fail_task("emit 3", times=1)
                .delay_messages(probability=0.1, delay=0.005))

    Attach with ``RuntimeConfig(faults=plan)`` (or
    ``swift_run(..., faults=plan)``).  Rules with a ``probability``
    draw from a ``random.Random(seed)`` owned by the run's
    :class:`FaultState`; count-based rules are fully deterministic.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.kills: list[_KillRule] = []
        self.poison_rules: list[_PoisonRule] = []
        self.task_rules: list[_TaskRule] = []
        self.msg_rules: list[_MsgRule] = []

    def __repr__(self) -> str:
        return (
            "FaultPlan(seed=%d, kills=%d, poison=%d, task_rules=%d, "
            "msg_rules=%d)"
            % (
                self.seed,
                len(self.kills),
                len(self.poison_rules),
                len(self.task_rules),
                len(self.msg_rules),
            )
        )

    def kill_rank(
        self, rank: int, after_tasks: int = 0, silent: bool = False
    ) -> "FaultPlan":
        """Kill ``rank`` when it reaches its ``after_tasks + 1``-th unit.

        What counts as a unit depends on the rank's role, and each is a
        fail-stop boundary so the kill is deterministic per seed across
        backends (``tcl_exec=vm|ast``):

        * **workers** — leased work units received; the rank dies
          holding the lease, exercising requeue.
        * **engines** — rule-action hooks: every rule *fire* (LOCAL
          eval or WORK/CONTROL release) and every control task
          received.  Rule-count order is fixed by the dataflow, not by
          interpreter internals, so ``after_tasks=`` picks the same
          boundary under either Tcl backend.
        * **servers** — dispatched messages; the server dies between
          receives, never mid-mutation.

        ``silent=True`` suppresses the launcher's dead-rank
        notification so recovery must come from the lease sweep.
        """
        self.kills.append(_KillRule(rank, after_tasks, silent))
        return self

    def poison_task(
        self, match: str, times: int | None = None, silent: bool = False
    ) -> "FaultPlan":
        """Kill whichever rank executes a task whose payload has ``match``.

        Unlike :meth:`kill_rank` this follows the *task*: every rank
        that picks the unit up dies, modelling a poisonous input that
        crashes its host.  With leases enabled the unit is re-queued
        until its attempts are exhausted by rank deaths, at which point
        the server quarantines it (``RunResult.quarantined``) instead
        of respawn-looping.  ``times`` bounds how many executions kill
        (``None`` = every one).
        """
        self.poison_rules.append(_PoisonRule(match, times, silent))
        return self

    def fail_task(
        self,
        match: str,
        times: int | None = 1,
        rank: int | None = None,
        message: str = "injected task fault",
    ) -> "FaultPlan":
        """Make tasks whose payload contains ``match`` raise InjectedFault.

        ``times`` bounds how many executions fail (``None`` = every
        one); with retries enabled, ``times=1`` models a transient
        fault that succeeds on re-execution.
        """
        self.task_rules.append(
            _TaskRule("raise", match, rank, times, 0.0, message)
        )
        return self

    def slow_task(
        self,
        match: str,
        delay: float = 0.05,
        times: int | None = 1,
        rank: int | None = None,
    ) -> "FaultPlan":
        """Sleep ``delay`` seconds before matching tasks execute."""
        self.task_rules.append(_TaskRule("slow", match, rank, times, delay, ""))
        return self

    def drop_messages(
        self,
        src: int | None = None,
        dest: int | None = None,
        tag: int | None = None,
        times: int | None = 1,
        probability: float | None = None,
    ) -> "FaultPlan":
        """Silently drop matching sends (``None`` filters match anything)."""
        self.msg_rules.append(
            _MsgRule("drop", src, dest, tag, times, probability, 0.0)
        )
        return self

    def delay_messages(
        self,
        delay: float = 0.01,
        src: int | None = None,
        dest: int | None = None,
        tag: int | None = None,
        times: int | None = None,
        probability: float | None = None,
    ) -> "FaultPlan":
        """Sleep the sender ``delay`` seconds before matching sends."""
        self.msg_rules.append(
            _MsgRule("delay", src, dest, tag, times, probability, delay)
        )
        return self

    # ------------------------------------------------------- serialization

    def rule_count(self) -> int:
        """Total number of rules across every category."""
        return (
            len(self.kills)
            + len(self.poison_rules)
            + len(self.task_rules)
            + len(self.msg_rules)
        )

    def to_dict(self) -> dict:
        """A JSON-serializable image of the plan.

        The inverse of :meth:`from_dict`; every rule keeps its dataclass
        field names, so shrunk chaos repros (``repro chaos``) round-trip
        through ``repro run --fault-plan plan.json`` unchanged.
        """
        return {
            "seed": self.seed,
            "kills": [asdict(r) for r in self.kills],
            "poison_rules": [asdict(r) for r in self.poison_rules],
            "task_rules": [asdict(r) for r in self.task_rules],
            "msg_rules": [asdict(r) for r in self.msg_rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict`.

        Unknown rule fields are rejected (``TypeError``) rather than
        silently dropped, so a stale repro artifact fails loudly.
        """
        plan = cls(seed=int(data.get("seed", 0)))
        plan.kills = [_KillRule(**r) for r in data.get("kills", [])]
        plan.poison_rules = [
            _PoisonRule(**r) for r in data.get("poison_rules", [])
        ]
        plan.task_rules = [_TaskRule(**r) for r in data.get("task_rules", [])]
        plan.msg_rules = [_MsgRule(**r) for r in data.get("msg_rules", [])]
        return plan


# --------------------------------------------------------------- run state


@dataclass
class FaultStats:
    """Injection counters, folded into metrics as ``fault.*``."""

    kills: int = 0
    task_errors: int = 0
    slow_tasks: int = 0
    dropped_msgs: int = 0
    delayed_msgs: int = 0


class FaultState:
    """One run's view of a :class:`FaultPlan`: budgets, counters, RNG.

    Thread-safe; the hooks are only reached when a plan is attached, so
    the faults-off fast path stays a single ``is None`` test at every
    call site.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        self._lock = threading.Lock()
        self._rng = random.Random(plan.seed)
        self._tasks_seen: dict[int, int] = {}
        self._server_ops_seen: dict[int, int] = {}
        self._kill_done = [False] * len(plan.kills)
        self._poison_budget = [r.times for r in plan.poison_rules]
        self._task_budget = [r.times for r in plan.task_rules]
        self._msg_budget = [r.times for r in plan.msg_rules]

    def on_task(
        self, rank: int, payload: object, kill_only: bool = False
    ) -> tuple | None:
        """Directive for the next unit of work on ``rank``.

        Returns ``None`` (run normally), ``("kill", silent)``,
        ``("raise", message)``, or ``("sleep", delay)``.
        ``kill_only=True`` is the engine's *release* hook: the unit
        counts toward ``kill_rank(after_tasks=...)`` (a release is a
        rule fire), but poison/fail/slow rules are skipped — those
        apply where the task payload actually executes.
        """
        plan = self.plan
        with self._lock:
            n = self._tasks_seen.get(rank, 0) + 1
            self._tasks_seen[rank] = n
            for i, kill in enumerate(plan.kills):
                if kill.rank == rank and not self._kill_done[i] and n > kill.after_tasks:
                    self._kill_done[i] = True
                    self.stats.kills += 1
                    return ("kill", kill.silent)
            if kill_only:
                return None
            if not plan.task_rules and not plan.poison_rules:
                return None
            text = payload if isinstance(payload, str) else repr(payload)
            for i, rule in enumerate(plan.poison_rules):
                budget = self._poison_budget[i]
                if budget is not None and budget <= 0:
                    continue
                if rule.match not in text:
                    continue
                if budget is not None:
                    self._poison_budget[i] = budget - 1
                self.stats.kills += 1
                return ("kill", rule.silent)
            if not plan.task_rules:
                return None
            for i, rule in enumerate(plan.task_rules):
                if rule.rank is not None and rule.rank != rank:
                    continue
                budget = self._task_budget[i]
                if budget is not None and budget <= 0:
                    continue
                if rule.match not in text:
                    continue
                if budget is not None:
                    self._task_budget[i] = budget - 1
                if rule.kind == "raise":
                    self.stats.task_errors += 1
                    return ("raise", rule.message)
                self.stats.slow_tasks += 1
                return ("sleep", rule.delay)
        return None

    def on_server_op(self, rank: int) -> tuple | None:
        """Directive for the next dispatched message on server ``rank``.

        Server ranks run no tasks, so :meth:`FaultPlan.kill_rank`'s
        ``after_tasks`` counts *dispatches* for them: the server dies at
        a message boundary, never mid-mutation — fail-stop, matching a
        process crash between MPI receives.  Returns ``None`` or
        ``("kill", silent)``.
        """
        plan = self.plan
        if not plan.kills:
            return None
        with self._lock:
            n = self._server_ops_seen.get(rank, 0) + 1
            self._server_ops_seen[rank] = n
            for i, kill in enumerate(plan.kills):
                if (
                    kill.rank == rank
                    and not self._kill_done[i]
                    and n > kill.after_tasks
                ):
                    self._kill_done[i] = True
                    self.stats.kills += 1
                    return ("kill", kill.silent)
        return None

    def on_send(self, src: int, dest: int, tag: int) -> tuple | None:
        """Directive for one message send.

        Returns ``None`` (deliver), ``("drop", 0.0)``, or
        ``("sleep", delay)`` (deliver after delaying the sender).
        """
        plan = self.plan
        if not plan.msg_rules:
            return None
        with self._lock:
            for i, rule in enumerate(plan.msg_rules):
                if rule.src is not None and rule.src != src:
                    continue
                if rule.dest is not None and rule.dest != dest:
                    continue
                if rule.tag is not None and rule.tag != tag:
                    continue
                budget = self._msg_budget[i]
                if budget is not None and budget <= 0:
                    continue
                if rule.probability is not None and self._rng.random() >= rule.probability:
                    continue
                if budget is not None:
                    self._msg_budget[i] = budget - 1
                if rule.kind == "drop":
                    self.stats.dropped_msgs += 1
                    return ("drop", 0.0)
                self.stats.delayed_msgs += 1
                return ("sleep", rule.delay)
        return None
