"""Tcl ``expr`` evaluator.

Implements the expression sublanguage: numeric literals, ``$var`` and
``[cmd]`` substitution, string literals, the standard operator set with
Tcl precedence, lazy ``&&``/``||``/``?:``, and math functions.  Parsed
expressions are cached as small ASTs because rule and loop conditions
are evaluated repeatedly.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .errors import TclError

Num = int | float


# --- value coercion ------------------------------------------------------

_TRUE_WORDS = {"true", "yes", "on"}
_FALSE_WORDS = {"false", "no", "off"}


def parse_number(s: str) -> Num | None:
    """Parse a Tcl numeric literal; None if not numeric."""
    # Fast path: plain decimal integers are the overwhelmingly common
    # case on the hot expr path ($var operands round-trip as strings).
    # int() accepts Python's "1_0" digit grouping, which Tcl does not —
    # reject those before returning.
    try:
        v = int(s, 10)
        if "_" not in s:
            return v
        return None
    except ValueError:
        pass
    t = s.strip()
    if not t:
        return None
    try:
        if t[:1] in "+-":
            sign, body = t[0], t[1:]
        else:
            sign, body = "", t
        low = body.lower()
        if low.startswith("0x"):
            v: Num = int(body, 16)
        elif low.startswith("0b"):
            v = int(body, 2)
        elif low.startswith("0o"):
            v = int(body, 8)
        elif any(ch in t for ch in ".eE") and not low.startswith("0x"):
            v = float(t)
            return v
        else:
            v = int(body, 10)
        return -v if sign == "-" else v
    except ValueError:
        try:
            return float(t)
        except ValueError:
            return None


def coerce(v: Any) -> Any:
    """Coerce a substituted operand to int/float when it looks numeric."""
    if isinstance(v, (int, float)):
        return v
    num = parse_number(str(v))
    return num if num is not None else str(v)


def truthy(v: Any) -> bool:
    if isinstance(v, (int, float)):
        return v != 0
    s = str(v).strip().lower()
    if s in _TRUE_WORDS:
        return True
    if s in _FALSE_WORDS:
        return False
    num = parse_number(s)
    if num is None:
        raise TclError('expected boolean value but got "%s"' % v)
    return num != 0


def to_string(v: Any) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, float):
        if v != v:  # NaN
            return "NaN"
        if v in (math.inf, -math.inf):
            return "Inf" if v > 0 else "-Inf"
        if v == int(v) and abs(v) < 1e16:
            return "%.1f" % v
        return repr(v)
    return str(v)


# --- tokenizer -----------------------------------------------------------

_OPERATORS = [
    "**", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "<", ">", "+", "-", "*", "/", "%", "!", "~", "&", "^", "|", "?", ":",
    "(", ")", ",",
]
_WORD_OPS = {"eq", "ne", "in", "ni"}


def _tokenize(s: str) -> list[tuple[str, str]]:
    toks: list[tuple[str, str]] = []
    i, n = 0, len(s)
    while i < n:
        c = s[i]
        if c in " \t\n\r":
            i += 1
            continue
        if c == "$":
            from .parser import _scan_varname

            name, j = _scan_varname(s, i + 1)
            if name is None:
                raise TclError("invalid character '$' in expression")
            toks.append(("var", name))
            i = j
            continue
        if c == "[":
            from .parser import _scan_command_subst

            script, i = _scan_command_subst(s, i)
            toks.append(("cmd", script))
            continue
        if c == '"':
            j = i + 1
            buf = []
            while j < n and s[j] != '"':
                if s[j] == "\\" and j + 1 < n:
                    from .listutil import backslash_subst

                    buf.append(backslash_subst(s[j + 1]))
                    j += 2
                    continue
                buf.append(s[j])
                j += 1
            if j >= n:
                raise TclError("missing close quote in expression")
            toks.append(("str", "".join(buf)))
            i = j + 1
            continue
        if c == "{":
            from .parser import _scan_braced

            content, i = _scan_braced(s, i)
            toks.append(("str", content))
            continue
        if c.isdigit() or (c == "." and i + 1 < n and s[i + 1].isdigit()):
            j = i
            if s[j : j + 2].lower() in ("0x", "0b", "0o"):
                j += 2
                while j < n and (s[j].isalnum()):
                    j += 1
            else:
                seen_e = False
                while j < n:
                    ch = s[j]
                    if ch.isdigit() or ch == ".":
                        j += 1
                    elif ch in "eE" and not seen_e:
                        seen_e = True
                        j += 1
                        if j < n and s[j] in "+-":
                            j += 1
                    else:
                        break
            toks.append(("num", s[i:j]))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (s[j].isalnum() or s[j] == "_" or s[j] == ":"):
                j += 1
            word = s[i:j]
            if word in _WORD_OPS:
                toks.append(("op", word))
            else:
                toks.append(("name", word))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if s.startswith(op, i):
                toks.append(("op", op))
                i += len(op)
                matched = True
                break
        if not matched:
            raise TclError("invalid character %r in expression %r" % (c, s))
    return toks


# --- AST -----------------------------------------------------------------
# Nodes: ("num", value) ("str", s) ("var", name) ("cmdsub", script)
#        ("un", op, a) ("bin", op, a, b) ("tern", c, a, b)
#        ("fn", name, [args]) ("bool", name)


class _Parser:
    def __init__(self, toks: list[tuple[str, str]]):
        self.toks = toks
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self) -> tuple[str, str]:
        t = self.peek()
        if t is None:
            raise TclError("premature end of expression")
        self.pos += 1
        return t

    def expect_op(self, op: str) -> None:
        t = self.next()
        if t != ("op", op):
            raise TclError("expected %r in expression, got %r" % (op, t[1]))

    # precedence levels, lowest first
    def parse(self) -> tuple:
        node = self.ternary()
        if self.peek() is not None:
            raise TclError(
                "extra tokens at end of expression: %r" % (self.peek()[1],)
            )
        return node

    def ternary(self) -> tuple:
        cond = self.or_()
        t = self.peek()
        if t == ("op", "?"):
            self.next()
            a = self.ternary()
            self.expect_op(":")
            b = self.ternary()
            return ("tern", cond, a, b)
        return cond

    def _binary_level(
        self, ops: set[str], sub: Callable[[], tuple]
    ) -> tuple:
        node = sub()
        while True:
            t = self.peek()
            if t is not None and t[0] == "op" and t[1] in ops:
                self.next()
                rhs = sub()
                node = ("bin", t[1], node, rhs)
            else:
                return node

    def or_(self):
        return self._binary_level({"||"}, self.and_)

    def and_(self):
        return self._binary_level({"&&"}, self.bitor)

    def bitor(self):
        return self._binary_level({"|"}, self.bitxor)

    def bitxor(self):
        return self._binary_level({"^"}, self.bitand)

    def bitand(self):
        return self._binary_level({"&"}, self.equality)

    def equality(self):
        return self._binary_level({"==", "!=", "eq", "ne", "in", "ni"}, self.relational)

    def relational(self):
        return self._binary_level({"<", ">", "<=", ">="}, self.shift)

    def shift(self):
        return self._binary_level({"<<", ">>"}, self.additive)

    def additive(self):
        return self._binary_level({"+", "-"}, self.multiplicative)

    def multiplicative(self):
        return self._binary_level({"*", "/", "%"}, self.power)

    def power(self):
        # ** is right-associative
        base = self.unary()
        t = self.peek()
        if t == ("op", "**"):
            self.next()
            return ("bin", "**", base, self.power())
        return base

    def unary(self) -> tuple:
        t = self.peek()
        if t is not None and t[0] == "op" and t[1] in ("-", "+", "!", "~"):
            self.next()
            return ("un", t[1], self.unary())
        return self.primary()

    def primary(self) -> tuple:
        t = self.next()
        kind, text = t
        if kind == "num":
            v = parse_number(text)
            if v is None:
                raise TclError("malformed number %r" % text)
            return ("num", v)
        if kind == "str":
            return ("str", text)
        if kind == "var":
            return ("var", text)
        if kind == "cmd":
            return ("cmdsub", text)
        if kind == "op" and text == "(":
            node = self.ternary()
            self.expect_op(")")
            return node
        if kind == "name":
            low = text.lower()
            if low in _TRUE_WORDS:
                return ("num", 1)
            if low in _FALSE_WORDS:
                return ("num", 0)
            if low in ("inf", "infinity"):
                return ("num", math.inf)
            if low == "nan":
                return ("num", math.nan)
            # function call
            if self.peek() == ("op", "("):
                self.next()
                args: list[tuple] = []
                if self.peek() != ("op", ")"):
                    args.append(self.ternary())
                    while self.peek() == ("op", ","):
                        self.next()
                        args.append(self.ternary())
                self.expect_op(")")
                return ("fn", text, args)
            raise TclError('bareword "%s" in expression' % text)
        raise TclError("unexpected token %r in expression" % text)


# Bounded LRU (shared helper with the script parse cache); a full
# clear here used to stall every cached loop/rule condition at once.
from ..lru import LRUCache

_AST_CACHE: LRUCache[str, tuple] = LRUCache(4096)


def compile_expr(s: str) -> tuple:
    """Parse an expression into its cached AST (the compiled form).

    Loop commands call this once per loop and then evaluate the node
    directly via :func:`eval_node`, skipping the per-iteration cache
    lookup.
    """
    node = _AST_CACHE.get(s)
    if node is None:
        node = _Parser(_tokenize(s)).parse()
        _AST_CACHE.put(s, node)
    return node


# --- evaluation ----------------------------------------------------------

_MATH_FN: dict[str, Callable] = {
    "abs": abs,
    "ceil": lambda x: float(math.ceil(x)),
    "floor": lambda x: float(math.floor(x)),
    "round": lambda x: int(round(x)),
    "sqrt": math.sqrt,
    "pow": lambda a, b: float(a) ** float(b),
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "log2": math.log2,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "atan2": math.atan2,
    "sinh": math.sinh,
    "cosh": math.cosh,
    "tanh": math.tanh,
    "fmod": math.fmod,
    "hypot": math.hypot,
    "int": lambda x: int(x),
    "wide": lambda x: int(x),
    "entier": lambda x: int(x),
    "double": lambda x: float(x),
    "bool": lambda x: 1 if truthy(x) else 0,
    "min": min,
    "max": max,
    "isqrt": lambda x: math.isqrt(int(x)),
}


def _both_numeric(a: Any, b: Any) -> bool:
    return isinstance(a, (int, float)) and isinstance(b, (int, float))


def _need_num(v: Any, op: str) -> Num:
    if isinstance(v, (int, float)):
        return v
    raise TclError(
        "can't use non-numeric string %r as operand of %r" % (v, op)
    )


def _need_int(v: Any, op: str) -> int:
    if isinstance(v, int):
        return v
    raise TclError("can't use %r as integer operand of %r" % (v, op))


def _eval_bin(op: str, a: Any, b: Any) -> Any:
    if op == "eq":
        return 1 if to_string(a) == to_string(b) else 0
    if op == "ne":
        return 1 if to_string(a) != to_string(b) else 0
    if op == "in":
        from .listutil import parse_list

        return 1 if to_string(a) in parse_list(to_string(b)) else 0
    if op == "ni":
        from .listutil import parse_list

        return 1 if to_string(a) not in parse_list(to_string(b)) else 0
    if op in ("==", "!=", "<", ">", "<=", ">="):
        # EIAS: operands that look numeric compare numerically even if
        # they arrived as quoted strings ("3" == "3.0" is true in Tcl).
        ca, cb = coerce(a), coerce(b)
        if _both_numeric(ca, cb):
            x, y = ca, cb
        else:
            x, y = to_string(a), to_string(b)
        res = {
            "==": x == y, "!=": x != y, "<": x < y,
            ">": x > y, "<=": x <= y, ">=": x >= y,
        }[op]
        return 1 if res else 0
    if op in ("<<", ">>", "&", "^", "|"):
        x, y = _need_int(a, op), _need_int(b, op)
        if op == "<<":
            return x << y
        if op == ">>":
            return x >> y
        if op == "&":
            return x & y
        if op == "^":
            return x ^ y
        return x | y
    x, y = _need_num(a, op), _need_num(b, op)
    if op == "+":
        return x + y
    if op == "-":
        return x - y
    if op == "*":
        return x * y
    if op == "/":
        if y == 0:
            raise TclError("divide by zero")
        if isinstance(x, int) and isinstance(y, int):
            return x // y  # Tcl integer division floors
        return x / y
    if op == "%":
        if y == 0:
            raise TclError("divide by zero")
        if isinstance(x, int) and isinstance(y, int):
            return x % y  # sign of divisor, as in Tcl
        return math.fmod(x, y)
    if op == "**":
        if isinstance(x, int) and isinstance(y, int) and y >= 0:
            return x**y
        return float(x) ** float(y)
    raise TclError("unknown operator %r" % op)


def eval_expr(interp, text: str) -> Any:
    """Evaluate a Tcl expression string in the given interpreter.

    Returns an int/float/str value (not yet stringified); ``expr`` the
    command stringifies via :func:`to_string`.
    """
    node = _AST_CACHE.get(text)
    stats = getattr(interp, "cache_stats", None)
    if node is None:
        node = _Parser(_tokenize(text)).parse()
        _AST_CACHE.put(text, node)
        if stats is not None:
            stats.expr_misses += 1
    elif stats is not None:
        stats.expr_hits += 1
    return _eval_node(interp, node)


def eval_node(interp, node: tuple) -> Any:
    """Evaluate a pre-compiled expression AST (see :func:`compile_expr`)."""
    return _eval_node(interp, node)


def eval_unary(op: str, v: Any) -> Any:
    """Apply a unary expr operator (shared by the AST walker and the VM)."""
    if op == "!":
        return 0 if truthy(v) else 1
    if op == "~":
        return ~_need_int(v, op)
    x = _need_num(v, op)
    return -x if op == "-" else +x


def _eval_node(interp, node: tuple) -> Any:
    # Branch order tracks hot-path frequency: operands ($var, literals)
    # and binary operators dominate compiled rule/loop conditions.
    kind = node[0]
    if kind == "var":
        return coerce(interp.get_var(node[1]))
    if kind == "num":
        return node[1]
    if kind == "bin":
        op = node[1]
        if op == "&&":
            if not truthy(_eval_node(interp, node[2])):
                return 0
            return 1 if truthy(_eval_node(interp, node[3])) else 0
        if op == "||":
            if truthy(_eval_node(interp, node[2])):
                return 1
            return 1 if truthy(_eval_node(interp, node[3])) else 0
        a = _eval_node(interp, node[2])
        b = _eval_node(interp, node[3])
        return _eval_bin(op, a, b)
    if kind == "str":
        return node[1]
    if kind == "cmdsub":
        return coerce(interp.eval(node[1]))
    if kind == "un":
        return eval_unary(node[1], _eval_node(interp, node[2]))
    if kind == "tern":
        if truthy(_eval_node(interp, node[1])):
            return _eval_node(interp, node[2])
        return _eval_node(interp, node[3])
    if kind == "fn":
        name = node[1].lower()
        fn = _MATH_FN.get(name)
        if fn is None:
            raise TclError('unknown math function "%s"' % node[1])
        args = [
            _need_num(_eval_node(interp, a), name)
            if name not in ("bool",)
            else _eval_node(interp, a)
            for a in node[2]
        ]
        try:
            return fn(*args)
        except (ValueError, OverflowError) as e:
            raise TclError("math error in %s(): %s" % (name, e)) from e
        except TypeError as e:
            raise TclError(
                "wrong # args to math function %r: %s" % (name, e)
            ) from e
    raise TclError("bad expr node %r" % (node,))
