"""Tcl list parsing and formatting.

A Tcl list is a string whose elements are separated by whitespace, with
braces and quotes grouping elements that contain special characters.
These routines implement the canonical round-trip used throughout the
runtime: ``format_list(parse_list(s))`` preserves element boundaries.
"""

from __future__ import annotations

_WHITESPACE = " \t\n\r\f\v"
# Characters that force quoting when formatting an element.
_SPECIAL = set(_WHITESPACE) | set('{}"\\[]$;')

_BACKSLASH_MAP = {
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "v": "\v",
}


def backslash_subst(ch: str) -> str:
    """Single-character backslash substitution (no hex/unicode here)."""
    return _BACKSLASH_MAP.get(ch, ch)


def parse_list(s: str) -> list[str]:
    """Split a Tcl list string into its elements.

    Raises ValueError on unbalanced braces or unterminated quotes, the
    same conditions under which Tcl reports "unmatched open brace in
    list".
    """
    out: list[str] = []
    i, n = 0, len(s)
    while i < n:
        # Skip inter-element whitespace.
        while i < n and s[i] in _WHITESPACE:
            i += 1
        if i >= n:
            break
        c = s[i]
        if c == "{":
            depth = 1
            i += 1
            start = i
            while i < n and depth:
                if s[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                if s[i] == "{":
                    depth += 1
                elif s[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            if depth:
                raise ValueError("unmatched open brace in list")
            out.append(s[start:i])
            i += 1  # past closing brace
            if i < n and s[i] not in _WHITESPACE:
                raise ValueError(
                    "list element in braces followed by %r instead of space"
                    % s[i]
                )
        elif c == '"':
            i += 1
            buf: list[str] = []
            closed = False
            while i < n:
                if s[i] == "\\" and i + 1 < n:
                    buf.append(backslash_subst(s[i + 1]))
                    i += 2
                    continue
                if s[i] == '"':
                    closed = True
                    i += 1
                    break
                buf.append(s[i])
                i += 1
            if not closed:
                raise ValueError("unmatched open quote in list")
            out.append("".join(buf))
            if i < n and s[i] not in _WHITESPACE:
                raise ValueError(
                    'list element in quotes followed by %r instead of space'
                    % s[i]
                )
        else:
            buf = []
            while i < n and s[i] not in _WHITESPACE:
                if s[i] == "\\" and i + 1 < n:
                    buf.append(backslash_subst(s[i + 1]))
                    i += 2
                    continue
                buf.append(s[i])
                i += 1
            out.append("".join(buf))
    return out


def _braces_balanced(s: str) -> bool:
    depth = 0
    i = 0
    while i < len(s):
        c = s[i]
        if c == "\\":
            i += 2
            continue
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth < 0:
                return False
        i += 1
    return depth == 0


def format_element(el: str) -> str:
    """Quote one element so parse_list recovers it exactly."""
    if el == "":
        return "{}"
    if not any(ch in _SPECIAL for ch in el):
        return el
    # Prefer brace quoting when braces balance and no trailing backslash.
    if _braces_balanced(el) and not el.endswith("\\"):
        return "{" + el + "}"
    # Fall back to backslash escaping.
    out = []
    for ch in el:
        if ch in _SPECIAL:
            if ch == "\n":
                out.append("\\n")
            elif ch == "\t":
                out.append("\\t")
            elif ch == "\r":
                out.append("\\r")
            else:
                out.append("\\" + ch)
        else:
            out.append(ch)
    return "".join(out)


def format_list(elements: list[str]) -> str:
    """Join elements into a canonical Tcl list string."""
    return " ".join(format_element(str(e)) for e in elements)
