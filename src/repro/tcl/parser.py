"""Tcl script parser.

Parses a script string into a sequence of commands; each command is a
sequence of words; each word is either literal or a list of segments to
be substituted at evaluation time (``$var``, ``[cmd]``, backslash
escapes).  Parsed scripts are cached because dataflow rule bodies and
loop bodies are re-evaluated many times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_WORD_TERM = " \t;\n\r"
_VARNAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


class TclParseError(ValueError):
    pass


# --- word segment kinds -------------------------------------------------
# ("lit", text)   literal text
# ("var", name)   variable substitution
# ("cmd", script) command substitution


@dataclass
class Word:
    """One word of a command.

    ``literal`` is set when the word needs no runtime substitution (bare
    text or brace-quoted).  Otherwise ``segments`` drives substitution.
    ``expand`` marks a ``{*}``-prefixed word.
    """

    literal: str | None = None
    segments: list[tuple[str, str]] = field(default_factory=list)
    expand: bool = False


@dataclass
class Command:
    words: list[Word]
    line: int  # 1-based line of the command start, for error messages


def _backslash(s: str, i: int) -> tuple[str, int]:
    """Process a backslash escape at s[i] == '\\'.  Returns (text, next_i)."""
    if i + 1 >= len(s):
        return "\\", i + 1
    c = s[i + 1]
    if c == "\n":
        # Backslash-newline plus following whitespace collapses to one space.
        j = i + 2
        while j < len(s) and s[j] in " \t":
            j += 1
        return " ", j
    if c == "x":
        j = i + 2
        hexdigits = ""
        while j < len(s) and len(hexdigits) < 2 and s[j] in "0123456789abcdefABCDEF":
            hexdigits += s[j]
            j += 1
        if hexdigits:
            return chr(int(hexdigits, 16)), j
        return "x", i + 2
    if c == "u":
        j = i + 2
        hexdigits = ""
        while j < len(s) and len(hexdigits) < 4 and s[j] in "0123456789abcdefABCDEF":
            hexdigits += s[j]
            j += 1
        if hexdigits:
            return chr(int(hexdigits, 16)), j
        return "u", i + 2
    mapped = {
        "a": "\a", "b": "\b", "f": "\f", "n": "\n",
        "r": "\r", "t": "\t", "v": "\v",
    }.get(c, c)
    return mapped, i + 2


def _scan_braced(s: str, i: int) -> tuple[str, int]:
    """Scan a brace-quoted section starting at s[i] == '{'.

    Returns (content, index-after-closing-brace).  Backslash-newline is
    substituted inside braces; all other content is raw.
    """
    depth = 1
    i += 1
    out: list[str] = []
    n = len(s)
    while i < n:
        c = s[i]
        if c == "\\":
            if i + 1 < n and s[i + 1] == "\n":
                text, j = _backslash(s, i)
                out.append(text)
                i = j
                continue
            out.append(s[i : i + 2])
            i += 2
            continue
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return "".join(out), i + 1
        out.append(c)
        i += 1
    raise TclParseError("missing close-brace")


def _scan_command_subst(s: str, i: int) -> tuple[str, int]:
    """Scan a [command] substitution starting at s[i] == '['.

    Returns (script, index-after-closing-bracket).  Nested brackets,
    braces, quotes, and backslashes are respected.
    """
    i += 1
    start = i
    depth = 1
    n = len(s)
    while i < n:
        c = s[i]
        if c == "\\":
            i += 2
            continue
        if c == "{":
            _, i = _scan_braced(s, i)
            continue
        if c == '"':
            i += 1
            while i < n and s[i] != '"':
                if s[i] == "\\":
                    i += 1
                i += 1
            i += 1
            continue
        if c == "[":
            depth += 1
        elif c == "]":
            depth -= 1
            if depth == 0:
                return s[start:i], i + 1
        i += 1
    raise TclParseError("missing close-bracket")


def _scan_varname(s: str, i: int) -> tuple[str | None, int]:
    """Scan a variable name after '$' at s[i-1].  Returns (name|None, next_i)."""
    n = len(s)
    if i < n and s[i] == "{":
        j = s.find("}", i + 1)
        if j < 0:
            raise TclParseError("missing close-brace for variable name")
        return s[i + 1 : j], j + 1
    j = i
    while j < n:
        if s[j] in _VARNAME_CHARS:
            j += 1
        elif s[j] == ":" and j + 1 < n and s[j + 1] == ":":
            j += 2
        else:
            break
    if j == i:
        return None, i  # bare '$'
    return s[i:j], j


def _parse_segments(
    s: str, i: int, terminators: str, in_quotes: bool
) -> tuple[list[tuple[str, str]], int]:
    """Parse substitution segments until a terminator (or close quote)."""
    segs: list[tuple[str, str]] = []
    lit: list[str] = []
    n = len(s)

    def flush() -> None:
        if lit:
            segs.append(("lit", "".join(lit)))
            lit.clear()

    while i < n:
        c = s[i]
        if in_quotes:
            if c == '"':
                i += 1
                flush()
                return segs, i
        elif c in terminators:
            break
        if c == "\\":
            text, i = _backslash(s, i)
            lit.append(text)
            continue
        if c == "$":
            name, j = _scan_varname(s, i + 1)
            if name is None:
                lit.append("$")
                i += 1
            else:
                flush()
                segs.append(("var", name))
                i = j
            continue
        if c == "[":
            flush()
            script, i = _scan_command_subst(s, i)
            segs.append(("cmd", script))
            continue
        lit.append(c)
        i += 1
    if in_quotes:
        raise TclParseError("missing close quote")
    flush()
    return segs, i


def parse_script(script: str) -> list[Command]:
    """Parse a full script into commands (uncached; see parse_cached)."""
    cmds: list[Command] = []
    i, n = 0, len(script)
    line = 1

    while i < n:
        # Skip leading whitespace and empty commands.
        while i < n and script[i] in " \t":
            i += 1
        if i < n and script[i] in ";\n\r":
            if script[i] == "\n":
                line += 1
            i += 1
            continue
        if i >= n:
            break
        if script[i] == "#":
            # Comment to end of line (honoring backslash-newline).
            while i < n and script[i] != "\n":
                if script[i] == "\\" and i + 1 < n:
                    if script[i + 1] == "\n":
                        line += 1
                    i += 1
                i += 1
            continue

        words: list[Word] = []
        cmd_line = line
        while i < n and script[i] not in ";\n\r":
            while i < n and script[i] in " \t":
                i += 1
            if i >= n or script[i] in ";\n\r":
                break
            if script[i] == "\\" and i + 1 < n and script[i + 1] == "\n":
                line += 1
                _, i = _backslash(script, i)
                continue

            expand = False
            if script.startswith("{*}", i) and i + 3 < n and script[i + 3] not in _WORD_TERM:
                expand = True
                i += 3

            c = script[i]
            if c == "{":
                content, j = _scan_braced(script, i)
                if j < n and script[j] not in _WORD_TERM:
                    raise TclParseError(
                        "extra characters after close-brace (line %d)" % line
                    )
                line += content.count("\n") + script[i:j].count("\\\n")
                words.append(Word(literal=content, expand=expand))
                i = j
            elif c == '"':
                segs, j = _parse_segments(script, i + 1, "", True)
                if j < n and script[j] not in _WORD_TERM:
                    raise TclParseError(
                        "extra characters after close-quote (line %d)" % line
                    )
                line += script[i:j].count("\n")
                if len(segs) == 1 and segs[0][0] == "lit":
                    words.append(Word(literal=segs[0][1], expand=expand))
                elif not segs:
                    words.append(Word(literal="", expand=expand))
                else:
                    words.append(Word(segments=segs, expand=expand))
                i = j
            else:
                segs, j = _parse_segments(script, i, _WORD_TERM, False)
                line += script[i:j].count("\n")
                if len(segs) == 1 and segs[0][0] == "lit":
                    words.append(Word(literal=segs[0][1], expand=expand))
                else:
                    words.append(Word(segments=segs, expand=expand))
                i = j
        if words:
            cmds.append(Command(words=words, line=cmd_line))
    return cmds


# --- parse cache ---------------------------------------------------------
# Bounded LRU: a full clear at capacity would cause a thundering
# re-parse of every live proc body the next time each one runs.

from ..lru import LRUCache

_CACHE: LRUCache[str, list[Command]] = LRUCache(4096)


def parse_cached(script: str) -> list[Command]:
    """Parse with memoization; loop/rule bodies re-parse for free."""
    cached = _CACHE.get(script)
    if cached is None:
        cached = parse_script(script)
        _CACHE.put(script, cached)
    return cached
