"""Bytecode representation for the mini-Tcl VM.

A :class:`Code` object is the unit of execution: a flat ``ops`` array of
``(opcode, arg)`` pairs (stored interleaved, so the dispatch loop reads
``ops[pc]``/``ops[pc + 1]`` and advances ``pc`` by 2), a constant pool,
and a list of mutable inline-cache slots.  Code objects are owned by a
single interpreter — the embedded command caches follow the interp's
``cmd_epoch`` invalidation protocol, exactly like the AST layer's
:class:`~repro.tcl.interp.CompiledCommand` pointer caches.

The compiler (:mod:`repro.tcl.compile`) lowers parsed ``Command`` /
``Word`` / expr ASTs into this form; the VM (:mod:`repro.tcl.vm`) runs
it on an explicit frame stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# --- opcodes -------------------------------------------------------------
# Stack discipline: every command leaves exactly one (str) result on the
# stack; scripts POP between commands and OP_END consumes the last one
# as the script result.

OP_CONST = 1        # push consts[arg]
OP_POP = 2          # drop top of stack
OP_LOAD_NAME = 3    # push interp.get_var(consts[arg])
OP_LOAD_SLOT = 4    # push local slot arg (proc bodies only)
OP_ELOAD_NAME = 5   # expr load: push coerce(get_var(consts[arg]))
OP_ELOAD_SLOT = 6   # expr load: push coerce(slot arg)
OP_SET_NAME = 7     # consts[arg]=(name, line); pop value, set, push it
OP_SET_SLOT = 8     # consts[arg]=(slot, name, line); pop value, set, push
OP_INCR_NAME = 9    # consts[arg]=(name, delta, line, text); push result
OP_INCR_SLOT = 10   # consts[arg]=(slot, name, delta, line, text)
OP_CONCAT = 11      # join top arg values into one string
OP_CALL = 12        # caches[arg]; argv of caches[arg][0] words on stack
OP_CALL_LIT = 13    # caches[arg]; literal argv, nothing on stack
OP_EXEC = 14        # run consts[arg] (a CompiledCommand) via the AST path
OP_GUARD = 15       # caches[arg]; epoch-check an inlined builtin, else
                    # jump to the AST fallback block
OP_JUMP = 16        # pc = arg
OP_JUMP_IF_FALSE = 17  # pop; truthy() false -> pc = arg
OP_JUMP_IF_TRUE = 18   # pop; truthy() true -> pc = arg
OP_PUSH_BLOCK = 19  # consts[arg]=(break_pc, continue_pc); push loop block
OP_POP_BLOCK = 20   # pop loop block
OP_BREAK = 21       # unwind to innermost loop block (may cross procs)
OP_CONTINUE = 22    # unwind to innermost loop block's continue target
OP_RETURN = 23      # pop value; return from the enclosing proc / script
OP_END = 24         # pop value; end of code (script result)
# Lowered expr operators: int/int fast path, else expr._eval_bin.
OP_ADD = 25
OP_SUB = 26
OP_MUL = 27
OP_LT = 28
OP_LE = 29
OP_GT = 30
OP_GE = 31
OP_EQ = 32
OP_NE = 33
OP_BIN = 34         # generic binary: consts[arg] is the operator string
OP_UNARY = 35       # consts[arg] is the operator string (!, ~, -, +)
OP_EVAL_NODE = 36   # push expr.eval_node(interp, consts[arg])
OP_COERCE = 37      # pop v; push expr.coerce(v)  (inline [cmd] in expr)
OP_TO_STR = 38      # pop v; push expr.to_string(v)

NAMES = {
    OP_CONST: "CONST",
    OP_POP: "POP",
    OP_LOAD_NAME: "LOAD_NAME",
    OP_LOAD_SLOT: "LOAD_SLOT",
    OP_ELOAD_NAME: "ELOAD_NAME",
    OP_ELOAD_SLOT: "ELOAD_SLOT",
    OP_SET_NAME: "SET_NAME",
    OP_SET_SLOT: "SET_SLOT",
    OP_INCR_NAME: "INCR_NAME",
    OP_INCR_SLOT: "INCR_SLOT",
    OP_CONCAT: "CONCAT",
    OP_CALL: "CALL",
    OP_CALL_LIT: "CALL_LIT",
    OP_EXEC: "EXEC",
    OP_GUARD: "GUARD",
    OP_JUMP: "JUMP",
    OP_JUMP_IF_FALSE: "JUMP_IF_FALSE",
    OP_JUMP_IF_TRUE: "JUMP_IF_TRUE",
    OP_PUSH_BLOCK: "PUSH_BLOCK",
    OP_POP_BLOCK: "POP_BLOCK",
    OP_BREAK: "BREAK",
    OP_CONTINUE: "CONTINUE",
    OP_RETURN: "RETURN",
    OP_END: "END",
    OP_ADD: "ADD",
    OP_SUB: "SUB",
    OP_MUL: "MUL",
    OP_LT: "LT",
    OP_LE: "LE",
    OP_GT: "GT",
    OP_GE: "GE",
    OP_EQ: "EQ",
    OP_NE: "NE",
    OP_BIN: "BIN",
    OP_UNARY: "UNARY",
    OP_EVAL_NODE: "EVAL_NODE",
    OP_COERCE: "COERCE",
    OP_TO_STR: "TO_STR",
}

_JUMPS = {OP_JUMP, OP_JUMP_IF_FALSE, OP_JUMP_IF_TRUE}


@dataclass
class VMStats:
    """Per-interpreter VM counters, folded as ``tcl.vm.*`` in traces."""

    frames: int = 0          # VM proc frames pushed (inline + Python-entered)
    cache_hits: int = 0      # inline command-cache hits
    cache_misses: int = 0    # inline command-cache (re)resolutions
    code_hits: int = 0       # bytecode-cache hits (scripts served compiled)
    code_misses: int = 0     # scripts lowered to bytecode
    peephole_ops: int = 0    # ops removed / constants folded by peephole


class Code:
    """One compiled script or proc body.

    * ``ops`` — interleaved (opcode, arg) pairs.
    * ``consts`` — constant pool (strings, tuples, expr nodes,
      CompiledCommand fallbacks, proc prototypes).
    * ``caches`` — mutable inline-cache entries for CALL/CALL_LIT/GUARD.
    * ``slot_names`` — local-variable slot table (proc bodies; empty for
      script-context code, which uses the NAME ops against the current
      frame's dict).
    * ``regions`` — ``(start_pc, end_pc, text, line)`` error-decoration
      spans for inlined control commands, innermost first.
    * ``lines`` — ``(pc, line)`` provenance pairs, ascending.
    * ``proto`` — for proc bodies, the arg-count-checked prototype
      ``(name, params, n_params, simple)`` used by the VM's binding
      fast path.
    """

    __slots__ = (
        "ops", "consts", "caches", "slot_names", "regions", "lines",
        "proto", "name", "script",
    )

    def __init__(
        self,
        ops: list,
        consts: list,
        caches: list,
        slot_names: list[str],
        regions: list[tuple[int, int, str, int]],
        lines: list[tuple[int, int]],
        proto: tuple | None = None,
        name: str = "<script>",
        script: str = "",
    ):
        self.ops = ops
        self.consts = consts
        self.caches = caches
        self.slot_names = slot_names
        self.regions = regions
        self.lines = lines
        self.proto = proto
        self.name = name
        self.script = script

    # -- debugging --------------------------------------------------------

    def line_at(self, pc: int) -> int:
        line = 0
        for p, ln in self.lines:
            if p > pc:
                break
            line = ln
        return line

    def dis(self) -> str:
        """Readable disassembly listing (opcode, arg, pool refs, lines)."""
        out = ["%s  (%d ops, %d consts, %d caches, %d slots)" % (
            self.name, len(self.ops) // 2, len(self.consts),
            len(self.caches), len(self.slot_names),
        )]
        if self.proto is not None:
            pname, params, n_params, simple = self.proto
            out.append("  proto: %s {%s}%s" % (
                pname,
                " ".join(p for p, _ in params),
                " [simple]" if simple else "",
            ))
        if self.slot_names:
            out.append("  slots: %s" % ", ".join(
                "%d=%s" % (i, n) for i, n in enumerate(self.slot_names)
            ))
        last_line = None
        ops = self.ops
        for pc in range(0, len(ops), 2):
            op, arg = ops[pc], ops[pc + 1]
            line = self.line_at(pc)
            mark = "%4s" % (line if line != last_line else "")
            last_line = line
            detail = self._detail(op, arg)
            out.append("%s %5d  %-14s %s" % (mark, pc, NAMES.get(op, "?%d" % op), detail))
        for s, t, text, line in self.regions:
            out.append("  region [%d, %d) line %d: %r" % (s, t, line, text))
        return "\n".join(out)

    def _detail(self, op: int, arg: Any) -> str:
        if op in _JUMPS:
            return "-> %d" % arg
        if op == OP_GUARD:
            c = self.caches[arg]
            return "%d (%s, fallback -> %d)" % (arg, c[0], c[5])
        if op == OP_CALL:
            c = self.caches[arg]
            return "%d (argc=%d, line %d)" % (arg, c[0], c[1])
        if op == OP_CALL_LIT:
            # cache layout: [argv, tail, line, epoch, ns, mode, payload]
            c = self.caches[arg]
            return "%d (%s, line %d)" % (arg, _trunc(" ".join(c[0])), c[2])
        if op == OP_LOAD_SLOT or op == OP_ELOAD_SLOT:
            return "%d (%s)" % (arg, self.slot_names[arg])
        if op == OP_EXEC:
            cc = self.consts[arg]
            argv = getattr(cc, "argv", None)
            what = " ".join(argv) if argv else "<dynamic>"
            return "%d (%s)" % (arg, _trunc(what))
        if op in (OP_CONCAT,):
            return "%d" % arg
        if op in (OP_POP, OP_POP_BLOCK, OP_BREAK, OP_CONTINUE,
                  OP_RETURN, OP_END, OP_COERCE, OP_TO_STR,
                  OP_ADD, OP_SUB, OP_MUL, OP_LT, OP_LE, OP_GT, OP_GE,
                  OP_EQ, OP_NE):
            return ""
        if op in (OP_CONST, OP_LOAD_NAME, OP_ELOAD_NAME, OP_SET_NAME,
                  OP_SET_SLOT, OP_INCR_NAME, OP_INCR_SLOT, OP_BIN,
                  OP_UNARY, OP_EVAL_NODE, OP_PUSH_BLOCK):
            return "%d (%s)" % (arg, _trunc(repr(self.consts[arg])))
        return "%d" % arg


def _trunc(s: str, n: int = 48) -> str:
    s = s.replace("\n", "\\n")
    return s if len(s) <= n else s[: n - 3] + "..."
