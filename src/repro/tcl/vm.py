"""The mini-Tcl bytecode VM.

Runs :class:`~repro.tcl.bytecode.Code` on an explicit frame stack: a
Tcl proc calling another Tcl proc pushes a :class:`VMFrame` inside the
same dispatch loop — no Python recursion — so deep Tcl recursion is
bounded by ``Interp.FRAME_LIMIT`` (a catchable :class:`TclError`), not
by CPython's recursion limit.

Command resolution goes through per-site inline caches validated
against the interp's ``cmd_epoch``/current-namespace, the same
invalidation protocol as the AST layer's ``CompiledCommand`` pointer
caches, so ``proc`` redefinition and ``rename`` take effect at every
call site immediately.  Caches resolve to one of four modes:

* 1 — plain command function (builtins, unparseable-body procs);
* 2 — VM-compiled proc, run as an inline frame;
* 3 — *trivial* proc whose whole body is ``return $param`` or
  ``return <literal>``: the call site pushes the result directly with
  no frame at all (the VM's generalization of the AST layer's
  tail-return trick);
* 0 — unresolved (unknown command; never cached, like the AST path).

Error decoration mirrors the AST interpreter exactly: CALL sites wrap
the callee like ``Interp._run_compiled``; inlined control constructs
carry static ``(pc-range, text, line)`` regions applied innermost-first
while unwinding; proc frames append their call-site line as they pop.
"""

from __future__ import annotations

from .bytecode import (
    OP_ADD, OP_BIN, OP_BREAK, OP_CALL, OP_CALL_LIT, OP_COERCE, OP_CONCAT,
    OP_CONST, OP_CONTINUE, OP_ELOAD_NAME, OP_ELOAD_SLOT, OP_END, OP_EQ,
    OP_EVAL_NODE, OP_EXEC, OP_GE, OP_GT, OP_GUARD, OP_INCR_NAME,
    OP_INCR_SLOT, OP_JUMP, OP_JUMP_IF_FALSE, OP_JUMP_IF_TRUE, OP_LE,
    OP_LOAD_NAME, OP_LOAD_SLOT, OP_LT, OP_MUL, OP_NE, OP_POP,
    OP_POP_BLOCK, OP_PUSH_BLOCK, OP_RETURN, OP_SET_NAME, OP_SET_SLOT,
    OP_SUB, OP_TO_STR, OP_UNARY,
)
from .errors import TclBreak, TclContinue, TclError, TclReturn
from .expr import (
    _eval_bin, coerce, eval_node, eval_unary, parse_number, to_string,
    truthy,
)
from .interp import Frame, TclProc, Var, _abbrev
from .listutil import format_list


class VMFrame(Frame):
    """One VM activation: a Tcl frame fused with its VM state.

    Subclassing :class:`Frame` lets proc activations go straight onto
    ``interp.frames`` (upvar/uplevel and AST fallbacks see a normal
    frame) without a second allocation.

    ``kind`` 0 = script root (entered via ``Interp.eval``; runs against
    the *caller's* Tcl frame — ``tclframe`` points elsewhere), 1 = proc
    root (entered from Python via :func:`call_proc`, which owns the Tcl
    frame push/pop), 2 = proc called inline from another VM frame (the
    dispatch loop owns the push/pop).
    """

    __slots__ = (
        "code", "stack", "pc", "tclframe", "prev_ns", "kind", "dec",
        "blocks", "cells", "cellsv",
    )

    def __init__(self, code, ns, label, kind, prev_ns, dec):
        self.vars = {}
        self.ns = ns
        self.label = label
        self.version = 0
        self.code = code
        self.stack = []
        self.pc = 0
        # None means "this frame is its own Tcl frame" (kinds 1 and 2).
        # Storing `self` here would make every activation a reference
        # cycle, turning each proc call into cycle-collector garbage —
        # the GC churn costs more than the whole dispatch loop.  Read
        # sites resolve with `f.tclframe or f`.
        self.tclframe = None
        self.prev_ns = prev_ns
        self.kind = kind
        self.dec = dec  # (argv, line) of the call site, for unwinding
        self.blocks = []  # (break_pc, continue_pc, stack_depth)
        self.cells = []
        self.cellsv = 0


def proc_code(interp, proc):
    """The proc's VM code for this interp; None if the body won't parse."""
    code = proc._vm_code
    if code is not None and proc._vm_code_interp is interp:
        return code or None  # False marks an unparseable body
    from .compile import compile_proc_code

    code = compile_proc_code(interp, proc)
    proc._vm_code = code if code is not None else False
    proc._vm_code_interp = interp
    return code


def _trivial(interp, proc, code):
    """Detect a body that is exactly ``return $param`` / ``return <lit>``.

    Returns ``(0, slot, n_params, proc, code)`` or
    ``(1, value, n_params, proc, code)``, or None.  Validity holds for
    the lifetime of the enclosing call cache: the body's own
    ``return``-guard depends only on ``cmd_epoch`` and the proc's
    namespace, both fixed while the cache entry is fresh.
    """
    if not proc._simple:
        return None
    ops = code.ops
    if len(ops) < 6 or ops[0] != OP_GUARD or ops[4] != OP_RETURN:
        return None
    if code.caches[ops[1]][1] != "return":
        return None
    if ops[2] == OP_LOAD_SLOT:
        if ops[3] >= len(proc.params):
            return None  # returns a non-param local: must error at runtime
        triv = (0, ops[3], len(proc.params), proc, code)
    elif ops[2] == OP_CONST:
        triv = (1, code.consts[ops[3]], len(proc.params), proc, code)
    else:
        return None
    # `return` must still be the builtin as seen from the proc's ns.
    fn_r = None
    if proc.ns.name:
        fn_r = interp.commands.get(proc.ns.name + "::return")
    if fn_r is None:
        fn_r = interp.commands.get("return")
    if getattr(fn_r, "vm_builtin", None) != "return":
        return None
    return triv


def _classify(interp, fn):
    if isinstance(fn, TclProc):
        code = proc_code(interp, fn)
        if code is not None:
            triv = _trivial(interp, fn, code)
            if triv is not None:
                return 3, triv
            return 2, (fn, code)
    return 1, fn


def _resolve(interp, c, name):
    """(Re)fill a CALL inline cache; returns the dispatch mode."""
    fn = interp.lookup_command(name)
    if fn is None:
        return 0  # unknown command: never cached, like the AST path
    mode, payload = _classify(interp, fn)
    c[2] = interp.cmd_epoch
    c[3] = interp.current_ns
    c[4] = name
    c[5] = mode
    c[6] = payload
    return mode


def _resolve_lit(interp, c):
    fn = interp.lookup_command(c[0][0])
    if fn is None:
        return 0
    mode, payload = _classify(interp, fn)
    c[3] = interp.cmd_epoch
    c[4] = interp.current_ns
    c[5] = mode
    c[6] = payload
    return mode


def _bind_slow(proc, frame, args, cells):
    """Replicate TclProc.__call__'s default/varargs binding exactly."""
    params = proc.params
    n_named = len(params)
    has_varargs = bool(params) and params[-1][0] == "args"
    if has_varargs:
        n_named -= 1
    if len(args) > n_named and not has_varargs:
        raise TclError(
            'wrong # args: should be "%s %s"'
            % (proc.name, " ".join(p for p, _ in params))
        )
    fv = frame.vars
    for i in range(n_named):
        pname, default = params[i]
        if i < len(args):
            cell = Var(args[i])
        elif default is not None:
            cell = Var(default)
        else:
            raise TclError(
                'wrong # args: should be "%s %s"'
                % (proc.name, " ".join(p for p, _ in params))
            )
        fv[pname] = cell
        cells[i] = cell
    if has_varargs:
        cell = Var(format_list(args[n_named:]))
        fv["args"] = cell
        cells[n_named] = cell


def call_proc(interp, proc, code, args):
    """Run a proc body on the VM, entered from Python (mirrors
    ``TclProc.__call__``: binding errors surface before the frame push,
    ``return -code error`` converts at the proc boundary)."""
    f = VMFrame(code, proc.ns, proc.name, 1, interp.current_ns, None)
    n_slots = len(code.slot_names)
    if proc._simple and len(args) == len(proc.params):
        cells = [Var(a) for a in args]
        f.vars = dict(zip(proc._names, cells))
        if len(cells) < n_slots:
            cells.extend([None] * (n_slots - len(cells)))
    else:
        cells = [None] * n_slots
        _bind_slow(proc, f, args, cells)
    f.cells = cells
    if len(interp.frames) >= interp.FRAME_LIMIT:
        raise TclError("too many nested evaluations (infinite loop?)")
    interp.frames.append(f)
    saved_ns = interp.current_ns
    interp.current_ns = proc.ns
    interp.vm_stats.frames += 1
    try:
        return run(interp, f)
    except TclReturn as r:
        if r.code == 1:
            raise TclError(r.value) from None
        return r.value
    finally:
        interp.frames.pop()
        interp.current_ns = saved_ns


def run_script(interp, code):
    """Run script-context code against the current Tcl frame."""
    tclframe = interp.frames[-1]
    f = VMFrame(code, tclframe.ns, "<script>", 0, None, None)
    f.tclframe = tclframe
    return run(interp, f)


def _raise_unwound(interp, frames, f, epc, e):
    """Decorate a TclError like the AST call chain would, popping any
    inline proc frames, then raise it."""
    while True:
        for s, t, text, line in f.code.regions:
            if s <= epc < t:
                e.add_info('"%s" (line %d)' % (text, line))
        if f.kind != 2:
            raise e
        interp.frames.pop()
        interp.current_ns = f.prev_ns
        argv, line = f.dec
        e.add_info('"%s" (line %d)' % (_abbrev(argv), line))
        frames.pop()
        f = frames[-1]
        epc = f.pc - 2


def run(interp, root):
    frames = [root]
    f = root
    code = f.code
    ops = code.ops
    consts = code.consts
    caches = code.caches
    stack = f.stack
    cells = f.cells
    cellsv = f.cellsv
    tclframe = f.tclframe or f
    pc = 0
    ic_hits = 0
    frames_pushed = 0
    vmstats = interp.vm_stats
    try:
        while True:
            try:
                while True:
                    op = ops[pc]
                    arg = ops[pc + 1]
                    pc += 2
                    if op == OP_LOAD_SLOT:
                        v = tclframe.version
                        if v != cellsv:
                            cells = f.cells = [None] * len(cells)
                            cellsv = f.cellsv = v
                        cell = cells[arg]
                        if cell is None:
                            name = code.slot_names[arg]
                            cell = tclframe.vars.get(name)
                            if cell is None:
                                raise TclError(
                                    'can\'t read "%s": no such variable'
                                    % name
                                )
                            cells[arg] = cell
                        stack.append(cell.value)
                    elif op == OP_CONST:
                        stack.append(consts[arg])
                    elif op == OP_CALL_LIT or op == OP_CALL:
                        c = caches[arg]
                        if op == OP_CALL_LIT:
                            # [argv, tail, line, epoch, ns, mode, payload]
                            argv = c[0]
                            tail = c[1]
                            line = c[2]
                            if (
                                c[3] == interp.cmd_epoch
                                and c[4] is interp.current_ns
                            ):
                                mode = c[5]
                                ic_hits += 1
                            else:
                                mode = _resolve_lit(interp, c)
                                vmstats.cache_misses += 1
                        else:
                            # [argc, line, epoch, ns, name, mode, payload]
                            argc = c[0]
                            argv = stack[-argc:]
                            del stack[-argc:]
                            tail = None
                            line = c[1]
                            if (
                                c[2] == interp.cmd_epoch
                                and c[3] is interp.current_ns
                                and c[4] == argv[0]
                            ):
                                mode = c[5]
                                ic_hits += 1
                            else:
                                mode = _resolve(interp, c, argv[0])
                                vmstats.cache_misses += 1
                        if mode == 3:
                            t3 = c[6]
                            if len(argv) - 1 == t3[2]:
                                stack.append(
                                    argv[t3[1] + 1] if t3[0] == 0 else t3[1]
                                )
                                continue
                            proc = t3[3]  # wrong arity: bind for the error
                            pcode = t3[4]
                            mode = 2
                        elif mode == 2:
                            proc, pcode = c[6]
                        if mode == 2:
                            args = tail if tail is not None else argv[1:]
                            try:
                                if len(interp.frames) >= interp.FRAME_LIMIT:
                                    raise TclError(
                                        "too many nested evaluations "
                                        "(infinite loop?)"
                                    )
                                nf = VMFrame(
                                    pcode, proc.ns, proc.name, 2,
                                    interp.current_ns, (argv, line),
                                )
                                n_slots = len(pcode.slot_names)
                                if (
                                    proc._simple
                                    and len(args) == len(proc.params)
                                ):
                                    newcells = [Var(a) for a in args]
                                    nf.vars = dict(
                                        zip(proc._names, newcells)
                                    )
                                    if len(newcells) < n_slots:
                                        newcells.extend(
                                            [None]
                                            * (n_slots - len(newcells))
                                        )
                                else:
                                    newcells = [None] * n_slots
                                    _bind_slow(proc, nf, args, newcells)
                                nf.cells = newcells
                            except TclError as e:
                                e.add_info(
                                    '"%s" (line %d)' % (_abbrev(argv), line)
                                )
                                raise
                            interp.frames.append(nf)
                            f.pc = pc
                            f = nf
                            interp.current_ns = proc.ns
                            frames.append(nf)
                            frames_pushed += 1
                            code = pcode
                            ops = code.ops
                            consts = code.consts
                            caches = code.caches
                            stack = nf.stack
                            cells = newcells
                            cellsv = 0
                            tclframe = nf
                            pc = 0
                        elif mode == 1:
                            fn = c[6]
                            try:
                                result = fn(
                                    interp,
                                    tail if tail is not None else argv[1:],
                                )
                            except (TclReturn, TclBreak, TclContinue):
                                raise
                            except TclError as e:
                                e.add_info(
                                    '"%s" (line %d)' % (_abbrev(argv), line)
                                )
                                raise
                            except RecursionError:
                                raise
                            except Exception as e:
                                err = TclError(
                                    "%s: %s" % (type(e).__name__, e)
                                )
                                err.add_info(
                                    '"%s" (line %d)' % (_abbrev(argv), line)
                                )
                                err.__cause__ = e
                                raise err from e
                            if result is None:
                                stack.append("")
                            elif isinstance(result, str):
                                stack.append(result)
                            else:
                                stack.append(to_string(result))
                        else:
                            ufn = interp.commands.get("unknown")
                            if ufn is None:
                                raise TclError(
                                    'invalid command name "%s"' % argv[0]
                                )
                            stack.append(
                                interp._finish_command(
                                    ufn, ["unknown"] + list(argv), line, 1
                                )
                            )
                    elif op == OP_GUARD:
                        c = caches[arg]
                        if (
                            c[2] == interp.cmd_epoch
                            and c[3] is interp.current_ns
                        ):
                            if not c[4]:
                                pc = c[5]
                        else:
                            fn = interp.lookup_command(c[0])
                            c[4] = ok = (
                                getattr(fn, "vm_builtin", None) == c[1]
                            )
                            c[2] = interp.cmd_epoch
                            c[3] = interp.current_ns
                            if not ok:
                                pc = c[5]
                    elif op == OP_RETURN or op == OP_END:
                        value = stack.pop()
                        kind = f.kind
                        if kind == 2:
                            interp.frames.pop()
                            interp.current_ns = f.prev_ns
                            frames.pop()
                            f = frames[-1]
                            code = f.code
                            ops = code.ops
                            consts = code.consts
                            caches = code.caches
                            stack = f.stack
                            cells = f.cells
                            cellsv = f.cellsv
                            tclframe = f.tclframe or f
                            pc = f.pc
                            stack.append(value)
                        elif op == OP_END or kind == 1:
                            return value
                        else:  # RETURN at script root: propagate
                            raise TclReturn(value, 0)
                    elif op == OP_SET_SLOT:
                        si, name, line = consts[arg]
                        value = stack[-1]
                        v = tclframe.version
                        if v != cellsv:
                            cells = f.cells = [None] * len(cells)
                            cellsv = f.cellsv = v
                        cell = cells[si]
                        if cell is None:
                            fv = tclframe.vars
                            cell = fv.get(name)
                            if cell is None:
                                cell = Var(value)
                                fv[name] = cell
                                cells[si] = cell
                            else:
                                cells[si] = cell
                                cell.value = value
                        else:
                            cell.value = value
                    elif op == OP_INCR_SLOT:
                        si, name, delta, line, text = consts[arg]
                        v = tclframe.version
                        if v != cellsv:
                            cells = f.cells = [None] * len(cells)
                            cellsv = f.cellsv = v
                        cell = cells[si]
                        if cell is None:
                            cell = tclframe.vars.get(name)
                            if cell is not None:
                                cells[si] = cell
                        if cell is None:
                            value = str(delta)
                            cell = Var(value)
                            tclframe.vars[name] = cell
                            cells[si] = cell
                        else:
                            cur = cell.value
                            try:
                                iv = int(cur, 10) if "_" not in cur else None
                            except ValueError:
                                iv = None
                            if iv is None:
                                pn = parse_number(cur)
                                if isinstance(pn, int):
                                    iv = pn
                                else:
                                    e = TclError(
                                        'expected integer but got "%s"'
                                        % cur
                                    )
                                    e.add_info(
                                        '"%s" (line %d)' % (text, line)
                                    )
                                    raise e
                            value = str(iv + delta)
                            cell.value = value
                        stack.append(value)
                    elif op == OP_ELOAD_SLOT:
                        v = tclframe.version
                        if v != cellsv:
                            cells = f.cells = [None] * len(cells)
                            cellsv = f.cellsv = v
                        cell = cells[arg]
                        if cell is None:
                            name = code.slot_names[arg]
                            cell = tclframe.vars.get(name)
                            if cell is None:
                                raise TclError(
                                    'can\'t read "%s": no such variable'
                                    % name
                                )
                            cells[arg] = cell
                        sv = cell.value
                        try:
                            if "_" not in sv:
                                stack.append(int(sv, 10))
                            else:
                                stack.append(coerce(sv))
                        except ValueError:
                            stack.append(coerce(sv))
                    elif OP_ADD <= op <= OP_NE:
                        b = stack.pop()
                        a = stack[-1]
                        if type(a) is int and type(b) is int:
                            if op == OP_ADD:
                                stack[-1] = a + b
                            elif op == OP_SUB:
                                stack[-1] = a - b
                            elif op == OP_MUL:
                                stack[-1] = a * b
                            elif op == OP_LT:
                                stack[-1] = 1 if a < b else 0
                            elif op == OP_LE:
                                stack[-1] = 1 if a <= b else 0
                            elif op == OP_GT:
                                stack[-1] = 1 if a > b else 0
                            elif op == OP_GE:
                                stack[-1] = 1 if a >= b else 0
                            elif op == OP_EQ:
                                stack[-1] = 1 if a == b else 0
                            else:
                                stack[-1] = 1 if a != b else 0
                        else:
                            stack[-1] = _eval_bin(_BIN_NAME[op], a, b)
                    elif op == OP_JUMP_IF_FALSE:
                        v = stack.pop()
                        if type(v) is int:
                            if not v:
                                pc = arg
                        elif not truthy(v):
                            pc = arg
                    elif op == OP_JUMP:
                        pc = arg
                    elif op == OP_POP:
                        del stack[-1]
                    elif op == OP_TO_STR:
                        v = stack[-1]
                        if type(v) is not str:
                            stack[-1] = to_string(v)
                    elif op == OP_CONCAT:
                        parts = stack[-arg:]
                        del stack[-arg:]
                        stack.append("".join(parts))
                    elif op == OP_LOAD_NAME:
                        stack.append(interp.get_var(consts[arg]))
                    elif op == OP_ELOAD_NAME:
                        stack.append(coerce(interp.get_var(consts[arg])))
                    elif op == OP_SET_NAME:
                        name, line = consts[arg]
                        value = stack[-1]
                        try:
                            interp.set_var(name, value)
                        except TclError as e:
                            e.add_info(
                                '"%s" (line %d)'
                                % (_abbrev(["set", name, value]), line)
                            )
                            raise
                    elif op == OP_INCR_NAME:
                        name, delta, line, text = consts[arg]
                        try:
                            if interp.var_exists(name):
                                cur = interp.get_var(name)
                                cur_n = parse_number(cur)
                                if not isinstance(cur_n, int):
                                    raise TclError(
                                        'expected integer but got "%s"'
                                        % cur
                                    )
                            else:
                                cur_n = 0
                            value = interp.set_var(name, str(cur_n + delta))
                        except TclError as e:
                            e.add_info('"%s" (line %d)' % (text, line))
                            raise
                        stack.append(value)
                    elif op == OP_EXEC:
                        stack.append(interp._run_compiled(consts[arg]))
                    elif op == OP_PUSH_BLOCK:
                        b = consts[arg]
                        f.blocks.append((b[0], b[1], len(stack)))
                    elif op == OP_POP_BLOCK:
                        f.blocks.pop()
                    elif op == OP_JUMP_IF_TRUE:
                        v = stack.pop()
                        if type(v) is int:
                            if v:
                                pc = arg
                        elif truthy(v):
                            pc = arg
                    elif op == OP_BIN:
                        b = stack.pop()
                        stack[-1] = _eval_bin(consts[arg], stack[-1], b)
                    elif op == OP_UNARY:
                        stack[-1] = eval_unary(consts[arg], stack[-1])
                    elif op == OP_EVAL_NODE:
                        stack.append(eval_node(interp, consts[arg]))
                    elif op == OP_COERCE:
                        stack[-1] = coerce(stack[-1])
                    elif op == OP_BREAK:
                        raise TclBreak()
                    elif op == OP_CONTINUE:
                        raise TclContinue()
                    else:
                        raise TclError("bad opcode %d" % op)
            except TclError as e:
                f.pc = pc
                _raise_unwound(interp, frames, f, pc - 2, e)
            except TclReturn as r:
                if f.kind != 2:
                    raise
                interp.frames.pop()
                interp.current_ns = f.prev_ns
                argv, line = f.dec
                frames.pop()
                f = frames[-1]
                if r.code == 1:
                    e = TclError(r.value)
                    e.add_info('"%s" (line %d)' % (_abbrev(argv), line))
                    _raise_unwound(interp, frames, f, f.pc - 2, e)
                code = f.code
                ops = code.ops
                consts = code.consts
                caches = code.caches
                stack = f.stack
                cells = f.cells
                cellsv = f.cellsv
                tclframe = f.tclframe or f
                pc = f.pc
                stack.append(r.value)
            except (TclBreak, TclContinue) as exc:
                is_break = isinstance(exc, TclBreak)
                while not f.blocks:
                    if f.kind != 2:
                        raise
                    interp.frames.pop()
                    interp.current_ns = f.prev_ns
                    frames.pop()
                    f = frames[-1]
                bpc, cpc, depth = f.blocks[-1]
                code = f.code
                ops = code.ops
                consts = code.consts
                caches = code.caches
                stack = f.stack
                cells = f.cells
                cellsv = f.cellsv
                tclframe = f.tclframe or f
                del stack[depth:]
                pc = bpc if is_break else cpc
    except BaseException:
        # Error unwinding pops frames itself; this covers the re-raise
        # path plus RecursionError/KeyboardInterrupt, restoring the
        # interp's Tcl frame stack to this run's entry state.
        while len(frames) > 1:
            fx = frames.pop()
            if fx.kind == 2:
                interp.frames.pop()
                interp.current_ns = fx.prev_ns
        raise
    finally:
        if ic_hits:
            vmstats.cache_hits += ic_hits
        if frames_pushed:
            vmstats.frames += frames_pushed


_BIN_NAME = {
    OP_ADD: "+", OP_SUB: "-", OP_MUL: "*",
    OP_LT: "<", OP_LE: "<=", OP_GT: ">", OP_GE: ">=",
    OP_EQ: "==", OP_NE: "!=",
}
