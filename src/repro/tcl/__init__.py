"""A mini-Tcl interpreter in pure Python.

This is the compile target of the Swift/T compiler (STC) in the
reproduced system, exactly as real STC targets real Tcl: generated
Turbine code, user Tcl snippets embedded in Swift, and SWIG-generated
bindings all execute here.

Public surface:

* :class:`Interp` — an interpreter instance (one per runtime rank).
* :func:`parse_list` / :func:`format_list` — Tcl list round-trip.
* :class:`TclError` and friends — return-code exceptions.
"""

from .errors import TclBreak, TclContinue, TclError, TclReturn
from .interp import Interp, TclProc
from .listutil import format_element, format_list, parse_list

__all__ = [
    "Interp",
    "TclProc",
    "TclError",
    "TclReturn",
    "TclBreak",
    "TclContinue",
    "parse_list",
    "format_list",
    "format_element",
]
