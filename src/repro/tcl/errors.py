"""Tcl return codes and exceptions.

Tcl evaluation produces one of five return codes: OK, ERROR, RETURN,
BREAK, CONTINUE.  We model the non-OK codes as Python exceptions so that
ordinary Python control flow propagates them through nested ``eval``
calls, exactly as the C core propagates its integer codes up the stack.
"""

from __future__ import annotations


class TclError(Exception):
    """A Tcl-level error (return code TCL_ERROR).

    Carries an ``errorinfo`` trace that accumulates one line per
    enclosing command, mirroring Tcl's ``::errorInfo``.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message
        self.errorinfo: list[str] = []

    def add_info(self, line: str) -> None:
        if len(self.errorinfo) < 40:  # bound trace growth in deep recursion
            self.errorinfo.append(line)

    def trace(self) -> str:
        return self.message + "".join(
            "\n    while executing " + line for line in self.errorinfo
        )


class TclReturn(Exception):
    """``return`` was invoked (return code TCL_RETURN)."""

    def __init__(self, value: str = "", code: int = 0):
        super().__init__(value)
        self.value = value
        # ``return -code`` support: 0=ok, 1=error, 2=return, 3=break, 4=continue
        self.code = code


class TclBreak(Exception):
    """``break`` was invoked (return code TCL_BREAK)."""


class TclContinue(Exception):
    """``continue`` was invoked (return code TCL_CONTINUE)."""
