"""Miscellaneous commands: puts, namespace, info, package, clock, source."""

from __future__ import annotations

import time as _time

from ..errors import TclError
from ..listutil import format_list


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def cmd_puts(interp, args):
    newline = True
    rest = list(args)
    if rest and rest[0] == "-nonewline":
        newline = False
        rest = rest[1:]
    if rest and rest[0] in ("stdout", "stderr"):
        rest = rest[1:]
    if len(rest) != 1:
        raise _wrong_args("puts ?-nonewline? ?channelId? string")
    interp.puts(rest[0] if newline else rest[0])
    return ""


def cmd_namespace(interp, args):
    if not args:
        raise _wrong_args("namespace subcommand ?arg ...?")
    sub = args[0]
    if sub == "eval":
        if len(args) < 3:
            raise _wrong_args("namespace eval name script")
        name = args[1].lstrip(":")
        if interp.current_ns.name and not args[1].startswith("::"):
            name = interp.current_ns.name + "::" + name
        ns = interp.namespace(name, create=True)
        script = args[2] if len(args) == 3 else " ".join(args[2:])
        saved = interp.current_ns
        interp.current_ns = ns
        try:
            return interp.eval(script)
        finally:
            interp.current_ns = saved
    if sub == "current":
        return "::" + interp.current_ns.name
    if sub == "exists":
        return "1" if args[1].lstrip(":") in interp.namespaces else "0"
    if sub == "qualifiers":
        name = args[1]
        if "::" in name.lstrip(":"):
            return name.lstrip(":").rsplit("::", 1)[0]
        return ""
    if sub == "tail":
        name = args[1].lstrip(":")
        return name.rsplit("::", 1)[-1]
    if sub == "export" or sub == "import":
        return ""  # accepted for compatibility; lookup is already global
    raise TclError('unknown or unsupported namespace subcommand "%s"' % sub)


def cmd_info(interp, args):
    if not args:
        raise _wrong_args("info subcommand ?arg ...?")
    sub = args[0]
    if sub == "exists":
        return "1" if interp.var_exists(args[1]) else "0"
    if sub == "commands":
        names = sorted(interp.commands.keys())
        if len(args) > 1:
            import fnmatch

            names = [n for n in names if fnmatch.fnmatchcase(n, args[1])]
        return format_list(names)
    if sub == "procs":
        from ..interp import TclProc

        names = sorted(
            n for n, f in interp.commands.items() if isinstance(f, TclProc)
        )
        if len(args) > 1:
            import fnmatch

            names = [n for n in names if fnmatch.fnmatchcase(n, args[1])]
        return format_list(names)
    if sub == "level":
        return str(len(interp.frames) - 1)
    if sub == "args":
        from ..interp import TclProc

        fn = interp.lookup_command(args[1])
        if not isinstance(fn, TclProc):
            raise TclError('"%s" isn\'t a procedure' % args[1])
        return format_list([p for p, _ in fn.params])
    if sub == "body":
        from ..interp import TclProc

        fn = interp.lookup_command(args[1])
        if not isinstance(fn, TclProc):
            raise TclError('"%s" isn\'t a procedure' % args[1])
        return fn.body
    if sub == "vars" or sub == "locals":
        return format_list(sorted(interp.frames[-1].vars.keys()))
    if sub == "globals":
        return format_list(sorted(interp.global_ns.vars.keys()))
    raise TclError('unknown or unsupported info subcommand "%s"' % sub)


def cmd_package(interp, args):
    if not args:
        raise _wrong_args("package subcommand ?arg ...?")
    sub = args[0]
    if sub == "provide":
        if len(args) not in (2, 3):
            raise _wrong_args("package provide name ?version?")
        name = args[1]
        version = args[2] if len(args) == 3 else "1.0"
        interp.packages_provided[name] = version
        return version
    if sub == "require":
        rest = [a for a in args[1:] if a != "-exact"]
        if not rest:
            raise _wrong_args("package require name ?version?")
        name = rest[0]
        if name in interp.packages_provided:
            return interp.packages_provided[name]
        loader = interp.package_loaders.get(name)
        if loader is None:
            raise TclError('can\'t find package %s' % name)
        version, fn = loader
        fn(interp)
        interp.packages_provided.setdefault(name, version)
        return interp.packages_provided[name]
    if sub == "ifneeded":
        if len(args) != 4:
            raise _wrong_args("package ifneeded name version script")
        name, version, script = args[1], args[2], args[3]
        interp.package_loaders[name] = (
            version,
            lambda it, s=script: it.eval(s),
        )
        return ""
    if sub == "names":
        names = sorted(
            set(interp.packages_provided) | set(interp.package_loaders)
        )
        return format_list(names)
    if sub == "present":
        name = args[1]
        if name not in interp.packages_provided:
            raise TclError("package %s is not present" % name)
        return interp.packages_provided[name]
    raise TclError('unknown or unsupported package subcommand "%s"' % sub)


def cmd_clock(interp, args):
    if not args:
        raise _wrong_args("clock subcommand")
    sub = args[0]
    if sub == "seconds":
        return str(int(_time.time()))
    if sub == "milliseconds":
        return str(int(_time.time() * 1000))
    if sub == "microseconds":
        return str(int(_time.time() * 1_000_000))
    if sub == "clicks":
        return str(_time.perf_counter_ns())
    raise TclError('unknown or unsupported clock subcommand "%s"' % sub)


def cmd_source(interp, args):
    """Load a script through the interp's source resolver (packaging)."""
    if len(args) != 1:
        raise _wrong_args("source fileName")
    resolver = getattr(interp, "source_resolver", None)
    if resolver is None:
        try:
            with open(args[0], "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            raise TclError('couldn\'t read file "%s": %s' % (args[0], e)) from None
    else:
        text = resolver(args[0])
    return interp.eval(text)


def cmd_unknown(interp, args):
    raise TclError('invalid command name "%s"' % (args[0] if args else ""))


def register(interp) -> None:
    interp.register("puts", cmd_puts)
    interp.register("namespace", cmd_namespace)
    interp.register("info", cmd_info)
    interp.register("package", cmd_package)
    interp.register("clock", cmd_clock)
    interp.register("source", cmd_source)
