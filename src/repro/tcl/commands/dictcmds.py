"""The ``dict`` ensemble.

Tcl dicts are even-length lists with unique keys; we parse/format on
each operation, preserving insertion order like real Tcl.
"""

from __future__ import annotations

from ..errors import TclBreak, TclContinue, TclError
from ..listutil import format_list, parse_list


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def parse_dict(s: str) -> dict[str, str]:
    items = parse_list(s)
    if len(items) % 2:
        raise TclError("missing value to go with key")
    d: dict[str, str] = {}
    for i in range(0, len(items), 2):
        d[items[i]] = items[i + 1]
    return d


def format_dict(d: dict[str, str]) -> str:
    flat: list[str] = []
    for k, v in d.items():
        flat.append(k)
        flat.append(v)
    return format_list(flat)


def _get_nested(d: dict[str, str], keys: list[str]) -> str:
    cur: str | dict = d
    for k in keys:
        if isinstance(cur, str):
            cur = parse_dict(cur)
        if k not in cur:
            raise TclError('key "%s" not known in dictionary' % k)
        cur = cur[k]
    return cur if isinstance(cur, str) else format_dict(cur)


def _set_nested(text: str, keys: list[str], value: str) -> str:
    d = parse_dict(text)
    if len(keys) == 1:
        d[keys[0]] = value
    else:
        inner = d.get(keys[0], "")
        d[keys[0]] = _set_nested(inner, keys[1:], value)
    return format_dict(d)


def cmd_dict(interp, args):
    if not args:
        raise _wrong_args("dict subcommand ?arg ...?")
    sub = args[0]
    rest = args[1:]
    if sub == "create":
        if len(rest) % 2:
            raise TclError("wrong # args: should be \"dict create ?key value ...?\"")
        d: dict[str, str] = {}
        for i in range(0, len(rest), 2):
            d[rest[i]] = rest[i + 1]
        return format_dict(d)
    if sub == "get":
        if not rest:
            raise _wrong_args("dict get dictionary ?key ...?")
        if len(rest) == 1:
            return rest[0]
        return _get_nested(parse_dict(rest[0]), list(rest[1:]))
    if sub == "set":
        if len(rest) < 3:
            raise _wrong_args("dict set dictVarName key ?key ...? value")
        name = rest[0]
        keys = list(rest[1:-1])
        value = rest[-1]
        cur = interp.get_var(name) if interp.var_exists(name) else ""
        return interp.set_var(name, _set_nested(cur, keys, value))
    if sub == "unset":
        if len(rest) < 2:
            raise _wrong_args("dict unset dictVarName key")
        name = rest[0]
        cur = parse_dict(interp.get_var(name) if interp.var_exists(name) else "")
        cur.pop(rest[1], None)
        return interp.set_var(name, format_dict(cur))
    if sub == "exists":
        if len(rest) < 2:
            raise _wrong_args("dict exists dictionary key ?key ...?")
        try:
            _get_nested(parse_dict(rest[0]), list(rest[1:]))
            return "1"
        except TclError:
            return "0"
    if sub == "keys":
        d = parse_dict(rest[0])
        if len(rest) > 1:
            import fnmatch

            return format_list(
                [k for k in d if fnmatch.fnmatchcase(k, rest[1])]
            )
        return format_list(list(d.keys()))
    if sub == "values":
        return format_list(list(parse_dict(rest[0]).values()))
    if sub == "size":
        return str(len(parse_dict(rest[0])))
    if sub == "merge":
        d = {}
        for text in rest:
            d.update(parse_dict(text))
        return format_dict(d)
    if sub == "append":
        name = rest[0]
        cur = parse_dict(interp.get_var(name) if interp.var_exists(name) else "")
        cur[rest[1]] = cur.get(rest[1], "") + "".join(rest[2:])
        return interp.set_var(name, format_dict(cur))
    if sub == "lappend":
        from ..listutil import format_element

        name = rest[0]
        cur = parse_dict(interp.get_var(name) if interp.var_exists(name) else "")
        existing = cur.get(rest[1], "")
        parts = [existing] if existing else []
        parts.extend(format_element(v) for v in rest[2:])
        cur[rest[1]] = " ".join(parts)
        return interp.set_var(name, format_dict(cur))
    if sub == "incr":
        name = rest[0]
        cur = parse_dict(interp.get_var(name) if interp.var_exists(name) else "")
        delta = int(rest[2]) if len(rest) > 2 else 1
        cur[rest[1]] = str(int(cur.get(rest[1], "0")) + delta)
        return interp.set_var(name, format_dict(cur))
    if sub == "for":
        if len(rest) != 3:
            raise _wrong_args("dict for {keyVar valueVar} dictionary body")
        names = parse_list(rest[0])
        if len(names) != 2:
            raise TclError("must have exactly two variable names")
        d = parse_dict(rest[1])
        for k, v in d.items():
            interp.set_var(names[0], k)
            interp.set_var(names[1], v)
            try:
                interp.eval(rest[2])
            except TclBreak:
                break
            except TclContinue:
                continue
        return ""
    if sub == "with":
        # dict with dictVar body: expose keys as variables, write back after
        if len(rest) != 2:
            raise _wrong_args("dict with dictVarName body")
        name = rest[0]
        d = parse_dict(interp.get_var(name))
        for k, v in d.items():
            interp.set_var(k, v)
        try:
            interp.eval(rest[1])
        finally:
            for k in d:
                if interp.var_exists(k):
                    d[k] = interp.get_var(k)
            interp.set_var(name, format_dict(d))
        return ""
    raise TclError('unknown or unsupported dict subcommand "%s"' % sub)


def register(interp) -> None:
    interp.register("dict", cmd_dict)
