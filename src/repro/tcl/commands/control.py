"""Control-flow commands: if, while, for, foreach, switch, proc, eval,
catch, error, expr, return/break/continue, rename."""

from __future__ import annotations

import time as _time

from ..errors import TclBreak, TclContinue, TclError, TclReturn
from ..expr import compile_expr, eval_expr, eval_node, to_string, truthy
from ..interp import TclProc
from ..listutil import format_list, parse_list


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def cmd_expr(interp, args):
    if not args:
        raise _wrong_args("expr arg ?arg ...?")
    text = args[0] if len(args) == 1 else " ".join(args)
    return to_string(eval_expr(interp, text))


# Marks the builtin for call-site specialization: a compiled
# `expr {literal}` command whose resolved fn carries this flag
# evaluates a precompiled AST directly (see Interp._run_compiled).
cmd_expr.expr_builtin = True  # type: ignore[attr-defined]
# vm_builtin tags let the bytecode compiler inline a construct; the
# VM's GUARD op re-checks the tag under cmd_epoch so redefining the
# command (e.g. a test stubbing `if`) reroutes to the generic path.
cmd_expr.vm_builtin = "expr"  # type: ignore[attr-defined]


def cmd_if(interp, args):
    i = 0
    n = len(args)
    while i < n:
        cond = args[i]
        i += 1
        if i < n and args[i] == "then":
            i += 1
        if i >= n:
            raise _wrong_args("if cond ?then? body ?elseif ...? ?else body?")
        body = args[i]
        i += 1
        if truthy(eval_expr(interp, cond)):
            return interp.eval(body)
        if i < n and args[i] == "elseif":
            i += 1
            continue
        if i < n and args[i] == "else":
            i += 1
            if i >= n:
                raise _wrong_args("if ... else body")
            return interp.eval(args[i])
        if i < n:
            # bare trailing body acts as else
            return interp.eval(args[i])
        return ""
    return ""


cmd_if.vm_builtin = "if"  # type: ignore[attr-defined]


def cmd_while(interp, args):
    if len(args) != 2:
        raise _wrong_args("while test command")
    cond, body = args
    if not interp.compile_enabled:
        while truthy(eval_expr(interp, cond)):
            try:
                interp.eval(body)
            except TclBreak:
                break
            except TclContinue:
                continue
        return ""
    # Compile the condition AST and body once; iterations re-run the
    # compiled forms with no per-iteration cache lookups.
    cnode = compile_expr(cond)
    code = interp.compiled(body)
    while truthy(eval_node(interp, cnode)):
        try:
            interp.eval_compiled(code)
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


cmd_while.vm_builtin = "while"  # type: ignore[attr-defined]


def cmd_for(interp, args):
    if len(args) != 4:
        raise _wrong_args("for start test next command")
    start, test, nxt, body = args
    interp.eval(start)
    if not interp.compile_enabled:
        while truthy(eval_expr(interp, test)):
            try:
                interp.eval(body)
            except TclBreak:
                break
            except TclContinue:
                pass
            interp.eval(nxt)
        return ""
    tnode = compile_expr(test)
    body_code = interp.compiled(body)
    next_code = interp.compiled(nxt)
    while truthy(eval_node(interp, tnode)):
        try:
            interp.eval_compiled(body_code)
        except TclBreak:
            break
        except TclContinue:
            pass
        interp.eval_compiled(next_code)
    return ""


cmd_for.vm_builtin = "for"  # type: ignore[attr-defined]


def cmd_foreach(interp, args):
    if len(args) < 3 or len(args) % 2 == 0:
        raise _wrong_args("foreach varList list ?varList list ...? command")
    body = args[-1]
    pairs = []
    for i in range(0, len(args) - 1, 2):
        var_names = parse_list(args[i])
        values = parse_list(args[i + 1])
        if not var_names:
            raise TclError("foreach varlist is empty")
        pairs.append((var_names, values))
    n_iters = 0
    for var_names, values in pairs:
        per = (len(values) + len(var_names) - 1) // len(var_names)
        n_iters = max(n_iters, per)
    code = interp.compiled(body) if interp.compile_enabled else None
    for it in range(n_iters):
        for var_names, values in pairs:
            base = it * len(var_names)
            for k, vn in enumerate(var_names):
                idx = base + k
                interp.set_var(vn, values[idx] if idx < len(values) else "")
        try:
            if code is not None:
                interp.eval_compiled(code)
            else:
                interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def cmd_switch(interp, args):
    exact = True
    use_glob = False
    i = 0
    while i < len(args) and args[i].startswith("-"):
        if args[i] == "-exact":
            exact, use_glob = True, False
        elif args[i] == "-glob":
            exact, use_glob = False, True
        elif args[i] == "--":
            i += 1
            break
        else:
            raise TclError('bad option "%s" to switch' % args[i])
        i += 1
    if i >= len(args):
        raise _wrong_args("switch ?options? string pattern body ...")
    subject = args[i]
    i += 1
    if len(args) - i == 1:
        items = parse_list(args[i])
    else:
        items = list(args[i:])
    if len(items) % 2 != 0:
        raise TclError("extra switch pattern with no body")
    matched_body = None
    for j in range(0, len(items), 2):
        pat, body = items[j], items[j + 1]
        ok = False
        if pat == "default" and j == len(items) - 2:
            ok = True
        elif use_glob:
            import fnmatch

            ok = fnmatch.fnmatchcase(subject, pat)
        else:
            ok = subject == pat
        if ok:
            # fall-through bodies: "-" chains to the next body
            k = j
            while items[k + 1] == "-":
                k += 2
                if k >= len(items):
                    raise TclError('no body specified for pattern "%s"' % pat)
            matched_body = items[k + 1]
            break
    if matched_body is None:
        return ""
    return interp.eval(matched_body)


def cmd_proc(interp, args):
    if len(args) != 3:
        raise _wrong_args("proc name args body")
    name, params_text, body = args
    params: list[tuple[str, str | None]] = []
    for p in parse_list(params_text):
        parts = parse_list(p)
        if len(parts) == 1:
            params.append((parts[0], None))
        elif len(parts) == 2:
            params.append((parts[0], parts[1]))
        else:
            raise TclError(
                'too many fields in argument specifier "%s"' % p
            )
    if name.startswith("::"):
        qname = name.lstrip(":")
    elif interp.current_ns.name:
        qname = interp.current_ns.name + "::" + name
    else:
        qname = name
    ns = interp.current_ns
    if "::" in qname:
        ns = interp.namespace(qname.rsplit("::", 1)[0], create=True)
    proc = TclProc(qname, params, body, ns)
    interp.register(qname, proc)
    return ""


def cmd_rename(interp, args):
    if len(args) != 2:
        raise _wrong_args("rename oldName newName")
    old, new = args
    fn = interp.lookup_command(old)
    if fn is None:
        raise TclError(
            'can\'t rename "%s": command doesn\'t exist' % old
        )
    interp.unregister(old)
    if new:
        interp.register(new, fn)
    return ""


def cmd_eval(interp, args):
    if not args:
        raise _wrong_args("eval arg ?arg ...?")
    script = args[0] if len(args) == 1 else " ".join(args)
    return interp.eval(script)


def cmd_catch(interp, args):
    if len(args) not in (1, 2):
        raise _wrong_args("catch script ?varName?")
    code = 0
    result = ""
    try:
        result = interp.eval(args[0])
    except TclError as e:
        code, result = 1, e.message
    except TclReturn as r:
        code, result = 2, r.value
    except TclBreak:
        code = 3
    except TclContinue:
        code = 4
    if len(args) == 2:
        interp.set_var(args[1], result)
    return str(code)


def cmd_error(interp, args):
    if not args:
        raise _wrong_args("error message ?info? ?code?")
    raise TclError(args[0])


def cmd_return(interp, args):
    code = 0
    i = 0
    while i + 1 < len(args) and args[i].startswith("-"):
        if args[i] == "-code":
            codes = {"ok": 0, "error": 1, "return": 2, "break": 3, "continue": 4}
            c = args[i + 1]
            code = codes.get(c)
            if code is None:
                try:
                    code = int(c)
                except ValueError:
                    raise TclError('bad completion code "%s"' % c) from None
            i += 2
        else:
            break
    value = args[i] if i < len(args) else ""
    raise TclReturn(value, code)


# Marks the builtin for the proc tail-return fast path (TclProc):
# bodies ending in `return ?value?` skip the TclReturn exception only
# while `return` still resolves to this function.
cmd_return.return_builtin = True  # type: ignore[attr-defined]
cmd_return.vm_builtin = "return"  # type: ignore[attr-defined]


def cmd_break(interp, args):
    raise TclBreak()


cmd_break.vm_builtin = "break"  # type: ignore[attr-defined]


def cmd_continue(interp, args):
    raise TclContinue()


cmd_continue.vm_builtin = "continue"  # type: ignore[attr-defined]


def cmd_time(interp, args):
    if len(args) not in (1, 2):
        raise _wrong_args("time command ?count?")
    count = int(args[1]) if len(args) == 2 else 1
    t0 = _time.perf_counter()
    for _ in range(count):
        interp.eval(args[0])
    dt = (_time.perf_counter() - t0) / max(count, 1)
    return "%d microseconds per iteration" % round(dt * 1e6)


def cmd_apply(interp, args):
    if not args:
        raise _wrong_args("apply lambdaExpr ?arg ...?")
    spec = parse_list(args[0])
    if len(spec) not in (2, 3):
        raise TclError('can\'t interpret "%s" as a lambda expression' % args[0])
    params_text, body = spec[0], spec[1]
    params: list[tuple[str, str | None]] = []
    for p in parse_list(params_text):
        parts = parse_list(p)
        params.append((parts[0], parts[1] if len(parts) > 1 else None))
    proc = TclProc("apply", params, body, interp.current_ns)
    return proc(interp, list(args[1:]))


def cmd_subst(interp, args):
    """subst ?-nobackslashes? ?-nocommands? ?-novariables? string.

    Implemented by re-parsing the string as a quoted word.
    """
    if not args:
        raise _wrong_args("subst ?options? string")
    text = args[-1]
    # Leverage the parser: wrap in quotes is unsafe; do manual substitution.
    from ..parser import _parse_segments

    segs, _ = _parse_segments(text, 0, "", False)
    out = []
    for kind, val in segs:
        if kind == "lit":
            out.append(val)
        elif kind == "var":
            out.append(interp.get_var(val))
        else:
            out.append(interp.eval(val))
    return "".join(out)


def register(interp) -> None:
    interp.register("expr", cmd_expr)
    interp.register("if", cmd_if)
    interp.register("while", cmd_while)
    interp.register("for", cmd_for)
    interp.register("foreach", cmd_foreach)
    interp.register("switch", cmd_switch)
    interp.register("proc", cmd_proc)
    interp.register("rename", cmd_rename)
    interp.register("eval", cmd_eval)
    interp.register("catch", cmd_catch)
    interp.register("error", cmd_error)
    interp.register("return", cmd_return)
    interp.register("break", cmd_break)
    interp.register("continue", cmd_continue)
    interp.register("time", cmd_time)
    interp.register("apply", cmd_apply)
    interp.register("subst", cmd_subst)
