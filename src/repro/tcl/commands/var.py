"""Variable commands: set, unset, incr, append, global, variable, upvar,
uplevel, lassign-style linking helpers."""

from __future__ import annotations

from ..errors import TclError
from ..expr import parse_number


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def cmd_set(interp, args):
    if len(args) == 1:
        return interp.get_var(args[0])
    if len(args) == 2:
        return interp.set_var(args[0], args[1])
    raise _wrong_args("set varName ?newValue?")


# vm_builtin: the bytecode compiler inlines this construct behind an
# epoch-checked GUARD (see repro.tcl.compile / repro.tcl.vm).
cmd_set.vm_builtin = "set"  # type: ignore[attr-defined]


def cmd_unset(interp, args):
    i = 0
    nocomplain = False
    if args and args[0] == "-nocomplain":
        nocomplain = True
        i = 1
    for name in args[i:]:
        try:
            interp.unset_var(name)
        except TclError:
            if not nocomplain:
                raise
    return ""


def cmd_incr(interp, args):
    if len(args) not in (1, 2):
        raise _wrong_args("incr varName ?increment?")
    name = args[0]
    delta = 1
    if len(args) == 2:
        d = parse_number(args[1])
        if not isinstance(d, int):
            raise TclError('expected integer but got "%s"' % args[1])
        delta = d
    if interp.var_exists(name):
        cur = parse_number(interp.get_var(name))
        if not isinstance(cur, int):
            raise TclError(
                'expected integer but got "%s"' % interp.get_var(name)
            )
    else:
        cur = 0
    return interp.set_var(name, str(cur + delta))


cmd_incr.vm_builtin = "incr"  # type: ignore[attr-defined]


def cmd_append(interp, args):
    if not args:
        raise _wrong_args("append varName ?value value ...?")
    name = args[0]
    cur = interp.get_var(name) if interp.var_exists(name) else ""
    return interp.set_var(name, cur + "".join(args[1:]))


def cmd_global(interp, args):
    gframe = interp.frames[0]
    for name in args:
        interp.link_var(name, gframe, name)
    return ""


def cmd_variable(interp, args):
    """Declare namespace variables in the current namespace."""
    ns = interp.current_ns
    i = 0
    while i < len(args):
        name = args[i]
        interp.link_ns_var(name, ns, name)
        if i + 1 < len(args):
            interp.set_var(name, args[i + 1])
            i += 2
        else:
            i += 1
    return ""


def _parse_level(interp, spec: str, default_up: int = 1):
    """Resolve an uplevel/upvar level spec to a frame."""
    frames = interp.frames
    if spec.startswith("#"):
        idx = int(spec[1:])
        if idx < 0 or idx >= len(frames):
            raise TclError('bad level "%s"' % spec)
        return frames[idx]
    n = parse_number(spec) if spec else default_up
    if not isinstance(n, int) or n < 0:
        raise TclError('bad level "%s"' % spec)
    idx = len(frames) - 1 - n
    if idx < 0:
        raise TclError('bad level "%s"' % spec)
    return frames[idx]


def cmd_upvar(interp, args):
    if not args:
        raise _wrong_args("upvar ?level? otherVar localVar ?otherVar localVar ...?")
    rest = args
    if len(args) % 2 == 1:
        frame = _parse_level(interp, args[0])
        rest = args[1:]
    else:
        frame = _parse_level(interp, "1")
    for i in range(0, len(rest), 2):
        interp.link_var(rest[i + 1], frame, rest[i])
    return ""


def cmd_uplevel(interp, args):
    if not args:
        raise _wrong_args("uplevel ?level? command ?arg ...?")
    rest = args
    first = args[0]
    if first.startswith("#") or isinstance(parse_number(first), int):
        frame = _parse_level(interp, first)
        rest = args[1:]
    else:
        frame = _parse_level(interp, "1")
    if not rest:
        raise _wrong_args("uplevel ?level? command ?arg ...?")
    script = rest[0] if len(rest) == 1 else " ".join(rest)
    # Temporarily run with the target frame on top.
    saved = interp.frames
    idx = saved.index(frame)
    interp.frames = saved[: idx + 1]
    try:
        return interp.eval(script)
    finally:
        interp.frames = saved


def register(interp) -> None:
    interp.register("set", cmd_set)
    interp.register("unset", cmd_unset)
    interp.register("incr", cmd_incr)
    interp.register("append", cmd_append)
    interp.register("global", cmd_global)
    interp.register("variable", cmd_variable)
    interp.register("upvar", cmd_upvar)
    interp.register("uplevel", cmd_uplevel)
