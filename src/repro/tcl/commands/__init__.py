"""Builtin Tcl command registration."""

from __future__ import annotations


def register_all(interp) -> None:
    from . import control, dictcmds, listcmds, misc, stringcmds, var

    var.register(interp)
    control.register(interp)
    listcmds.register(interp)
    stringcmds.register(interp)
    dictcmds.register(interp)
    misc.register(interp)
