"""String commands: string, format, split, join, regexp, regsub."""

from __future__ import annotations

import fnmatch
import re

from ..errors import TclError
from ..expr import parse_number, to_string
from ..listutil import format_list, parse_list


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def _index(spec: str, length: int) -> int:
    from .listcmds import _index as li

    return li(spec, length)


def cmd_string(interp, args):
    if len(args) < 2:
        raise _wrong_args("string subcommand ?arg ...?")
    sub = args[0]
    rest = args[1:]
    if sub == "length":
        return str(len(rest[0]))
    if sub == "index":
        s = rest[0]
        i = _index(rest[1], len(s))
        return s[i] if 0 <= i < len(s) else ""
    if sub == "range":
        s = rest[0]
        first = max(_index(rest[1], len(s)), 0)
        last = min(_index(rest[2], len(s)), len(s) - 1)
        return s[first : last + 1] if first <= last else ""
    if sub == "toupper":
        return rest[0].upper()
    if sub == "tolower":
        return rest[0].lower()
    if sub == "totitle":
        return rest[0].capitalize()
    if sub == "trim":
        chars = rest[1] if len(rest) > 1 else None
        return rest[0].strip(chars)
    if sub == "trimleft":
        chars = rest[1] if len(rest) > 1 else None
        return rest[0].lstrip(chars)
    if sub == "trimright":
        chars = rest[1] if len(rest) > 1 else None
        return rest[0].rstrip(chars)
    if sub == "equal":
        nocase = False
        i = 0
        while rest[i].startswith("-"):
            if rest[i] == "-nocase":
                nocase = True
            i += 1
        a, b = rest[i], rest[i + 1]
        if nocase:
            a, b = a.lower(), b.lower()
        return "1" if a == b else "0"
    if sub == "compare":
        a, b = rest[0], rest[1]
        return "-1" if a < b else ("1" if a > b else "0")
    if sub == "match":
        nocase = False
        i = 0
        while rest[i].startswith("-") and rest[i] != "-":
            if rest[i] == "-nocase":
                nocase = True
            i += 1
        pat, s = rest[i], rest[i + 1]
        if nocase:
            pat, s = pat.lower(), s.lower()
        return "1" if fnmatch.fnmatchcase(s, pat) else "0"
    if sub == "first":
        needle, hay = rest[0], rest[1]
        start = _index(rest[2], len(hay)) if len(rest) > 2 else 0
        return str(hay.find(needle, max(start, 0)))
    if sub == "last":
        needle, hay = rest[0], rest[1]
        return str(hay.rfind(needle))
    if sub == "repeat":
        return rest[0] * int(rest[1])
    if sub == "reverse":
        return rest[0][::-1]
    if sub == "replace":
        s = rest[0]
        first = max(_index(rest[1], len(s)), 0)
        last = min(_index(rest[2], len(s)), len(s) - 1)
        repl = rest[3] if len(rest) > 3 else ""
        if first > last:
            return s
        return s[:first] + repl + s[last + 1 :]
    if sub == "map":
        mapping = parse_list(rest[0])
        s = rest[1]
        if len(mapping) % 2:
            raise TclError("char map list unbalanced")
        out = []
        i = 0
        while i < len(s):
            for k in range(0, len(mapping), 2):
                key = mapping[k]
                if key and s.startswith(key, i):
                    out.append(mapping[k + 1])
                    i += len(key)
                    break
            else:
                out.append(s[i])
                i += 1
        return "".join(out)
    if sub == "is":
        cls = rest[0]
        s = rest[-1]
        if cls == "integer":
            return "1" if isinstance(parse_number(s), int) else "0"
        if cls == "double":
            return "1" if parse_number(s) is not None else "0"
        if cls == "alpha":
            return "1" if s.isalpha() else "0"
        if cls == "digit":
            return "1" if s.isdigit() else "0"
        if cls == "alnum":
            return "1" if s.isalnum() else "0"
        if cls == "space":
            return "1" if s != "" and s.isspace() else "0"
        if cls == "boolean":
            return (
                "1"
                if s.strip().lower()
                in ("0", "1", "true", "false", "yes", "no", "on", "off")
                else "0"
            )
        raise TclError('unknown string is class "%s"' % cls)
    if sub == "cat":
        return "".join(rest)
    raise TclError('unknown or unsupported string subcommand "%s"' % sub)


_FMT_RE = re.compile(r"%(-?\d*\.?\d*)([diufeEgGxXoscb%])")


def cmd_format(interp, args):
    if not args:
        raise _wrong_args("format formatString ?arg ...?")
    fmt = args[0]
    values = list(args[1:])
    out: list[str] = []
    pos = 0
    vi = 0
    for m in _FMT_RE.finditer(fmt):
        out.append(fmt[pos : m.start()])
        pos = m.end()
        flags, conv = m.group(1), m.group(2)
        if conv == "%":
            out.append("%")
            continue
        if vi >= len(values):
            raise TclError("not enough arguments for all format specifiers")
        raw = values[vi]
        vi += 1
        if conv in "diu":
            v = parse_number(raw)
            if v is None:
                raise TclError('expected integer but got "%s"' % raw)
            out.append(("%" + flags + "d") % int(v))
        elif conv in "eEfgG":
            v = parse_number(raw)
            if v is None:
                raise TclError('expected floating-point but got "%s"' % raw)
            out.append(("%" + flags + conv) % float(v))
        elif conv in "xXo":
            v = parse_number(raw)
            if v is None:
                raise TclError('expected integer but got "%s"' % raw)
            out.append(("%" + flags + conv) % int(v))
        elif conv == "c":
            v = parse_number(raw)
            out.append(chr(int(v)) if v is not None else raw[:1])
        elif conv == "b":
            v = parse_number(raw)
            if v is None:
                raise TclError('expected integer but got "%s"' % raw)
            out.append(format(int(v), flags.lstrip("-") + "b") if flags else format(int(v), "b"))
        else:  # s
            out.append(("%" + flags + "s") % raw)
    out.append(fmt[pos:])
    return "".join(out)


def cmd_split(interp, args):
    if len(args) not in (1, 2):
        raise _wrong_args("split string ?splitChars?")
    s = args[0]
    chars = args[1] if len(args) == 2 else " \t\n\r"
    if chars == "":
        return format_list(list(s))
    out = []
    cur = []
    for ch in s:
        if ch in chars:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return format_list(out)


def cmd_join(interp, args):
    if len(args) not in (1, 2):
        raise _wrong_args("join list ?joinString?")
    sep = args[1] if len(args) == 2 else " "
    return sep.join(parse_list(args[0]))


def cmd_regexp(interp, args):
    nocase = False
    want_all = False
    inline = False
    i = 0
    while i < len(args) and args[i].startswith("-"):
        if args[i] == "-nocase":
            nocase = True
        elif args[i] == "-all":
            want_all = True
        elif args[i] == "-inline":
            inline = True
        elif args[i] == "--":
            i += 1
            break
        else:
            raise TclError('bad option "%s" to regexp' % args[i])
        i += 1
    if len(args) - i < 2:
        raise _wrong_args("regexp ?options? exp string ?matchVar ...?")
    pattern, subject = args[i], args[i + 1]
    var_names = args[i + 2 :]
    flags = re.IGNORECASE if nocase else 0
    try:
        rx = re.compile(pattern, flags)
    except re.error as e:
        raise TclError("couldn't compile regular expression: %s" % e) from None
    if want_all and inline:
        out = []
        for m in rx.finditer(subject):
            out.append(m.group(0))
            out.extend(g if g is not None else "" for g in m.groups())
        return format_list(out)
    m = rx.search(subject)
    if m is None:
        return "0" if not inline else ""
    if inline:
        vals = [m.group(0)] + [g if g is not None else "" for g in m.groups()]
        return format_list(vals)
    groups = [m.group(0)] + [g if g is not None else "" for g in m.groups()]
    for k, name in enumerate(var_names):
        interp.set_var(name, groups[k] if k < len(groups) else "")
    return "1"


def cmd_regsub(interp, args):
    nocase = False
    want_all = False
    i = 0
    while i < len(args) and args[i].startswith("-"):
        if args[i] == "-nocase":
            nocase = True
        elif args[i] == "-all":
            want_all = True
        elif args[i] == "--":
            i += 1
            break
        else:
            raise TclError('bad option "%s" to regsub' % args[i])
        i += 1
    rest = args[i:]
    if len(rest) not in (3, 4):
        raise _wrong_args("regsub ?options? exp string subSpec ?varName?")
    pattern, subject, subspec = rest[0], rest[1], rest[2]
    flags = re.IGNORECASE if nocase else 0
    try:
        rx = re.compile(pattern, flags)
    except re.error as e:
        raise TclError("couldn't compile regular expression: %s" % e) from None
    # Tcl uses & and \N in subSpec; translate to Python \g<N>.
    py_spec = (
        subspec.replace("\\", "\\\\")
        .replace("\\\\0", "\\g<0>")
        .replace("&", "\\g<0>")
    )
    for d in "123456789":
        py_spec = py_spec.replace("\\\\" + d, "\\g<%s>" % d)
    result, count = rx.subn(py_spec, subject, count=0 if want_all else 1)
    if len(rest) == 4:
        interp.set_var(rest[3], result)
        return str(count)
    return result


def register(interp) -> None:
    interp.register("string", cmd_string)
    interp.register("format", cmd_format)
    interp.register("split", cmd_split)
    interp.register("join", cmd_join)
    interp.register("regexp", cmd_regexp)
    interp.register("regsub", cmd_regsub)
