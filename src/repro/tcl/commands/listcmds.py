"""List commands: list, lindex, llength, lappend, lrange, linsert,
lreplace, lsearch, lsort, lassign, lreverse, lrepeat, concat, lmap."""

from __future__ import annotations

from ..errors import TclBreak, TclContinue, TclError
from ..expr import parse_number
from ..listutil import format_element, format_list, parse_list


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def _index(spec: str, length: int) -> int:
    """Parse a Tcl index spec: N, end, end-N, N+M, N-M."""
    s = spec.strip()
    if s.startswith("end"):
        rest = s[3:]
        base = length - 1
        if not rest:
            return base
        if rest[0] in "+-":
            return base + int(rest)
        raise TclError('bad index "%s"' % spec)
    for op in ("+", "-"):
        # allow arithmetic like 1+1 (but not a leading sign)
        pos = s.find(op, 1)
        if pos > 0:
            try:
                return int(s[:pos]) + (int(s[pos:]) if op == "-" else int(s[pos + 1 :]))
            except ValueError:
                pass
    try:
        return int(s)
    except ValueError:
        raise TclError('bad index "%s": must be integer or end?[+-]integer?' % spec) from None


def cmd_list(interp, args):
    return format_list(args)


def cmd_lindex(interp, args):
    if not args:
        raise _wrong_args("lindex list ?index ...?")
    value = args[0]
    indices: list[str] = []
    for a in args[1:]:
        indices.extend(parse_list(a))
    for spec in indices:
        elements = parse_list(value)
        i = _index(spec, len(elements))
        if i < 0 or i >= len(elements):
            return ""
        value = elements[i]
    return value


def cmd_llength(interp, args):
    if len(args) != 1:
        raise _wrong_args("llength list")
    return str(len(parse_list(args[0])))


def cmd_lappend(interp, args):
    if not args:
        raise _wrong_args("lappend varName ?value ...?")
    name = args[0]
    cur = interp.get_var(name) if interp.var_exists(name) else ""
    parts = [cur] if cur else []
    parts.extend(format_element(v) for v in args[1:])
    return interp.set_var(name, " ".join(parts))


def cmd_lrange(interp, args):
    if len(args) != 3:
        raise _wrong_args("lrange list first last")
    elements = parse_list(args[0])
    first = max(_index(args[1], len(elements)), 0)
    last = min(_index(args[2], len(elements)), len(elements) - 1)
    if first > last:
        return ""
    return format_list(elements[first : last + 1])


def cmd_linsert(interp, args):
    if len(args) < 2:
        raise _wrong_args("linsert list index ?element ...?")
    elements = parse_list(args[0])
    idx = _index(args[1], len(elements) + 1)
    idx = max(0, min(idx, len(elements)))
    new = elements[:idx] + list(args[2:]) + elements[idx:]
    return format_list(new)


def cmd_lreplace(interp, args):
    if len(args) < 3:
        raise _wrong_args("lreplace list first last ?element ...?")
    elements = parse_list(args[0])
    first = max(_index(args[1], len(elements)), 0)
    last = _index(args[2], len(elements))
    if last < first - 1:
        last = first - 1
    new = elements[:first] + list(args[3:]) + elements[last + 1 :]
    return format_list(new)


def cmd_lsearch(interp, args):
    exact = False
    use_glob = True
    all_matches = False
    i = 0
    while i < len(args) and args[i].startswith("-"):
        opt = args[i]
        if opt == "-exact":
            exact, use_glob = True, False
        elif opt == "-glob":
            exact, use_glob = False, True
        elif opt == "-all":
            all_matches = True
        elif opt == "--":
            i += 1
            break
        else:
            raise TclError('bad option "%s" to lsearch' % opt)
        i += 1
    if len(args) - i != 2:
        raise _wrong_args("lsearch ?options? list pattern")
    elements = parse_list(args[i])
    pattern = args[i + 1]
    import fnmatch

    hits = []
    for k, el in enumerate(elements):
        ok = (el == pattern) if exact else fnmatch.fnmatchcase(el, pattern)
        if ok:
            if not all_matches:
                return str(k)
            hits.append(str(k))
    if all_matches:
        return format_list(hits)
    return "-1"


def cmd_lsort(interp, args):
    numeric = False
    decreasing = False
    unique = False
    i = 0
    while i < len(args) - 1 and args[i].startswith("-"):
        opt = args[i]
        if opt in ("-integer", "-real", "-numeric"):
            numeric = True
        elif opt == "-decreasing":
            decreasing = True
        elif opt == "-increasing":
            decreasing = False
        elif opt == "-unique":
            unique = True
        elif opt == "-ascii":
            numeric = False
        else:
            raise TclError('bad option "%s" to lsort' % opt)
        i += 1
    if len(args) - i != 1:
        raise _wrong_args("lsort ?options? list")
    elements = parse_list(args[i])
    if numeric:
        def key(s):
            v = parse_number(s)
            if v is None:
                raise TclError('expected number but got "%s"' % s)
            return v
    else:
        key = str
    out = sorted(elements, key=key, reverse=decreasing)
    if unique:
        dedup = []
        for el in out:
            if not dedup or key(dedup[-1]) != key(el):
                dedup.append(el)
        out = dedup
    return format_list(out)


def cmd_lassign(interp, args):
    if not args:
        raise _wrong_args("lassign list ?varName ...?")
    elements = parse_list(args[0])
    names = args[1:]
    for k, name in enumerate(names):
        interp.set_var(name, elements[k] if k < len(elements) else "")
    return format_list(elements[len(names) :])


def cmd_lreverse(interp, args):
    if len(args) != 1:
        raise _wrong_args("lreverse list")
    return format_list(list(reversed(parse_list(args[0]))))


def cmd_lrepeat(interp, args):
    if len(args) < 1:
        raise _wrong_args("lrepeat count ?value ...?")
    count = int(args[0])
    if count < 0:
        raise TclError("bad count %d: must be >= 0" % count)
    return format_list(list(args[1:]) * count)


def cmd_concat(interp, args):
    parts = [a.strip() for a in args if a.strip()]
    return " ".join(parts)


def cmd_lmap(interp, args):
    if len(args) != 3:
        raise _wrong_args("lmap varList list command")
    var_names = parse_list(args[0])
    values = parse_list(args[1])
    body = args[2]
    out = []
    step = len(var_names)
    if step == 0:
        raise TclError("lmap varlist is empty")
    for base in range(0, len(values), step):
        for k, vn in enumerate(var_names):
            idx = base + k
            interp.set_var(vn, values[idx] if idx < len(values) else "")
        try:
            out.append(interp.eval(body))
        except TclBreak:
            break
        except TclContinue:
            continue
    return format_list(out)


def register(interp) -> None:
    interp.register("list", cmd_list)
    interp.register("lindex", cmd_lindex)
    interp.register("llength", cmd_llength)
    interp.register("lappend", cmd_lappend)
    interp.register("lrange", cmd_lrange)
    interp.register("linsert", cmd_linsert)
    interp.register("lreplace", cmd_lreplace)
    interp.register("lsearch", cmd_lsearch)
    interp.register("lsort", cmd_lsort)
    interp.register("lassign", cmd_lassign)
    interp.register("lreverse", cmd_lreverse)
    interp.register("lrepeat", cmd_lrepeat)
    interp.register("concat", cmd_concat)
    interp.register("lmap", cmd_lmap)
