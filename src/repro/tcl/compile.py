"""Lowering from parsed mini-Tcl ASTs to :mod:`repro.tcl.bytecode`.

The compiler turns the parser's ``Command``/``Word`` structures (and
:mod:`repro.tcl.expr` ASTs for conditions and ``expr`` arguments) into
flat bytecode:

* **Local-variable slots** — proc bodies resolve plain variable names
  to integer slots at compile time; the VM keeps a per-frame cell
  vector instead of per-access dict lookups.  Script-context code
  (top-level ``eval`` bodies) stays frame-agnostic and uses the
  ``*_NAME`` ops.
* **Inlined builtins** — ``set``/``incr``/``expr``/``if``/``while``/
  ``for``/``return``/``break``/``continue`` with literal shapes lower
  to dedicated opcodes behind an epoch-checked ``GUARD``; if any of
  them is renamed or shadowed the guard diverts to an ``EXEC``
  fallback that runs the original :class:`CompiledCommand` through the
  AST path, preserving exact semantics.
* **Expr lowering** — precompiled expression trees become stack ops
  with int/int fast paths; constant subtrees fold at compile time.
* **Peephole pass** — jump threading, jump-to-next removal, and
  dead-code elision after unconditional exits (which generalizes the
  AST layer's tail-``return`` trick: ops after a ``RETURN`` are
  deleted outright).

Command substitutions, ``if``/loop bodies, and multi-command words are
all inlined into the *same* code object — the VM never recurses into
Python to run them.  Anything the compiler cannot prove safe (``{*}``
expansion, dynamic command names for builtins, unparseable sub-scripts)
falls back to ``EXEC``/generic-``CALL``, so behaviour is always the
AST interpreter's.
"""

from __future__ import annotations

from typing import Any

from .bytecode import (
    Code,
    OP_ADD, OP_BIN, OP_BREAK, OP_CALL, OP_CALL_LIT, OP_COERCE, OP_CONCAT,
    OP_CONST, OP_CONTINUE, OP_ELOAD_NAME, OP_ELOAD_SLOT, OP_END, OP_EQ,
    OP_EVAL_NODE, OP_EXEC, OP_GE, OP_GT, OP_GUARD, OP_INCR_NAME,
    OP_INCR_SLOT, OP_JUMP, OP_JUMP_IF_FALSE, OP_JUMP_IF_TRUE, OP_LE,
    OP_LOAD_NAME, OP_LOAD_SLOT, OP_LT, OP_MUL, OP_NE, OP_POP,
    OP_POP_BLOCK, OP_PUSH_BLOCK, OP_RETURN, OP_SET_NAME, OP_SET_SLOT,
    OP_SUB, OP_TO_STR, OP_UNARY,
)
from .errors import TclError
from .expr import compile_expr, _eval_bin, eval_unary, parse_number
from .interp import CompiledCommand, _abbrev
from .parser import Command, TclParseError, Word, parse_cached

# Ops after which control never falls through to the next instruction.
_TERMINATORS = {OP_JUMP, OP_BREAK, OP_CONTINUE, OP_RETURN, OP_END}
_JUMP_OPS = {OP_JUMP, OP_JUMP_IF_FALSE, OP_JUMP_IF_TRUE}

_TYPED_BIN = {
    "+": OP_ADD, "-": OP_SUB, "*": OP_MUL,
    "<": OP_LT, "<=": OP_LE, ">": OP_GT, ">=": OP_GE,
    "==": OP_EQ, "!=": OP_NE,
}


class _Fallback(Exception):
    """Internal: abandon the fast lowering of one command."""


class Label:
    __slots__ = ("pos",)

    def __init__(self):
        self.pos = -1


class _Asm:
    """Instruction-list assembler with labels, interning, and peephole."""

    def __init__(self):
        self.instrs: list = []  # [op, arg, line] lists interleaved with Labels
        self.consts: list = []
        self._interned: dict = {}
        self.caches: list = []
        self.regions: list = []  # (start Label, end Label, text, line)
        self._blocks: list[int] = []  # const idxs holding (Label, Label)
        self.line = 0
        self.removed = 0  # peephole-eliminated ops (+ folded constants)

    def emit(self, op: int, arg: Any = 0) -> None:
        self.instrs.append([op, arg, self.line])

    def mark(self, label: Label) -> None:
        self.instrs.append(label)

    def const(self, v: Any) -> int:
        try:
            key = (type(v).__name__, v)
            idx = self._interned.get(key)
        except TypeError:
            key, idx = None, None
        if idx is None:
            idx = len(self.consts)
            self.consts.append(v)
            if key is not None:
                self._interned[key] = idx
        return idx

    def rconst(self, v: Any) -> int:
        """Un-interned constant slot (patched at layout time)."""
        self.consts.append(v)
        return len(self.consts) - 1

    def block_const(self, brk: Label, cont: Label) -> int:
        idx = self.rconst((brk, cont))
        self._blocks.append(idx)
        return idx

    def cache(self, entry: list) -> int:
        self.caches.append(entry)
        return len(self.caches) - 1

    def checkpoint(self) -> tuple[int, int]:
        return (len(self.instrs), len(self.regions))

    def rollback(self, cp: tuple[int, int]) -> None:
        del self.instrs[cp[0]:]
        del self.regions[cp[1]:]

    def region(self, start: Label, end: Label, text: str, line: int) -> None:
        self.regions.append((start, end, text, line))

    # -- peephole + layout -------------------------------------------------

    def _label_pos(self) -> dict:
        return {
            item: i
            for i, item in enumerate(self.instrs)
            if isinstance(item, Label)
        }

    def _next_real(self, i: int) -> int:
        instrs = self.instrs
        while i < len(instrs) and isinstance(instrs[i], Label):
            i += 1
        return i

    def _thread_jumps(self) -> None:
        pos = self._label_pos()
        for item in self.instrs:
            if isinstance(item, Label) or item[0] not in _JUMP_OPS:
                continue
            seen = set()
            target = item[1]
            while isinstance(target, Label) and target not in seen:
                seen.add(target)
                j = self._next_real(pos.get(target, len(self.instrs)))
                if j >= len(self.instrs):
                    break
                nxt = self.instrs[j]
                if nxt[0] == OP_JUMP and nxt[1] is not target:
                    target = nxt[1]
                    self.removed += 1
                else:
                    break
            item[1] = target

    def _drop_dead(self) -> None:
        out: list = []
        reachable = True
        for item in self.instrs:
            if isinstance(item, Label):
                out.append(item)
                reachable = True
                continue
            if not reachable:
                self.removed += 1
                continue
            out.append(item)
            if item[0] in _TERMINATORS:
                reachable = False
        self.instrs = out

    def _drop_jump_to_next(self) -> None:
        pos = self._label_pos()
        out: list = []
        for i, item in enumerate(self.instrs):
            if (
                not isinstance(item, Label)
                and item[0] == OP_JUMP
                and isinstance(item[1], Label)
                and self._next_real(pos.get(item[1], -1))
                == self._next_real(i + 1)
            ):
                self.removed += 1
                continue
            out.append(item)
        self.instrs = out

    def finalize(
        self,
        slot_names: list[str],
        proto: tuple | None,
        name: str,
        script: str,
    ) -> Code:
        # Straight-line code (no inlined control flow emits no labels)
        # has nothing for the peephole passes to do; skipping them
        # keeps one-shot script compiles cheap.
        if any(isinstance(item, Label) for item in self.instrs):
            for _ in range(2):
                self._thread_jumps()
                self._drop_jump_to_next()
                self._drop_dead()
        # Layout: assign pcs, resolve labels.
        pc = 0
        for item in self.instrs:
            if isinstance(item, Label):
                item.pos = pc
            else:
                pc += 2
        ops: list = []
        lines: list[tuple[int, int]] = []
        last_line = None
        for item in self.instrs:
            if isinstance(item, Label):
                continue
            op, arg, line = item
            if isinstance(arg, Label):
                arg = arg.pos
            if line != last_line:
                lines.append((len(ops), line))
                last_line = line
            ops.append(op)
            ops.append(arg)
        for c in self.caches:
            if len(c) == 6 and isinstance(c[5], Label):
                c[5] = c[5].pos
        for idx in self._blocks:
            brk, cont = self.consts[idx]
            self.consts[idx] = (brk.pos, cont.pos)
        regions = [
            (s.pos, e.pos, text, line)
            for s, e, text, line in self.regions
            if s.pos < e.pos
        ]
        return Code(
            ops, self.consts, self.caches, slot_names, regions, lines,
            proto=proto, name=name, script=script,
        )


class Compiler:
    """Lower a parsed command list into one :class:`Code` object."""

    def __init__(self, proc_mode: bool = False):
        self.asm = _Asm()
        # Local slot table: proc bodies only.  Script-context code runs
        # against whatever frame is current, so names stay dynamic.
        self.slots: dict[str, int] | None = {} if proc_mode else None

    # -- variables --------------------------------------------------------

    def _slot(self, name: str) -> int | None:
        if self.slots is None or not name or "::" in name:
            return None
        idx = self.slots.get(name)
        if idx is None:
            idx = self.slots[name] = len(self.slots)
        return idx

    def _load(self, name: str, expr: bool = False) -> None:
        si = self._slot(name)
        if si is not None:
            self.asm.emit(OP_ELOAD_SLOT if expr else OP_LOAD_SLOT, si)
        else:
            self.asm.emit(
                OP_ELOAD_NAME if expr else OP_LOAD_NAME, self.asm.const(name)
            )

    # -- words ------------------------------------------------------------

    def word(self, w: Word) -> None:
        """Emit ops leaving the word's (string) value on the stack."""
        asm = self.asm
        if w.literal is not None:
            asm.emit(OP_CONST, asm.const(w.literal))
            return
        segs = w.segments
        for kind, text in segs:
            if kind == "lit":
                asm.emit(OP_CONST, asm.const(text))
            elif kind == "var":
                self._load(text)
            else:  # cmd substitution: inline the sub-script
                self.inline_script(text)
        if len(segs) > 1:
            asm.emit(OP_CONCAT, len(segs))
        elif not segs:
            asm.emit(OP_CONST, asm.const(""))

    def inline_script(self, text: str) -> None:
        """Inline a sub-script; leaves its result on the stack."""
        try:
            cmds = parse_cached(text)
        except TclParseError:
            raise _Fallback from None
        self.script_push(cmds)

    def script_push(self, cmds: list[Command]) -> None:
        if not cmds:
            self.asm.emit(OP_CONST, self.asm.const(""))
            return
        last = len(cmds) - 1
        for i, c in enumerate(cmds):
            self.command(c)
            if i != last:
                self.asm.emit(OP_POP, 0)

    def script_discard(self, cmds: list[Command]) -> None:
        for c in cmds:
            self.command(c)
            self.asm.emit(OP_POP, 0)

    # -- commands ---------------------------------------------------------

    def command(self, cmd: Command) -> None:
        """Compile one command; leaves exactly one value on the stack."""
        cp = self.asm.checkpoint()
        try:
            self._command_fast(cmd)
        except _Fallback:
            self.asm.rollback(cp)
            self._exec(cmd)

    def _exec(self, cmd: Command) -> None:
        self.asm.line = cmd.line
        self.asm.emit(OP_EXEC, self.asm.rconst(CompiledCommand(cmd)))

    def _command_fast(self, cmd: Command) -> None:
        words = cmd.words
        asm = self.asm
        asm.line = cmd.line
        if not words:
            asm.emit(OP_CONST, asm.const(""))
            return
        if any(w.expand for w in words):
            raise _Fallback  # {*} expansion: AST path handles it exactly
        name = words[0].literal
        if name is not None and "::" not in name:
            handler = _INLINE.get(name)
            if handler is not None and handler(self, cmd):
                return
        if all(w.literal is not None for w in words):
            argv = [w.literal for w in words]  # type: ignore[misc]
            ci = asm.cache([argv, argv[1:], cmd.line, -1, None, 0, None])
            asm.emit(OP_CALL_LIT, ci)
            return
        for w in words:
            self.word(w)
        ci = asm.cache([len(words), cmd.line, -1, None, None, 0, None])
        asm.emit(OP_CALL, ci)

    # -- inlined builtins --------------------------------------------------
    # Each handler returns True when it emitted the command, False to use
    # the generic CALL path (shape not eligible — including shapes whose
    # runtime outcome is a wrong-args error, which the generic path
    # reproduces exactly), or raises _Fallback to defer to EXEC.

    def _guard(self, cmd: Command, name: str) -> tuple[Label, Label, Label]:
        """Emit GUARD; returns (region_start, fallback, join) labels.

        Call ``_close_guard`` after emitting the fast path.
        """
        fb, join, rs = Label(), Label(), Label()
        gc = self.asm.cache([name, name, -1, None, False, fb])
        self.asm.emit(OP_GUARD, gc)
        self.asm.mark(rs)
        return rs, fb, join

    def _close_guard(
        self, cmd: Command, labels: tuple[Label, Label, Label],
        region_text: str | None = None,
    ) -> None:
        rs, fb, join = labels
        self.asm.emit(OP_JUMP, join)
        if region_text is not None:
            self.asm.region(rs, fb, region_text, cmd.line)
        self.asm.mark(fb)
        self._exec(cmd)
        self.asm.mark(join)

    def _in_set(self, cmd: Command) -> bool:
        words = cmd.words
        if len(words) != 3 or words[1].literal is None:
            return False
        name = words[1].literal
        labels = self._guard(cmd, "set")
        self.word(words[2])
        si = self._slot(name)
        if si is not None:
            self.asm.emit(OP_SET_SLOT, self.asm.const((si, name, cmd.line)))
        else:
            self.asm.emit(OP_SET_NAME, self.asm.const((name, cmd.line)))
        self._close_guard(cmd, labels)
        return True

    def _in_incr(self, cmd: Command) -> bool:
        words = cmd.words
        if (
            len(words) not in (2, 3)
            or words[1].literal is None
            or (len(words) == 3 and words[2].literal is None)
        ):
            return False
        name = words[1].literal
        delta = 1
        if len(words) == 3:
            d = parse_number(words[2].literal)  # type: ignore[arg-type]
            if not isinstance(d, int):
                return False  # runtime "expected integer" via generic CALL
            delta = d
        text = _abbrev([w.literal for w in words])  # type: ignore[misc]
        labels = self._guard(cmd, "incr")
        si = self._slot(name)
        if si is not None:
            self.asm.emit(
                OP_INCR_SLOT,
                self.asm.const((si, name, delta, cmd.line, text)),
            )
        else:
            self.asm.emit(
                OP_INCR_NAME, self.asm.const((name, delta, cmd.line, text))
            )
        self._close_guard(cmd, labels)
        return True

    def _in_expr(self, cmd: Command) -> bool:
        words = cmd.words
        if len(words) != 2 or words[1].literal is None:
            return False
        try:
            node = compile_expr(words[1].literal)
        except TclError:
            raise _Fallback from None
        text = _abbrev(["expr", words[1].literal])
        labels = self._guard(cmd, "expr")
        self.lower_expr(node)
        self.asm.emit(OP_TO_STR, 0)
        self._close_guard(cmd, labels, region_text=text)
        return True

    def _in_if(self, cmd: Command) -> bool:
        words = cmd.words
        if any(w.literal is None for w in words):
            return False
        args = [w.literal for w in words[1:]]
        # Statically replicate cmd_if's argument walk.
        chains: list[tuple[Any, list[Command]]] = []
        else_cmds: list[Command] | None = None
        i, n = 0, len(args)
        try:
            while i < n:
                cond = args[i]
                i += 1
                if i < n and args[i] == "then":
                    i += 1
                if i >= n:
                    return False  # runtime wrong-args via generic CALL
                body = args[i]
                i += 1
                chains.append((compile_expr(cond), parse_cached(body)))
                if i < n and args[i] == "elseif":
                    i += 1
                    continue
                if i < n and args[i] == "else":
                    i += 1
                    if i >= n:
                        return False
                    else_cmds = parse_cached(args[i])
                elif i < n:
                    else_cmds = parse_cached(args[i])  # bare trailing body
                break
        except (TclError, TclParseError):
            raise _Fallback from None
        text = _abbrev([w.literal for w in words])  # type: ignore[misc]
        asm = self.asm
        labels = self._guard(cmd, "if")
        join = Label()
        for node, body_cmds in chains:
            nxt = Label()
            self.lower_expr(node)
            asm.emit(OP_JUMP_IF_FALSE, nxt)
            self.script_push(body_cmds)
            asm.emit(OP_JUMP, join)
            asm.mark(nxt)
        if else_cmds is not None:
            self.script_push(else_cmds)
        else:
            asm.emit(OP_CONST, asm.const(""))
        asm.mark(join)
        self._close_guard(cmd, labels, region_text=text)
        return True

    def _in_while(self, cmd: Command) -> bool:
        words = cmd.words
        if len(words) != 3 or any(w.literal is None for w in words):
            return False
        try:
            cnode = compile_expr(words[1].literal)  # type: ignore[arg-type]
            body_cmds = parse_cached(words[2].literal)  # type: ignore[arg-type]
        except (TclError, TclParseError):
            raise _Fallback from None
        text = _abbrev([w.literal for w in words])  # type: ignore[misc]
        asm = self.asm
        labels = self._guard(cmd, "while")
        top, cont, brk, exit_ = Label(), Label(), Label(), Label()
        asm.mark(top)
        self.lower_expr(cnode)
        asm.emit(OP_JUMP_IF_FALSE, exit_)
        # The block covers the body only: break/continue raised during
        # the condition propagate out, matching cmd_while's try placement.
        asm.emit(OP_PUSH_BLOCK, asm.block_const(brk, cont))
        self.script_discard(body_cmds)
        asm.mark(cont)
        asm.emit(OP_POP_BLOCK, 0)
        asm.emit(OP_JUMP, top)
        asm.mark(brk)
        asm.emit(OP_POP_BLOCK, 0)
        asm.mark(exit_)
        asm.emit(OP_CONST, asm.const(""))
        self._close_guard(cmd, labels, region_text=text)
        return True

    def _in_for(self, cmd: Command) -> bool:
        words = cmd.words
        if len(words) != 5 or any(w.literal is None for w in words):
            return False
        try:
            start_cmds = parse_cached(words[1].literal)  # type: ignore[arg-type]
            tnode = compile_expr(words[2].literal)  # type: ignore[arg-type]
            next_cmds = parse_cached(words[3].literal)  # type: ignore[arg-type]
            body_cmds = parse_cached(words[4].literal)  # type: ignore[arg-type]
        except (TclError, TclParseError):
            raise _Fallback from None
        text = _abbrev([w.literal for w in words])  # type: ignore[misc]
        asm = self.asm
        labels = self._guard(cmd, "for")
        top, cont, brk, exit_ = Label(), Label(), Label(), Label()
        self.script_discard(start_cmds)
        asm.mark(top)
        self.lower_expr(tnode)
        asm.emit(OP_JUMP_IF_FALSE, exit_)
        asm.emit(OP_PUSH_BLOCK, asm.block_const(brk, cont))
        self.script_discard(body_cmds)
        asm.mark(cont)  # continue still runs the next-script (cmd_for)
        asm.emit(OP_POP_BLOCK, 0)
        self.script_discard(next_cmds)
        asm.emit(OP_JUMP, top)
        asm.mark(brk)
        asm.emit(OP_POP_BLOCK, 0)
        asm.mark(exit_)
        asm.emit(OP_CONST, asm.const(""))
        self._close_guard(cmd, labels, region_text=text)
        return True

    def _in_return(self, cmd: Command) -> bool:
        words = cmd.words
        if len(words) > 2:
            return False  # -code forms raise TclReturn via the fn path
        labels = self._guard(cmd, "return")
        if len(words) == 2:
            self.word(words[1])
        else:
            self.asm.emit(OP_CONST, self.asm.const(""))
        self.asm.emit(OP_RETURN, 0)
        self._close_guard(cmd, labels)
        return True

    def _in_break(self, cmd: Command) -> bool:
        if len(cmd.words) != 1:
            return False
        labels = self._guard(cmd, "break")
        self.asm.emit(OP_BREAK, 0)
        self._close_guard(cmd, labels)
        return True

    def _in_continue(self, cmd: Command) -> bool:
        if len(cmd.words) != 1:
            return False
        labels = self._guard(cmd, "continue")
        self.asm.emit(OP_CONTINUE, 0)
        self._close_guard(cmd, labels)
        return True

    # -- expr lowering ----------------------------------------------------

    def lower_expr(self, node: tuple) -> None:
        """Emit ops leaving the expression's raw value on the stack."""
        asm = self.asm
        kind = node[0]
        if kind == "num" or kind == "str":
            asm.emit(OP_CONST, asm.const(node[1]))
        elif kind == "var":
            self._load(node[1], expr=True)
        elif kind == "bin":
            op = node[1]
            if op == "&&":
                false_, end = Label(), Label()
                self.lower_expr(node[2])
                asm.emit(OP_JUMP_IF_FALSE, false_)
                self.lower_expr(node[3])
                asm.emit(OP_JUMP_IF_FALSE, false_)
                asm.emit(OP_CONST, asm.const(1))
                asm.emit(OP_JUMP, end)
                asm.mark(false_)
                asm.emit(OP_CONST, asm.const(0))
                asm.mark(end)
                return
            if op == "||":
                true_, end = Label(), Label()
                self.lower_expr(node[2])
                asm.emit(OP_JUMP_IF_TRUE, true_)
                self.lower_expr(node[3])
                asm.emit(OP_JUMP_IF_TRUE, true_)
                asm.emit(OP_CONST, asm.const(0))
                asm.emit(OP_JUMP, end)
                asm.mark(true_)
                asm.emit(OP_CONST, asm.const(1))
                asm.mark(end)
                return
            a, b = node[2], node[3]
            if a[0] == "num" and b[0] == "num":
                # Constant folding — but only when evaluation cannot
                # raise (a folded divide-by-zero would lose the runtime
                # error the AST path reports on every execution).
                try:
                    v = _eval_bin(op, a[1], b[1])
                except TclError:
                    pass
                else:
                    asm.emit(OP_CONST, asm.const(v))
                    asm.removed += 1
                    return
            self.lower_expr(a)
            self.lower_expr(b)
            topcode = _TYPED_BIN.get(op)
            if topcode is not None:
                asm.emit(topcode, 0)
            else:
                asm.emit(OP_BIN, asm.const(op))
        elif kind == "un":
            sub = node[2]
            if sub[0] == "num":
                try:
                    v = eval_unary(node[1], sub[1])
                except TclError:
                    pass
                else:
                    asm.emit(OP_CONST, asm.const(v))
                    asm.removed += 1
                    return
            self.lower_expr(sub)
            asm.emit(OP_UNARY, asm.const(node[1]))
        elif kind == "tern":
            false_, end = Label(), Label()
            self.lower_expr(node[1])
            asm.emit(OP_JUMP_IF_FALSE, false_)
            self.lower_expr(node[2])
            asm.emit(OP_JUMP, end)
            asm.mark(false_)
            self.lower_expr(node[3])
            asm.mark(end)
        elif kind == "cmdsub":
            try:
                cmds = parse_cached(node[1])
            except TclParseError:
                # Defer to the AST evaluator: the parse error (wrapped
                # as TclError) must surface at evaluation time.
                asm.emit(OP_EVAL_NODE, asm.rconst(node))
                return
            self.script_push(cmds)
            asm.emit(OP_COERCE, 0)
        else:  # fn calls and anything else: AST-evaluate the subtree
            asm.emit(OP_EVAL_NODE, asm.rconst(node))

    # -- entry ------------------------------------------------------------

    def finish(
        self, name: str, script: str, proto: tuple | None = None
    ) -> Code:
        self.asm.emit(OP_END, 0)
        slot_names = [""] * len(self.slots) if self.slots else []
        if self.slots:
            for n, i in self.slots.items():
                slot_names[i] = n
        return self.asm.finalize(slot_names, proto, name, script)


_INLINE = {
    "set": Compiler._in_set,
    "incr": Compiler._in_incr,
    "expr": Compiler._in_expr,
    "if": Compiler._in_if,
    "while": Compiler._in_while,
    "for": Compiler._in_for,
    "return": Compiler._in_return,
    "break": Compiler._in_break,
    "continue": Compiler._in_continue,
}


def compile_script_code(interp, script: str, name: str = "<script>") -> Code:
    """Compile a script-context (frame-agnostic) :class:`Code` object."""
    try:
        cmds = parse_cached(script)
    except TclParseError as e:
        raise TclError(str(e)) from None
    c = Compiler(proc_mode=False)
    c.script_push(cmds)
    code = c.finish(name, script)
    interp.vm_stats.peephole_ops += c.asm.removed
    return code


def compile_proc_code(interp, proc) -> Code | None:
    """Compile a proc body with local slots; None if the body won't parse
    (the AST path then reports the parse error at call time)."""
    try:
        cmds = parse_cached(proc.body)
    except TclParseError:
        return None
    c = Compiler(proc_mode=True)
    for pname, _default in proc.params:
        if c._slot(pname) is None:
            return None  # qualified/empty param name: AST path
    if len(c.slots or {}) != len(proc.params):
        return None  # duplicate param names: keep AST binding semantics
    c.script_push(cmds)
    proto = (proc.name, proc.params, len(proc.params), proc._simple)
    code = c.finish("<proc %s>" % proc.name, proc.body, proto=proto)
    interp.vm_stats.peephole_ops += c.asm.removed
    return code
