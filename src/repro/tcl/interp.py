"""The Tcl interpreter core: frames, namespaces, dispatch, substitution.

Values follow the everything-is-a-string model: command arguments and
results are Python ``str``.  Opaque host objects (blobs, interpreter
handles, native pointers) are stored in an object registry and passed
through Tcl as handle strings, the same trick SWIG uses for pointers.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass
from typing import Any, Callable

from ..lru import LRUCache
from .bytecode import VMStats
from .errors import TclBreak, TclContinue, TclError, TclReturn
from .expr import compile_expr, eval_node, to_string
from .listutil import format_list, parse_list
from .parser import Command, TclParseError, Word, parse_cached

CommandFn = Callable[["Interp", list[str]], Any]


@dataclass
class InterpCacheStats:
    """Per-interpreter compile-cache counters.

    Folded into the run's :class:`repro.obs.Metrics` registry as
    ``tcl.compile.*`` at the end of each engine/worker loop.
    """

    hits: int = 0  # compiled-script cache hits (evals served compiled)
    misses: int = 0  # scripts compiled (first sight or LRU-evicted)
    expr_hits: int = 0  # expr AST cache hits
    expr_misses: int = 0  # expr ASTs parsed


def _compile_cmd_subst(script: str) -> Callable[["Interp"], str]:
    """Compile a ``[command]`` substitution into a direct closure.

    The inner script is compiled lazily on first execution (via the
    owning interp's compiled-script cache) and pinned in the closure,
    so repeat substitutions skip the eval/cache-lookup chain entirely.
    Single-command substitutions — essentially all of them in generated
    code — also skip the per-eval depth guard: runaway recursion always
    passes through a proc call or ``eval``, both of which are guarded.
    """
    cache: list = []

    def run(interp: "Interp") -> str:
        if not cache:
            code = interp.compiled(script)
            cache.append(code[0] if len(code) == 1 else None)
            cache.append(code)
        single = cache[0]
        if single is not None:
            return interp._run_compiled(single)
        return interp.eval_compiled(cache[1])

    return run


def _compile_word(word: Word) -> Callable[["Interp"], str]:
    """Specialize one non-literal word into a direct substitution closure.

    Single-``$var`` and single-``[cmd]`` words — the overwhelming
    majority in generated Turbine code — skip the segment walk
    entirely.
    """
    segs = word.segments
    if len(segs) == 1:
        kind, text = segs[0]
        if kind == "var":
            return lambda interp: interp.get_var(text)
        if kind == "cmd":
            return _compile_cmd_subst(text)
        return lambda interp: text
    fns: list[Callable[["Interp"], str]] = []
    for kind, text in segs:
        if kind == "lit":
            fns.append(lambda interp, t=text: t)
        elif kind == "var":
            fns.append(lambda interp, t=text: interp.get_var(t))
        else:  # cmd
            fns.append(_compile_cmd_subst(text))

    def subst(interp: "Interp", fns: list = fns) -> str:
        return "".join(f(interp) for f in fns)

    return subst


class CompiledCommand:
    """The compiled form of one parsed :class:`Command`.

    Owned by a single interpreter (compiled forms live in the interp's
    per-instance cache, never shared across interps/threads), which
    makes the embedded command-pointer cache safe.

    * ``argv``/``argv_tail`` — precomputed argument vector when every
      word is literal (no runtime substitution at all).
    * ``words`` — substitution closures otherwise.
    * ``_fn``/``_epoch``/``_ns``/``_name`` — the resolved-command
      cache: valid only while the owning interp's ``cmd_epoch`` and
      current namespace match, so ``proc`` redefinition, ``rename``,
      and re-``register`` self-invalidate every compiled call site.
    * ``_expr_node`` — when the resolved command is the built-in
      ``expr`` and the argument is a single literal, the precompiled
      AST; evaluated directly, skipping dispatch and the AST cache.
      (Re)built together with the resolved-command cache, so it obeys
      the same epoch invalidation.
    """

    __slots__ = (
        "line", "argv", "argv_tail", "words", "name_literal",
        "_fn", "_epoch", "_ns", "_name", "_expr_node",
    )

    def __init__(self, cmd: Command):
        self.line = cmd.line
        words = cmd.words
        if all(w.literal is not None and not w.expand for w in words):
            self.argv: list[str] | None = [w.literal for w in words]  # type: ignore[misc]
            self.argv_tail: list[str] | None = self.argv[1:]
            self.words: list[tuple[Callable, bool]] | None = None
            self.name_literal: str | None = self.argv[0] if self.argv else None
        else:
            self.argv = None
            self.argv_tail = None
            self.words = [
                (
                    (lambda interp, lit=w.literal: lit)
                    if w.literal is not None
                    else _compile_word(w),
                    w.expand,
                )
                for w in words
            ]
            self.name_literal = (
                words[0].literal if words and not words[0].expand else None
            )
        self._fn: CommandFn | None = None
        self._epoch = -1
        self._ns: Namespace | None = None
        self._name: str | None = None
        self._expr_node: Any = None


CompiledScript = list[CompiledCommand]

# Builtins that evaluate a script argument through the AST-walk
# internals (``compiled``/``eval_compiled``).  The VM's single-command
# fast path must not dispatch these directly, or a top-level
# ``for``/``while``/... would run its body on the AST walk instead of
# the bytecode the VM inlines for it.  Name-based on purpose: if a user
# rebinds one of these names the script just takes the (semantically
# identical) full bytecode path.
_SCRIPT_BUILTINS = frozenset(
    (
        "if", "while", "for", "foreach", "switch", "eval", "catch",
        "time", "subst", "dict", "lmap", "namespace", "source",
        "uplevel", "apply", "try",
    )
)


class Var:
    """A variable cell, shared between frames by upvar/global links."""

    __slots__ = ("value",)

    def __init__(self, value: str = ""):
        self.value = value


class Namespace:
    __slots__ = ("name", "vars")

    def __init__(self, name: str):
        self.name = name  # fully qualified, "" for global
        self.vars: dict[str, Var] = {}


class Frame:
    __slots__ = ("vars", "ns", "label", "version")

    def __init__(self, ns: Namespace, label: str = "<frame>"):
        self.vars: dict[str, Var] = {}
        self.ns = ns
        self.label = label
        # Bumped whenever a var *cell* is replaced or removed (unset,
        # upvar/global/variable links) so the VM's local-slot cell cache
        # can invalidate.  Plain creation never bumps: the VM caches
        # cells lazily and re-probes the dict on a miss.
        self.version = 0


class TclProc:
    """A user-defined procedure (``proc``)."""

    __slots__ = (
        "name", "params", "body", "ns",
        "_code", "_code_interp", "_names", "_simple",
        "_tail", "_tail_prefix", "_tail_epoch", "_tail_ok",
        "_vm_code", "_vm_code_interp",
    )

    def __init__(
        self,
        name: str,
        params: list[tuple[str, str | None]],
        body: str,
        ns: Namespace,
    ):
        self.name = name
        self.params = params  # (name, default|None); last may be "args"
        self.body = body
        self.ns = ns
        # Compiled-commands slot: the body compiled for one interp.
        # Procs are created per-interp (each rank evals the prelude
        # itself), but guard on interp identity anyway.
        self._code: CompiledScript | None = None
        self._code_interp: "Interp" | None = None
        # Argument-binding fast path: plain positional params only.
        self._names = [p for p, _ in params]
        self._simple = all(d is None for _, d in params) and (
            not params or params[-1][0] != "args"
        )
        # Tail-return fast path (see _analyze_tail): when the body ends
        # in a plain `return ?value?`, the value is computed directly
        # instead of threading a TclReturn exception through the stack.
        self._tail: tuple | None = None
        self._tail_prefix: CompiledScript | None = None
        self._tail_epoch = -1
        self._tail_ok = False
        # Bytecode slot: the body lowered for one interp's VM; False
        # marks a body the compiler declined (kept on the AST path).
        self._vm_code: Any = None
        self._vm_code_interp: "Interp" | None = None

    def _analyze_tail(self, code: CompiledScript) -> None:
        """Detect a body ending in ``return`` / ``return <word>``.

        Only the zero-or-one-argument form is eligible (option parsing
        in ``cmd_return`` never triggers with a single argument, so the
        value passes through verbatim).  Whether ``return`` still
        resolves to the builtin is validated per call under the interp's
        command epoch, mirroring the CompiledCommand pointer cache.
        """
        self._tail = None
        self._tail_prefix = None
        self._tail_epoch = -1
        self._tail_ok = False
        if not code:
            return
        last = code[-1]
        if last.argv is not None:
            if last.argv[0] == "return" and len(last.argv) <= 2:
                self._tail = ("lit", last.argv[1] if len(last.argv) == 2 else "")
        elif (
            last.name_literal == "return"
            and len(last.words) == 2  # type: ignore[arg-type]
            and not last.words[1][1]  # type: ignore[index]
        ):
            self._tail = ("sub", last.words[1][0])  # type: ignore[index]
        if self._tail is not None:
            self._tail_prefix = code[:-1]

    def __call__(self, interp: "Interp", argv: list[str]) -> str:
        if interp.exec_vm:
            vcode = self._vm_code
            if vcode is None or self._vm_code_interp is not interp:
                vcode = interp._vm_proc_code(interp, self)
            elif vcode is False:
                vcode = None
            if vcode is not None:
                return interp._vm_call_proc(interp, self, vcode, argv)
            # Body the bytecode compiler declined: AST path below.
        frame = Frame(self.ns, label=self.name)
        params = self.params
        if self._simple and len(argv) == len(params):
            fv = frame.vars
            for pname, val in zip(self._names, argv):
                fv[pname] = Var(val)
        else:
            n_named = len(params)
            has_varargs = bool(params) and params[-1][0] == "args"
            if has_varargs:
                n_named -= 1
            if len(argv) > n_named and not has_varargs:
                raise TclError(
                    'wrong # args: should be "%s %s"'
                    % (self.name, " ".join(p for p, _ in params))
                )
            for i in range(n_named):
                pname, default = params[i]
                if i < len(argv):
                    frame.vars[pname] = Var(argv[i])
                elif default is not None:
                    frame.vars[pname] = Var(default)
                else:
                    raise TclError(
                        'wrong # args: should be "%s %s"'
                        % (self.name, " ".join(p for p, _ in params))
                    )
            if has_varargs:
                frame.vars["args"] = Var(format_list(argv[n_named:]))
        interp.frames.append(frame)
        saved_ns = interp.current_ns
        interp.current_ns = self.ns
        try:
            if interp.compile_enabled:
                code = self._code
                if code is None or self._code_interp is not interp:
                    code = interp.compiled(self.body)
                    self._code = code
                    self._code_interp = interp
                    self._analyze_tail(code)
                tail = self._tail
                if tail is not None:
                    if self._tail_epoch != interp.cmd_epoch:
                        fn = interp.lookup_command("return")
                        self._tail_ok = getattr(fn, "return_builtin", False)
                        self._tail_epoch = interp.cmd_epoch
                    if self._tail_ok:
                        # Run the body inline: prefix commands, then the
                        # return value — no TclReturn, no extra eval level.
                        if interp._depth >= interp.MAX_DEPTH:
                            raise TclError(
                                "too many nested evaluations (infinite loop?)"
                            )
                        interp._depth += 1
                        try:
                            run = interp._run_compiled
                            for cc in self._tail_prefix:  # type: ignore[union-attr]
                                run(cc)
                            kind, payload = tail
                            return payload if kind == "lit" else payload(interp)
                        finally:
                            interp._depth -= 1
                return interp.eval_compiled(code)
            return interp.eval(self.body)
        except TclReturn as r:
            if r.code == 1:
                raise TclError(r.value) from None
            return r.value
        finally:
            interp.frames.pop()
            interp.current_ns = saved_ns


class Interp:
    """A Tcl interpreter instance.

    Each MPI rank in the runtime hosts one of these; rule bodies and
    worker task fragments are evaluated here.
    """

    MAX_DEPTH = 900
    # VM mode: Tcl proc calls stay inside one dispatch loop, so only
    # nested *evaluations* (eval/catch/uplevel and AST fallbacks)
    # consume Python stack — a much lower eval-depth budget fits under
    # CPython's default recursion limit with no setrecursionlimit bump.
    VM_MAX_DEPTH = 128
    # VM frame-depth limit: Tcl proc recursion depth before the VM
    # raises a catchable TclError (replaces RecursionError entirely).
    FRAME_LIMIT = 4000

    def __init__(
        self,
        register_core: bool = True,
        compile_enabled: bool = True,
        exec_mode: str = "vm",
    ):
        if exec_mode not in ("vm", "ast"):
            raise ValueError("exec_mode must be 'vm' or 'ast'")
        self.exec_vm = bool(compile_enabled) and exec_mode == "vm"
        if not self.exec_vm:
            # A Tcl evaluation level costs ~12 Python frames; make room
            # for the MAX_DEPTH guard to fire before CPython's.
            sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))
        else:
            self.MAX_DEPTH = self.VM_MAX_DEPTH
        self.global_ns = Namespace("")
        self.namespaces: dict[str, Namespace] = {"": self.global_ns}
        self.commands: dict[str, CommandFn] = {}
        gframe = Frame(self.global_ns, label="<global>")
        gframe.vars = self.global_ns.vars  # global frame sees global ns vars
        self.frames: list[Frame] = [gframe]
        self.current_ns: Namespace = self.global_ns
        self._depth = 0
        # Opaque host-object registry (blobs, pointers, interpreters).
        self._objects: dict[str, Any] = {}
        self._obj_seq = itertools.count(1)
        # Provided / loadable packages: name -> (version, loader)
        self.package_loaders: dict[str, tuple[str, Callable[["Interp"], None]]] = {}
        self.packages_provided: dict[str, str] = {}
        # Output sink for puts (tests capture this).
        self.stdout: list[str] = []
        self.echo = True  # also print to real stdout
        # --- compilation fast path ---------------------------------------
        # cmd_epoch is bumped by register/unregister (and therefore by
        # proc redefinition and rename); every CompiledCommand's
        # resolved-command pointer is tagged with the epoch it was
        # looked up under and re-resolves when they differ.
        self.compile_enabled = compile_enabled
        self.cmd_epoch = 0
        self._code_cache: LRUCache[str, CompiledScript] = LRUCache(4096)
        self.cache_stats = InterpCacheStats()
        # --- bytecode VM ---------------------------------------------------
        self.vm_stats = VMStats()
        if self.exec_vm:
            from . import vm as _vm
            from .compile import compile_script_code as _vm_compile

            self._vm_run_script = _vm.run_script
            self._vm_call_proc = _vm.call_proc
            self._vm_proc_code = _vm.proc_code
            self._vm_compile_script = _vm_compile
            self._vm_code_cache: LRUCache[str, Any] = LRUCache(2048)
        if register_core:
            from .commands import register_all

            register_all(self)

    # -- object registry --------------------------------------------------

    def wrap_object(self, obj: Any, prefix: str = "obj") -> str:
        handle = "_%s#%d" % (prefix, next(self._obj_seq))
        self._objects[handle] = obj
        return handle

    def unwrap(self, handle: str) -> Any:
        try:
            return self._objects[handle]
        except KeyError:
            raise TclError("invalid object handle %r" % handle) from None

    def has_object(self, handle: str) -> bool:
        return handle in self._objects

    def release_object(self, handle: str) -> None:
        self._objects.pop(handle, None)

    # -- variables ---------------------------------------------------------

    def _resolve_ns(self, qualified: str) -> tuple[Namespace, str]:
        """Split a qualified variable name into (namespace, tail)."""
        name = qualified.lstrip(":")
        if "::" in name:
            ns_name, tail = name.rsplit("::", 1)
            ns = self.namespaces.get(ns_name)
            if ns is None:
                raise TclError(
                    'namespace "%s" does not exist (variable "%s")'
                    % (ns_name, qualified)
                )
            return ns, tail
        return self.global_ns, name

    def _var_cell(self, name: str, create: bool) -> Var | None:
        if "::" in name:
            ns, tail = self._resolve_ns(name)
            cell = ns.vars.get(tail)
            if cell is None and create:
                cell = Var()
                ns.vars[tail] = cell
            return cell
        frame = self.frames[-1]
        cell = frame.vars.get(name)
        if cell is None and create:
            cell = Var()
            frame.vars[name] = cell
        return cell

    def get_var(self, name: str) -> str:
        cell = self._var_cell(name, create=False)
        if cell is None:
            raise TclError('can\'t read "%s": no such variable' % name)
        return cell.value

    def set_var(self, name: str, value: Any) -> str:
        sval = value if isinstance(value, str) else to_string(value)
        cell = self._var_cell(name, create=True)
        assert cell is not None
        cell.value = sval
        return sval

    def unset_var(self, name: str) -> None:
        if "::" in name:
            ns, tail = self._resolve_ns(name)
            if tail not in ns.vars:
                raise TclError('can\'t unset "%s": no such variable' % name)
            del ns.vars[tail]
            return
        frame = self.frames[-1]
        if name not in frame.vars:
            raise TclError('can\'t unset "%s": no such variable' % name)
        del frame.vars[name]
        frame.version += 1  # invalidate VM slot-cell caches

    def var_exists(self, name: str) -> bool:
        return self._var_cell(name, create=False) is not None

    def link_var(self, local_name: str, target_frame: Frame, target_name: str) -> None:
        """Implement upvar/global: alias local_name to a cell elsewhere."""
        cell = target_frame.vars.get(target_name)
        if cell is None:
            cell = Var()
            target_frame.vars[target_name] = cell
        frame = self.frames[-1]
        frame.vars[local_name] = cell
        frame.version += 1  # the local name now aliases a foreign cell

    def link_ns_var(self, local_name: str, ns: Namespace, target_name: str) -> None:
        cell = ns.vars.get(target_name)
        if cell is None:
            cell = Var()
            ns.vars[target_name] = cell
        frame = self.frames[-1]
        frame.vars[local_name] = cell
        frame.version += 1

    # -- namespaces ---------------------------------------------------------

    def namespace(self, name: str, create: bool = False) -> Namespace:
        key = name.lstrip(":")
        ns = self.namespaces.get(key)
        if ns is None:
            if not create:
                raise TclError('unknown namespace "%s"' % name)
            ns = Namespace(key)
            self.namespaces[key] = ns
        return ns

    # -- commands ------------------------------------------------------------

    def register(self, name: str, fn: CommandFn) -> None:
        self.commands[name.lstrip(":")] = fn
        self.cmd_epoch += 1  # invalidate compiled command-pointer caches

    def unregister(self, name: str) -> None:
        self.commands.pop(name.lstrip(":"), None)
        self.cmd_epoch += 1

    def qualify(self, name: str) -> str:
        """Fully qualify a command name relative to the current namespace."""
        if name.startswith("::"):
            return name.lstrip(":")
        if self.current_ns.name and not name.startswith("::"):
            cand = self.current_ns.name + "::" + name
            if cand in self.commands:
                return cand
        return name

    def lookup_command(self, name: str) -> CommandFn | None:
        return self.commands.get(self.qualify(name))

    # -- evaluation -----------------------------------------------------------

    def eval(self, script: str) -> str:
        """Evaluate a script; returns the result of its last command."""
        if self.exec_vm:
            if self._depth >= self.MAX_DEPTH:
                raise TclError("too many nested evaluations (infinite loop?)")
            self._depth += 1
            try:
                code = self.vm_compiled(script)
                if type(code) is CompiledCommand:
                    # Single literal command (the shape of every
                    # dataflow rule action): dispatch straight through
                    # the shared per-command path — no script Code
                    # object, no root VM frame.  Proc bodies still run
                    # on the VM via TclProc.__call__.
                    return self._run_compiled(code)
                return self._vm_run_script(self, code)
            finally:
                self._depth -= 1
        if self.compile_enabled:
            return self.eval_compiled(self.compiled(script))
        # Interpreted fallback (compile_enabled=False): walk the parsed
        # representation directly, substituting per word per call.
        if self._depth >= self.MAX_DEPTH:
            raise TclError("too many nested evaluations (infinite loop?)")
        self._depth += 1
        try:
            try:
                cmds = parse_cached(script)
            except TclParseError as e:
                raise TclError(str(e)) from None
            result = ""
            for cmd in cmds:
                result = self._run_command(cmd)
            return result
        finally:
            self._depth -= 1

    def vm_compiled(self, script: str):
        """Fetch (or lower) the bytecode form of a script, LRU-cached.

        Mirrors :meth:`compiled`; hit/miss totals feed both the shared
        ``tcl.compile.*`` counters and the VM's own ``tcl.vm.code_*``.
        """
        code = self._vm_code_cache.get(script)
        if code is None:
            code = self._vm_lower(script)
            self._vm_code_cache.put(script, code)
            self.vm_stats.code_misses += 1
            self.cache_stats.misses += 1
        else:
            self.vm_stats.code_hits += 1
            self.cache_stats.hits += 1
        return code

    def _vm_lower(self, script: str):
        """Lower one script for the VM backend.

        One-command scripts whose words are all literal skip bytecode
        entirely: lowering them to a :class:`CompiledCommand` avoids
        the per-script Code build and root frame, which dominates for
        the unique single-command strings the dataflow engine emits.
        Everything else gets the full bytecode treatment.
        """
        try:
            cmds = parse_cached(script)
        except TclParseError as e:
            raise TclError(str(e)) from None
        if len(cmds) == 1:
            cc = CompiledCommand(cmds[0])
            if cc.argv is not None and cc.argv[0] not in _SCRIPT_BUILTINS:
                return cc
        return self._vm_compile_script(self, script)

    def compiled(self, script: str) -> CompiledScript:
        """Fetch (or build) the compiled form of a script, LRU-cached.

        Loop commands call this once per loop entry and re-run the
        result via :meth:`eval_compiled` with no per-iteration lookups.
        """
        code = self._code_cache.get(script)
        if code is None:
            code = self.compile_script(script)
            self._code_cache.put(script, code)
        else:
            self.cache_stats.hits += 1
        return code

    def compile_script(self, script: str) -> CompiledScript:
        """Compile a script to its specialized per-command form (uncached).

        The result is owned by this interpreter; prefer
        :meth:`compiled` unless the caller caches the result itself.
        """
        self.cache_stats.misses += 1
        try:
            cmds = parse_cached(script)
        except TclParseError as e:
            raise TclError(str(e)) from None
        return [CompiledCommand(cmd) for cmd in cmds]

    def eval_compiled(self, code: CompiledScript) -> str:
        """Run a compiled script (see :meth:`compile_script`)."""
        if self._depth >= self.MAX_DEPTH:
            raise TclError("too many nested evaluations (infinite loop?)")
        self._depth += 1
        try:
            result = ""
            for cc in code:
                result = self._run_compiled(cc)
            return result
        finally:
            self._depth -= 1

    def _run_compiled(self, cc: CompiledCommand) -> str:
        if cc.argv is not None:
            # Literal-only command: argv precomputed at compile time.
            argv = cc.argv
            tail = cc.argv_tail
        else:
            argv = []
            for subst, expand in cc.words:  # type: ignore[union-attr]
                val = subst(self)
                if expand:
                    argv.extend(parse_list(val))
                else:
                    argv.append(val)
            if not argv:
                return ""
            tail = None
        name = argv[0]
        fn = cc._fn
        if (
            fn is None
            or cc._epoch != self.cmd_epoch
            or cc._ns is not self.current_ns
            or cc._name != name
        ):
            fn = self.lookup_command(name)
            if fn is not None:
                cc._fn = fn
                cc._epoch = self.cmd_epoch
                cc._ns = self.current_ns
                cc._name = name
                # Specialize literal `expr {...}`: precompile the AST and
                # evaluate it directly on later runs.  Tied to the fn
                # cache, so re-registering `expr` rebuilds the spec.
                if (
                    tail is not None
                    and len(argv) == 2
                    and getattr(fn, "expr_builtin", False)
                ):
                    try:
                        cc._expr_node = compile_expr(argv[1])
                    except TclError:
                        cc._expr_node = None
                else:
                    cc._expr_node = None
        if fn is None:
            fn = self.commands.get("unknown")
            if fn is None:
                raise TclError('invalid command name "%s"' % name)
            return self._finish_command(fn, ["unknown"] + list(argv), cc.line, 1)
        node = cc._expr_node
        try:
            if node is not None:
                result = eval_node(self, node)
            else:
                result = fn(self, tail if tail is not None else argv[1:])
        except (TclReturn, TclBreak, TclContinue):
            raise
        except TclError as e:
            e.add_info('"%s" (line %d)' % (_abbrev(argv), cc.line))
            raise
        except RecursionError:
            raise
        except Exception as e:  # host (Python) error surfaces as Tcl error
            err = TclError("%s: %s" % (type(e).__name__, e))
            err.add_info('"%s" (line %d)' % (_abbrev(argv), cc.line))
            err.__cause__ = e
            raise err from e
        if result is None:
            return ""
        return result if isinstance(result, str) else to_string(result)

    def _finish_command(
        self, fn: CommandFn, argv: list[str], line: int, skip: int
    ) -> str:
        """Slow-path dispatch through ``unknown`` with error decoration."""
        try:
            result = fn(self, argv[skip:])
        except (TclReturn, TclBreak, TclContinue):
            raise
        except TclError as e:
            e.add_info('"%s" (line %d)' % (_abbrev(argv), line))
            raise
        except RecursionError:
            raise
        except Exception as e:
            err = TclError("%s: %s" % (type(e).__name__, e))
            err.add_info('"%s" (line %d)' % (_abbrev(argv), line))
            err.__cause__ = e
            raise err from e
        if result is None:
            return ""
        return result if isinstance(result, str) else to_string(result)

    def _subst_word(self, word: Word) -> str:
        if word.literal is not None:
            return word.literal
        parts: list[str] = []
        for kind, text in word.segments:
            if kind == "lit":
                parts.append(text)
            elif kind == "var":
                parts.append(self.get_var(text))
            else:  # cmd
                parts.append(self.eval(text))
        return "".join(parts)

    def _run_command(self, cmd: Command) -> str:
        argv: list[str] = []
        for word in cmd.words:
            val = self._subst_word(word)
            if word.expand:
                argv.extend(parse_list(val))
            else:
                argv.append(val)
        if not argv:
            return ""
        name = argv[0]
        fn = self.lookup_command(name)
        if fn is None:
            fn = self.commands.get("unknown")
            if fn is None:
                raise TclError('invalid command name "%s"' % name)
            argv = ["unknown"] + argv
        try:
            result = fn(self, argv[1:])
        except (TclReturn, TclBreak, TclContinue):
            raise
        except TclError as e:
            e.add_info('"%s" (line %d)' % (_abbrev(argv), cmd.line))
            raise
        except RecursionError:
            raise
        except Exception as e:  # host (Python) error surfaces as Tcl error
            err = TclError("%s: %s" % (type(e).__name__, e))
            err.add_info('"%s" (line %d)' % (_abbrev(argv), cmd.line))
            err.__cause__ = e
            raise err from e
        if result is None:
            return ""
        return result if isinstance(result, str) else to_string(result)

    # -- host conveniences ------------------------------------------------------

    def call(self, name: str, *args: Any) -> str:
        """Call a Tcl command from Python with automatic stringification."""
        fn = self.lookup_command(name)
        if fn is None:
            raise TclError('invalid command name "%s"' % name)
        argv = [a if isinstance(a, str) else to_string(a) for a in args]
        result = fn(self, argv)
        if result is None:
            return ""
        return result if isinstance(result, str) else to_string(result)

    def puts(self, line: str) -> None:
        self.stdout.append(line)
        if self.echo:
            print(line)


def _abbrev(argv: list[str]) -> str:
    s = " ".join(argv)
    return s if len(s) <= 60 else s[:57] + "..."
