"""The Tcl interpreter core: frames, namespaces, dispatch, substitution.

Values follow the everything-is-a-string model: command arguments and
results are Python ``str``.  Opaque host objects (blobs, interpreter
handles, native pointers) are stored in an object registry and passed
through Tcl as handle strings, the same trick SWIG uses for pointers.
"""

from __future__ import annotations

import itertools
import sys
from typing import Any, Callable

# A Tcl evaluation level costs ~12 Python frames; make room for the
# interpreter's own MAX_DEPTH guard to fire before CPython's.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))

from .errors import TclBreak, TclContinue, TclError, TclReturn
from .expr import to_string
from .listutil import format_list, parse_list
from .parser import Command, TclParseError, Word, parse_cached

CommandFn = Callable[["Interp", list[str]], Any]


class Var:
    """A variable cell, shared between frames by upvar/global links."""

    __slots__ = ("value",)

    def __init__(self, value: str = ""):
        self.value = value


class Namespace:
    __slots__ = ("name", "vars")

    def __init__(self, name: str):
        self.name = name  # fully qualified, "" for global
        self.vars: dict[str, Var] = {}


class Frame:
    __slots__ = ("vars", "ns", "label")

    def __init__(self, ns: Namespace, label: str = "<frame>"):
        self.vars: dict[str, Var] = {}
        self.ns = ns
        self.label = label


class TclProc:
    """A user-defined procedure (``proc``)."""

    __slots__ = ("name", "params", "body", "ns")

    def __init__(
        self,
        name: str,
        params: list[tuple[str, str | None]],
        body: str,
        ns: Namespace,
    ):
        self.name = name
        self.params = params  # (name, default|None); last may be "args"
        self.body = body
        self.ns = ns

    def __call__(self, interp: "Interp", argv: list[str]) -> str:
        frame = Frame(self.ns, label=self.name)
        params = self.params
        n_named = len(params)
        has_varargs = bool(params) and params[-1][0] == "args"
        if has_varargs:
            n_named -= 1
        if len(argv) > n_named and not has_varargs:
            raise TclError(
                'wrong # args: should be "%s %s"'
                % (self.name, " ".join(p for p, _ in params))
            )
        for i in range(n_named):
            pname, default = params[i]
            if i < len(argv):
                frame.vars[pname] = Var(argv[i])
            elif default is not None:
                frame.vars[pname] = Var(default)
            else:
                raise TclError(
                    'wrong # args: should be "%s %s"'
                    % (self.name, " ".join(p for p, _ in params))
                )
        if has_varargs:
            frame.vars["args"] = Var(format_list(argv[n_named:]))
        interp.frames.append(frame)
        saved_ns = interp.current_ns
        interp.current_ns = self.ns
        try:
            return interp.eval(self.body)
        except TclReturn as r:
            if r.code == 1:
                raise TclError(r.value) from None
            return r.value
        finally:
            interp.frames.pop()
            interp.current_ns = saved_ns


class Interp:
    """A Tcl interpreter instance.

    Each MPI rank in the runtime hosts one of these; rule bodies and
    worker task fragments are evaluated here.
    """

    MAX_DEPTH = 900

    def __init__(self, register_core: bool = True):
        self.global_ns = Namespace("")
        self.namespaces: dict[str, Namespace] = {"": self.global_ns}
        self.commands: dict[str, CommandFn] = {}
        gframe = Frame(self.global_ns, label="<global>")
        gframe.vars = self.global_ns.vars  # global frame sees global ns vars
        self.frames: list[Frame] = [gframe]
        self.current_ns: Namespace = self.global_ns
        self._depth = 0
        # Opaque host-object registry (blobs, pointers, interpreters).
        self._objects: dict[str, Any] = {}
        self._obj_seq = itertools.count(1)
        # Provided / loadable packages: name -> (version, loader)
        self.package_loaders: dict[str, tuple[str, Callable[["Interp"], None]]] = {}
        self.packages_provided: dict[str, str] = {}
        # Output sink for puts (tests capture this).
        self.stdout: list[str] = []
        self.echo = True  # also print to real stdout
        if register_core:
            from .commands import register_all

            register_all(self)

    # -- object registry --------------------------------------------------

    def wrap_object(self, obj: Any, prefix: str = "obj") -> str:
        handle = "_%s#%d" % (prefix, next(self._obj_seq))
        self._objects[handle] = obj
        return handle

    def unwrap(self, handle: str) -> Any:
        try:
            return self._objects[handle]
        except KeyError:
            raise TclError("invalid object handle %r" % handle) from None

    def has_object(self, handle: str) -> bool:
        return handle in self._objects

    def release_object(self, handle: str) -> None:
        self._objects.pop(handle, None)

    # -- variables ---------------------------------------------------------

    def _resolve_ns(self, qualified: str) -> tuple[Namespace, str]:
        """Split a qualified variable name into (namespace, tail)."""
        name = qualified.lstrip(":")
        if "::" in name:
            ns_name, tail = name.rsplit("::", 1)
            ns = self.namespaces.get(ns_name)
            if ns is None:
                raise TclError(
                    'namespace "%s" does not exist (variable "%s")'
                    % (ns_name, qualified)
                )
            return ns, tail
        return self.global_ns, name

    def _var_cell(self, name: str, create: bool) -> Var | None:
        if "::" in name:
            ns, tail = self._resolve_ns(name)
            cell = ns.vars.get(tail)
            if cell is None and create:
                cell = Var()
                ns.vars[tail] = cell
            return cell
        frame = self.frames[-1]
        cell = frame.vars.get(name)
        if cell is None and create:
            cell = Var()
            frame.vars[name] = cell
        return cell

    def get_var(self, name: str) -> str:
        cell = self._var_cell(name, create=False)
        if cell is None:
            raise TclError('can\'t read "%s": no such variable' % name)
        return cell.value

    def set_var(self, name: str, value: Any) -> str:
        sval = value if isinstance(value, str) else to_string(value)
        cell = self._var_cell(name, create=True)
        assert cell is not None
        cell.value = sval
        return sval

    def unset_var(self, name: str) -> None:
        if "::" in name:
            ns, tail = self._resolve_ns(name)
            if tail not in ns.vars:
                raise TclError('can\'t unset "%s": no such variable' % name)
            del ns.vars[tail]
            return
        frame = self.frames[-1]
        if name not in frame.vars:
            raise TclError('can\'t unset "%s": no such variable' % name)
        del frame.vars[name]

    def var_exists(self, name: str) -> bool:
        return self._var_cell(name, create=False) is not None

    def link_var(self, local_name: str, target_frame: Frame, target_name: str) -> None:
        """Implement upvar/global: alias local_name to a cell elsewhere."""
        cell = target_frame.vars.get(target_name)
        if cell is None:
            cell = Var()
            target_frame.vars[target_name] = cell
        self.frames[-1].vars[local_name] = cell

    def link_ns_var(self, local_name: str, ns: Namespace, target_name: str) -> None:
        cell = ns.vars.get(target_name)
        if cell is None:
            cell = Var()
            ns.vars[target_name] = cell
        self.frames[-1].vars[local_name] = cell

    # -- namespaces ---------------------------------------------------------

    def namespace(self, name: str, create: bool = False) -> Namespace:
        key = name.lstrip(":")
        ns = self.namespaces.get(key)
        if ns is None:
            if not create:
                raise TclError('unknown namespace "%s"' % name)
            ns = Namespace(key)
            self.namespaces[key] = ns
        return ns

    # -- commands ------------------------------------------------------------

    def register(self, name: str, fn: CommandFn) -> None:
        self.commands[name.lstrip(":")] = fn

    def unregister(self, name: str) -> None:
        self.commands.pop(name.lstrip(":"), None)

    def qualify(self, name: str) -> str:
        """Fully qualify a command name relative to the current namespace."""
        if name.startswith("::"):
            return name.lstrip(":")
        if self.current_ns.name and not name.startswith("::"):
            cand = self.current_ns.name + "::" + name
            if cand in self.commands:
                return cand
        return name

    def lookup_command(self, name: str) -> CommandFn | None:
        return self.commands.get(self.qualify(name))

    # -- evaluation -----------------------------------------------------------

    def eval(self, script: str) -> str:
        """Evaluate a script; returns the result of its last command."""
        if self._depth >= self.MAX_DEPTH:
            raise TclError("too many nested evaluations (infinite loop?)")
        self._depth += 1
        try:
            try:
                cmds = parse_cached(script)
            except TclParseError as e:
                raise TclError(str(e)) from None
            result = ""
            for cmd in cmds:
                result = self._run_command(cmd)
            return result
        finally:
            self._depth -= 1

    def _subst_word(self, word: Word) -> str:
        if word.literal is not None:
            return word.literal
        parts: list[str] = []
        for kind, text in word.segments:
            if kind == "lit":
                parts.append(text)
            elif kind == "var":
                parts.append(self.get_var(text))
            else:  # cmd
                parts.append(self.eval(text))
        return "".join(parts)

    def _run_command(self, cmd: Command) -> str:
        argv: list[str] = []
        for word in cmd.words:
            val = self._subst_word(word)
            if word.expand:
                argv.extend(parse_list(val))
            else:
                argv.append(val)
        if not argv:
            return ""
        name = argv[0]
        fn = self.lookup_command(name)
        if fn is None:
            fn = self.commands.get("unknown")
            if fn is None:
                raise TclError('invalid command name "%s"' % name)
            argv = ["unknown"] + argv
        try:
            result = fn(self, argv[1:])
        except (TclReturn, TclBreak, TclContinue):
            raise
        except TclError as e:
            e.add_info('"%s" (line %d)' % (_abbrev(argv), cmd.line))
            raise
        except RecursionError:
            raise
        except Exception as e:  # host (Python) error surfaces as Tcl error
            err = TclError("%s: %s" % (type(e).__name__, e))
            err.add_info('"%s" (line %d)' % (_abbrev(argv), cmd.line))
            err.__cause__ = e
            raise err from e
        if result is None:
            return ""
        return result if isinstance(result, str) else to_string(result)

    # -- host conveniences ------------------------------------------------------

    def call(self, name: str, *args: Any) -> str:
        """Call a Tcl command from Python with automatic stringification."""
        fn = self.lookup_command(name)
        if fn is None:
            raise TclError('invalid command name "%s"' % name)
        argv = [a if isinstance(a, str) else to_string(a) for a in args]
        result = fn(self, argv)
        if result is None:
            return ""
        return result if isinstance(result, str) else to_string(result)

    def puts(self, line: str) -> None:
        self.stdout.append(line)
        if self.echo:
            print(line)


def _abbrev(argv: list[str]) -> str:
    s = " ".join(argv)
    return s if len(s) <= 60 else s[:57] + "..."
