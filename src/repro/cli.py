"""Command-line interface: the ``stc`` + ``turbine`` analog.

Usage::

    python -m repro compile program.swift [-O2] [-o program.tic]
    python -m repro run program.swift [--workers N] [--servers N]
        [--engines N] [-O2] [--arg name=value ...] [--trace] [--monitor]
    python -m repro runtcl program.tic [--workers N]
    python -m repro profile program.swift [--chrome trace.json]
    python -m repro trace program.swift [-o trace.json]
    python -m repro analyze program.swift [--dot run.dot] [--json out.json]
    python -m repro analyze saved.trace.json
    python -m repro chaos [--trials N] [--intensity light|medium|brutal]
        [--workloads NAME ...] [--out DIR]
    python -m repro postmortem blackbox-engine-lost-1234-1.json [--last N]
    python -m repro submit program.swift --scheduler slurm --nodes 512

``compile`` writes the generated Turbine Tcl (a ``.tic`` file, as real
STC calls them); ``run`` compiles and executes on the thread-backed
runtime (``--monitor`` adds a live one-line progress readout); ``runtcl``
executes an already-compiled program; ``profile`` runs with the
:mod:`repro.obs` tracer enabled and prints the per-category/per-worker
breakdown; ``trace`` runs traced and writes a Chrome ``trace_event``
JSON (load in chrome://tracing or Perfetto); ``analyze`` reconstructs
the run DAG from provenance events and prints the critical path with
per-hop stall attribution (accepts either a Swift source to run traced
or a ``.trace.json`` saved earlier); ``chaos`` runs the randomized
fault-injection campaign of :mod:`repro.chaos` (every ``run``-style
command also accepts ``--audit`` for run-invariant checking and
``--fault-plan`` to replay a chaos repro artifact); ``postmortem``
merges the per-rank flight-recorder rings of a ``blackbox-*.json``
failure artifact into one causally-ordered cross-rank timeline (every
``run``-style command dumps one on failure unless ``--no-flightrec``);
``submit`` renders the batch submission script for a real machine.
"""

from __future__ import annotations

import argparse
import sys

from .api import SwiftRuntime
from .core import SwiftError, compile_swift
from .launch import JobSpec, render
from .turbine import RuntimeConfig, run_turbine_program


def _add_runtime_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--servers", type=int, default=1)
    p.add_argument("--engines", type=int, default=1)
    p.add_argument(
        "--arg",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="program argument readable via argv()",
    )
    p.add_argument("--trace", action="store_true", help="collect runtime logs")
    p.add_argument(
        "--monitor",
        action="store_true",
        help="print a live one-line progress/utilization readout",
    )
    p.add_argument(
        "--monitor-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="seconds between monitor samples (with --monitor)",
    )
    p.add_argument(
        "--interp-mode",
        choices=["retain", "reinit"],
        default="retain",
        help="embedded interpreter state policy (paper III-C)",
    )
    p.add_argument(
        "--tcl-exec",
        choices=["vm", "ast"],
        default="vm",
        help="Tcl execution backend: bytecode VM (default) or compiled-AST "
        "interpretation",
    )
    p.add_argument(
        "--on-error",
        choices=["retry", "fail_fast", "continue"],
        default="retry",
        help="task-failure policy: retry (default), fail_fast, or continue",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-executions allowed per failed task (with --on-error retry)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit; the run shuts down in an orderly way on expiry",
    )
    p.add_argument(
        "--replicate",
        dest="replicate",
        action="store_true",
        default=None,
        help="replicate server state to a buddy server (survives server "
        "death; needs --servers >= 2)",
    )
    p.add_argument(
        "--no-replicate",
        dest="replicate",
        action="store_false",
        help="disable server replication even when it would default on",
    )
    p.add_argument(
        "--journal",
        dest="journal",
        action="store_true",
        default=None,
        help="journal engine rule tables to their anchor server (survives "
        "engine death; needs --engines >= 2)",
    )
    p.add_argument(
        "--no-journal",
        dest="journal",
        action="store_false",
        help="disable rule-table journaling even when it would default on",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task watchdog: a task running longer than this is "
        "abandoned (TaskTimeout) and retried elsewhere",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write periodic consistent checkpoints to PATH",
    )
    p.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between checkpoints (with --checkpoint)",
    )
    p.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="resume from a checkpoint instead of running the program "
        "entry point (world shape must match the checkpointed run)",
    )
    p.add_argument(
        "--audit",
        action="store_true",
        help="check run invariants at shutdown (termination-counter "
        "conservation, no leaked leases/journals/refcounts) and report "
        "violations",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject faults from a FaultPlan JSON (a chaos repro "
        "artifact or a bare plan image) — replays a chaos trial",
    )
    p.add_argument(
        "--no-flightrec",
        dest="flightrec",
        action="store_false",
        default=True,
        help="disable the always-on flight recorder (no black-box "
        "artifact on failure)",
    )
    p.add_argument(
        "--blackbox-dir",
        default=".",
        metavar="DIR",
        help="where to dump blackbox-*.json on failure (default: "
        "current directory; needs the flight recorder on)",
    )


def _runtime_config(
    ns: argparse.Namespace, echo: bool, trace: bool
) -> RuntimeConfig:
    """One funnel from parsed CLI flags to a RuntimeConfig."""

    def _monitor_line(line: str) -> None:
        print(line, file=sys.stderr)

    faults = None
    if getattr(ns, "fault_plan", None):
        from .chaos.runner import load_fault_plan

        faults = load_fault_plan(ns.fault_plan)
    return RuntimeConfig.of(
        workers=ns.workers,
        servers=ns.servers,
        engines=ns.engines,
        echo=echo,
        trace=trace,
        monitor=ns.monitor,
        monitor_interval=ns.monitor_interval,
        monitor_out=_monitor_line if ns.monitor else None,
        interp_mode=ns.interp_mode,
        tcl_exec=ns.tcl_exec,
        on_error=ns.on_error,
        max_retries=ns.max_retries,
        deadline=ns.deadline,
        replicate=ns.replicate,
        journal=ns.journal,
        task_timeout=ns.task_timeout,
        checkpoint_path=ns.checkpoint,
        checkpoint_interval=ns.checkpoint_interval,
        restore=ns.restore,
        audit=ns.audit,
        faults=faults,
        flightrec=ns.flightrec,
        blackbox_dir=ns.blackbox_dir if ns.flightrec else None,
        args=_parse_args_list(ns.arg),
    )


def _report_run_failure(e) -> int:
    """Print a failed run's diagnostic plus, when the flight recorder
    dumped a black box, the `repro postmortem` pointer."""
    print("run failed: %s" % e, file=sys.stderr)
    path = getattr(e, "blackbox_path", None)
    if path:
        print(
            "black box written to %s (inspect with `repro postmortem %s`)"
            % (path, path),
            file=sys.stderr,
        )
    return 3


def _report_failures(result) -> int:
    """Exit status for a completed run: with ``--on-error continue``
    the run drains past permanent failures, but they must still be
    reported and reflected in the exit code."""
    if result.ok:
        return 0
    if result.failures:
        print(
            "run completed with %d permanent failure(s):" % len(result.failures),
            file=sys.stderr,
        )
        for f in result.failures:
            print(
                "  rank %d %s (%d attempt(s)): %s"
                % (f.rank, f.kind, f.attempts, f.error),
                file=sys.stderr,
            )
    if result.quarantined:
        print(
            "run completed with %d quarantined task(s):" % len(result.quarantined),
            file=sys.stderr,
        )
        for q in result.quarantined:
            chain = ", ".join("rank %d (%s)" % (r, why) for r, why in q.chain)
            print(
                "  %s %s (%d attempt(s)) killed: %s"
                % (q.kind, q.payload, q.attempts, chain),
                file=sys.stderr,
            )
    return 3


def _report_audit(result) -> int:
    """Exit status contribution of ``--audit``: a run that completes
    but violates a run invariant must fail loudly."""
    if result.audit is None or result.audit.ok:
        return 0
    print(result.audit.render(), file=sys.stderr)
    return 5


def _parse_args_list(pairs: list[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit("--arg expects NAME=VALUE, got %r" % pair)
        key, _, value = pair.partition("=")
        out[key] = value
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Swift/T-style interlanguage parallel scripting",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile Swift to Turbine Tcl")
    p_compile.add_argument("source")
    p_compile.add_argument("-o", "--output", default=None)
    for level in (0, 1, 2):
        p_compile.add_argument(
            "-O%d" % level,
            dest="opt",
            action="store_const",
            const=level,
        )
    p_compile.set_defaults(opt=1)

    p_run = sub.add_parser("run", help="compile and run a Swift program")
    p_run.add_argument("source")
    for level in (0, 1, 2):
        p_run.add_argument(
            "-O%d" % level, dest="opt", action="store_const", const=level
        )
    p_run.set_defaults(opt=1)
    _add_runtime_flags(p_run)

    p_runtcl = sub.add_parser("runtcl", help="run a compiled .tic program")
    p_runtcl.add_argument("program")
    _add_runtime_flags(p_runtcl)

    p_profile = sub.add_parser(
        "profile", help="run a Swift program traced and print a profile"
    )
    p_profile.add_argument("source")
    for level in (0, 1, 2):
        p_profile.add_argument(
            "-O%d" % level, dest="opt", action="store_const", const=level
        )
    p_profile.set_defaults(opt=1)
    _add_runtime_flags(p_profile)
    p_profile.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="also write a Chrome trace_event JSON to PATH",
    )

    p_trace = sub.add_parser(
        "trace", help="run a Swift program traced and write Chrome JSON"
    )
    p_trace.add_argument("source")
    for level in (0, 1, 2):
        p_trace.add_argument(
            "-O%d" % level, dest="opt", action="store_const", const=level
        )
    p_trace.set_defaults(opt=1)
    _add_runtime_flags(p_trace)
    p_trace.add_argument(
        "-o",
        "--output",
        default=None,
        help="trace JSON path (default: SOURCE with .trace.json suffix)",
    )

    p_analyze = sub.add_parser(
        "analyze",
        help="critical-path / stall analysis of a traced run "
        "(Swift source, or a saved .trace.json)",
    )
    p_analyze.add_argument(
        "source",
        help="Swift program to run traced, or a Chrome trace JSON "
        "written by `repro trace` (detected by .json suffix)",
    )
    for level in (0, 1, 2):
        p_analyze.add_argument(
            "-O%d" % level, dest="opt", action="store_const", const=level
        )
    p_analyze.set_defaults(opt=1)
    _add_runtime_flags(p_analyze)
    p_analyze.add_argument(
        "--dot",
        metavar="PATH",
        default=None,
        help="also write the run DAG as Graphviz DOT (critical path in red)",
    )
    p_analyze.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the analysis as JSON",
    )

    p_disasm = sub.add_parser(
        "disasm",
        help="disassemble a Tcl script's bytecode (and top-level procs)",
    )
    p_disasm.add_argument("source", help="a .tcl/.tic file to disassemble")

    p_chaos = sub.add_parser(
        "chaos",
        help="randomized fault-injection campaign over real workloads "
        "with run-invariant auditing and minimal-repro shrinking",
    )
    p_chaos.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="NAME",
        help="workloads to torture (default: every loadable workload)",
    )
    p_chaos.add_argument(
        "--trials",
        type=int,
        default=10,
        help="seeded trials per workload (default 10)",
    )
    p_chaos.add_argument(
        "--intensity",
        choices=["light", "medium", "brutal"],
        default="medium",
    )
    p_chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; trial k uses seed+k (default 0)",
    )
    p_chaos.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-trial hang deadline (default 60)",
    )
    p_chaos.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write shrunk repro artifacts and report.json here",
    )
    p_chaos.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="skip ddmin shrinking of violating plans",
    )
    p_chaos.add_argument(
        "--shrink-budget",
        type=int,
        default=24,
        help="max re-runs spent shrinking one violating plan",
    )
    p_chaos.add_argument(
        "--list",
        action="store_true",
        help="list registered workloads and exit",
    )

    p_post = sub.add_parser(
        "postmortem",
        help="cross-rank failure forensics over a blackbox-*.json "
        "flight-recorder artifact",
    )
    p_post.add_argument(
        "blackbox", help="a blackbox-*.json written on a failed run"
    )
    p_post.add_argument(
        "--last",
        type=int,
        default=12,
        metavar="N",
        help="events per rank in the merged timeline (default 12)",
    )

    p_submit = sub.add_parser(
        "submit", help="render a batch submission script"
    )
    p_submit.add_argument("source")
    p_submit.add_argument(
        "--scheduler", choices=["pbs", "slurm", "cobalt"], required=True
    )
    p_submit.add_argument("--nodes", type=int, default=1)
    p_submit.add_argument("--ppn", type=int, default=16)
    p_submit.add_argument("--walltime", type=int, default=3600)
    p_submit.add_argument("--queue", default="default")
    p_submit.add_argument("--name", default=None)

    return parser


def main(argv: list[str] | None = None) -> int:
    ns = build_parser().parse_args(argv)
    try:
        return _dispatch(ns)
    except SwiftError as e:
        print("swift: error: %s" % e, file=sys.stderr)
        return 2
    except OSError as e:
        print("repro: %s" % e, file=sys.stderr)
        return 1


def _dispatch(ns: argparse.Namespace) -> int:
    if ns.command == "compile":
        with open(ns.source, "r", encoding="utf-8") as f:
            source = f.read()
        compiled = compile_swift(source, opt=ns.opt)
        output = ns.output or _default_output(ns.source)
        with open(output, "w", encoding="utf-8") as f:
            f.write(compiled.tcl_text)
        print(
            "compiled %s -> %s (%d procs, %d lines, -O%d)"
            % (ns.source, output, compiled.n_procs, compiled.n_lines, ns.opt)
        )
        return 0

    if ns.command in ("run", "profile", "trace"):
        with open(ns.source, "r", encoding="utf-8") as f:
            source = f.read()
        traced = ns.command != "run" or ns.trace
        rt = SwiftRuntime(
            opt=ns.opt,
            config=_runtime_config(ns, echo=ns.command == "run", trace=traced),
        )
        from .faults import DeadlineExceeded, EngineLost, TaskError
        from .mpi.launcher import RankFailure

        try:
            result = rt.run(source)
        except (RankFailure, TaskError, DeadlineExceeded, EngineLost) as e:
            return _report_run_failure(e)
        if ns.command == "run":
            if traced:
                print(result.profile.render(), file=sys.stderr)
            return _report_failures(result) or _report_audit(result)
        if ns.command == "profile":
            print(result.profile.render())
            if ns.chrome:
                result.trace.save_chrome(ns.chrome)
                print("\nchrome trace written to %s" % ns.chrome)
            return 0
        # trace
        out = ns.output or (ns.source.rsplit(".", 1)[0] + ".trace.json")
        result.trace.save_chrome(out)
        print(
            "trace written to %s (%d events, %d dropped); load in "
            "chrome://tracing or https://ui.perfetto.dev"
            % (out, len(result.trace), result.trace.dropped)
        )
        return 0

    if ns.command == "analyze":
        from .obs import Analysis, Trace

        if ns.source.endswith(".json"):
            trace = Trace.from_chrome(ns.source)
        else:
            with open(ns.source, "r", encoding="utf-8") as f:
                source = f.read()
            rt = SwiftRuntime(
                opt=ns.opt,
                config=_runtime_config(ns, echo=False, trace=True),
            )
            from .faults import DeadlineExceeded, EngineLost, TaskError
            from .mpi.launcher import RankFailure

            try:
                result = rt.run(source)
            except (RankFailure, TaskError, DeadlineExceeded, EngineLost) as e:
                return _report_run_failure(e)
            trace = result.trace
        analysis = Analysis.from_trace(trace)
        print(analysis.render())
        if ns.dot:
            with open(ns.dot, "w", encoding="utf-8") as f:
                f.write(analysis.to_dot() + "\n")
            print("dot graph written to %s" % ns.dot, file=sys.stderr)
        if ns.json:
            import json as _json

            with open(ns.json, "w", encoding="utf-8") as f:
                _json.dump(analysis.to_json(), f, indent=1)
            print("analysis JSON written to %s" % ns.json, file=sys.stderr)
        return 0 if analysis.critical_path else 4

    if ns.command == "runtcl":
        with open(ns.program, "r", encoding="utf-8") as f:
            program = f.read()
        config = _runtime_config(ns, echo=True, trace=ns.trace)
        from .faults import DeadlineExceeded, EngineLost, TaskError
        from .mpi.launcher import RankFailure

        try:
            result = run_turbine_program(program, config)
        except (RankFailure, TaskError, DeadlineExceeded, EngineLost) as e:
            return _report_run_failure(e)
        if ns.trace:
            print(result.profile.render(), file=sys.stderr)
        return _report_failures(result) or _report_audit(result)

    if ns.command == "disasm":
        with open(ns.source, "r", encoding="utf-8") as f:
            script = f.read()
        return _disasm(script, ns.source)

    if ns.command == "chaos":
        from .chaos import load_workloads, run_chaos

        if ns.list:
            for wl in load_workloads():
                print(
                    "%-24s workers=%d servers=%d engines=%d"
                    % (wl.name, wl.workers, wl.servers, wl.engines)
                )
            return 0
        report = run_chaos(
            workload_names=ns.workloads,
            trials=ns.trials,
            intensity=ns.intensity,
            seed=ns.seed,
            deadline=ns.deadline,
            out_dir=ns.out,
            shrink=ns.shrink,
            shrink_budget=ns.shrink_budget,
            log=lambda line: print(line, file=sys.stderr),
        )
        print(report.render())
        return 0 if report.ok else 5

    if ns.command == "postmortem":
        from .obs.postmortem import load_blackbox, render_postmortem

        try:
            box = load_blackbox(ns.blackbox)
        except ValueError as e:
            print("postmortem: %s" % e, file=sys.stderr)
            return 2
        print(render_postmortem(box, last=ns.last))
        return 0

    if ns.command == "submit":
        spec = JobSpec(
            name=ns.name or ns.source.rsplit("/", 1)[-1].split(".")[0],
            nodes=ns.nodes,
            procs_per_node=ns.ppn,
            walltime_s=ns.walltime,
            queue=ns.queue,
            program=_default_output(ns.source),
        )
        print(render(spec, ns.scheduler), end="")
        return 0

    raise AssertionError("unhandled command %r" % ns.command)


def _disasm(script: str, name: str) -> int:
    """Print the bytecode for a Tcl script and its top-level procs."""
    from .tcl.compile import compile_script_code
    from .tcl.interp import Interp
    from .tcl.parser import parse_script
    from .tcl.vm import proc_code

    interp = Interp()
    code = compile_script_code(interp, script, name=name)
    print(code.dis())
    # Disassemble bodies of top-level literal `proc` definitions: run
    # just those commands so TclProc objects exist, then compile each.
    define = interp.lookup_command("proc")
    for cmd in parse_script(script):
        words = [w.literal for w in cmd.words]
        if (
            len(words) == 4
            and words[0] == "proc"
            and all(w is not None for w in words)
        ):
            define(interp, words[1:])
            proc = interp.lookup_command(words[1])
            pcode = proc_code(interp, proc)
            print()
            if pcode is None:
                print("proc %s: body not bytecode-compilable" % words[1])
            else:
                print(pcode.dis())
    return 0


def _default_output(source_path: str) -> str:
    base = source_path.rsplit(".", 1)[0]
    return base + ".tic"


if __name__ == "__main__":
    raise SystemExit(main())
