"""Communicators, point-to-point messaging, and collectives."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..obs.flightrec import _SLOT_POOL

_pc = time.perf_counter

ANY_SOURCE = -1
ANY_TAG = -1

# Reserved internal tag space for collectives (user tags must be >= 0
# and < _COLL_BASE).
_COLL_BASE = 1_000_000_000


class AbortError(RuntimeError):
    """The world was aborted (a peer rank raised)."""


class DeadlockError(RuntimeError):
    """A blocking receive timed out with no matching message."""


@dataclass
class Status:
    """Result metadata of a receive or probe."""

    source: int
    tag: int


@dataclass
class CommStats:
    """Per-rank traffic counters, used by benchmarks and tests."""

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0

    def add_send(self, payload: Any) -> int:
        size = _approx_size(payload)
        self.sends += 1
        self.bytes_sent += size
        return size


def _approx_size(obj: Any) -> int:
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 8
    if isinstance(obj, (list, tuple)):
        return 8 + sum(_approx_size(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(_approx_size(k) + _approx_size(v) for k, v in obj.items())
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return 64


class _Mailbox:
    """One rank's incoming message queue with tag/source matching."""

    __slots__ = ("lock", "cond", "messages")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        # (source, tag, payload, clock) — the clock is the sender's
        # Lamport stamp piggybacked for the flight recorder (0 when the
        # recorder is off).
        self.messages: list[tuple[int, int, Any, int]] = []

    def put(self, source: int, tag: int, payload: Any, clock: int = 0) -> None:
        with self.cond:
            self.messages.append((source, tag, payload, clock))
            self.cond.notify_all()

    def _match(self, source: int, tag: int) -> int:
        for i, (src, t, _, _) in enumerate(self.messages):
            if (source == ANY_SOURCE or src == source) and (
                tag == ANY_TAG or t == tag
            ):
                return i
        return -1

    def get(
        self,
        source: int,
        tag: int,
        timeout: float | None,
        aborted: threading.Event,
    ) -> tuple[Any, Status, int]:
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        with self.cond:
            while True:
                if aborted.is_set():
                    raise AbortError("world aborted during recv")
                i = self._match(source, tag)
                if i >= 0:
                    src, t, payload, clock = self.messages.pop(i)
                    return payload, Status(src, t), clock
                if deadline is None:
                    wait_t = 0.25
                else:
                    wait_t = min(0.25, deadline - _time.monotonic())
                    if wait_t <= 0:
                        raise DeadlockError(
                            "recv(source=%d, tag=%d) timed out" % (source, tag)
                        )
                self.cond.wait(timeout=wait_t)

    def probe(self, source: int, tag: int) -> Status | None:
        with self.cond:
            i = self._match(source, tag)
            if i < 0:
                return None
            src, t, _, _ = self.messages[i]
            return Status(src, t)


class World:
    """A set of ranks sharing an address space (one simulated MPI job).

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when set, every
    Comm records send instants and recv-wait spans into it (category
    ``mpi``).  ``faults`` is an optional :class:`repro.faults.FaultState`
    whose message rules can drop or delay sends.  ``flightrec`` is an
    optional :class:`repro.obs.FlightRecorder`; when set, every send
    and recv lands a header event in the rank's black-box ring and the
    sender's Lamport clock rides the message envelope.  When any is
    ``None`` — the default for tracer/faults — the instrumentation is a
    single pointer test per call.
    """

    def __init__(
        self,
        size: int,
        recv_timeout: float | None = 120.0,
        tracer: Any | None = None,
        faults: Any | None = None,
        flightrec: Any | None = None,
    ):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.recv_timeout = recv_timeout
        self.tracer = tracer
        self.faults = faults
        self.flightrec = flightrec
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.stats = [CommStats() for _ in range(size)]
        self.aborted = threading.Event()
        self.abort_reason: BaseException | None = None
        self._barrier = threading.Barrier(size)
        # rank -> callable returning a one-line state summary, appended
        # to recv-timeout hang reports (servers register lease tables,
        # replication lag, queue depths).
        self.diagnostics: dict[int, Any] = {}

    def comm(self, rank: int) -> "Comm":
        return Comm(self, rank)

    def abort(self, reason: BaseException | None = None) -> None:
        if reason is not None and self.abort_reason is None:
            self.abort_reason = reason
        self.aborted.set()
        # Wake all sleepers.
        for mb in self.mailboxes:
            with mb.cond:
                mb.cond.notify_all()
        try:
            self._barrier.abort()
        except Exception:
            pass


class Comm:
    """One rank's view of the world: MPI_COMM_WORLD analog."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise ValueError("rank %d out of range" % rank)
        self.world = world
        self.rank = rank
        # Flight-recorder fast path: this rank's ring plus the two
        # recorder constants, cached flat on the Comm so send/recv can
        # stamp slots inline.  The stamp runs once per message on every
        # rank, and at that volume the FlightRecorder method call is
        # the dominant cost — inlining it is what keeps the recorder
        # inside its 1.05x end-to-end budget
        # (bench_obs_overhead.test_flightrec_overhead_guard).
        fr = world.flightrec
        if fr is not None:
            self._fr_ring = fr._rings[rank]
            self._fr_cap = fr.capacity
            self._fr_epoch = fr.epoch
        else:
            self._fr_ring = None
            self._fr_cap = 0
            self._fr_epoch = 0.0

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if self.world.aborted.is_set():
            raise AbortError("world aborted during send")
        if not 0 <= dest < self.size:
            raise ValueError("bad destination rank %d" % dest)
        faults = self.world.faults
        if faults is not None:
            directive = faults.on_send(self.rank, dest, tag)
            if directive is not None:
                if directive[0] == "drop":
                    return
                import time as _time

                _time.sleep(directive[1])
        size = self.world.stats[self.rank].add_send(obj)
        mailbox = self.world.mailboxes[dest]
        ring = self._fr_ring
        if ring is None:
            clock = 0
        else:
            # Inlined FlightRecorder.note_send (see __init__ note).
            clock = ring.clock + 1
            ring.clock = clock
            i = ring.idx
            slots = ring.slots
            if i == len(slots):
                try:
                    slot = _SLOT_POOL.pop()
                except IndexError:
                    slot = [0, 0.0, "", 0, 0, 0]
                slots.append(slot)
            else:
                slot = slots[i]
            slot[0] = clock
            slot[1] = _pc() - self._fr_epoch
            slot[2] = "send"
            slot[3] = dest
            slot[4] = tag
            slot[5] = size
            ring.idx = 0 if i + 1 == self._fr_cap else i + 1
            ring.emitted += 1
        tracer = self.world.tracer
        if tracer is not None:
            # racy read of the destination queue depth — fine for tracing
            tracer.instant(
                self.rank,
                "mpi",
                "send",
                {
                    "dest": dest,
                    "tag": tag,
                    "bytes": size,
                    "qdepth": len(mailbox.messages),
                    "lam": clock,
                },
            )
        mailbox.put(self.rank, tag, obj, clock)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> tuple[Any, Status]:
        if timeout is None:
            timeout = self.world.recv_timeout
        tracer = self.world.tracer
        try:
            if tracer is None:
                obj, status, clock = self.world.mailboxes[self.rank].get(
                    source, tag, timeout, self.world.aborted
                )
            else:
                t0 = tracer.now()
                obj, status, clock = self.world.mailboxes[self.rank].get(
                    source, tag, timeout, self.world.aborted
                )
        except DeadlockError:
            raise DeadlockError(
                self._hang_report(source, tag, timeout)
            ) from None
        ring = self._fr_ring
        if ring is not None:
            # Inlined FlightRecorder.note_recv (see __init__ note).
            lam = ring.clock
            if clock > lam:
                lam = clock
            lam += 1
            ring.clock = lam
            i = ring.idx
            slots = ring.slots
            if i == len(slots):
                try:
                    slot = _SLOT_POOL.pop()
                except IndexError:
                    slot = [0, 0.0, "", 0, 0, 0]
                slots.append(slot)
            else:
                slot = slots[i]
            slot[0] = lam
            slot[1] = _pc() - self._fr_epoch
            slot[2] = "recv"
            slot[3] = status.source
            slot[4] = status.tag
            slot[5] = clock
            ring.idx = 0 if i + 1 == self._fr_cap else i + 1
            ring.emitted += 1
        if tracer is not None:
            tracer.complete(
                self.rank,
                "mpi",
                "recv",
                t0,
                payload={
                    "source": status.source,
                    "tag": status.tag,
                    "lam": clock,
                },
            )
        self.world.stats[self.rank].recvs += 1
        return obj, status

    def _hang_report(self, source: int, tag: int, timeout: float) -> str:
        """Actionable deadlock report: who is blocked on what, and the
        pending-queue depth of every rank at the moment of the timeout."""
        depths = " ".join(
            "rank%d=%d" % (r, len(mb.messages))
            for r, mb in enumerate(self.world.mailboxes)
        )
        src = "ANY_SOURCE" if source == ANY_SOURCE else str(source)
        tg = "ANY_TAG" if tag == ANY_TAG else str(tag)
        report = (
            "rank %d blocked in recv(source=%s, tag=%s) timed out after "
            "%.1fs with no matching message; per-rank pending-queue "
            "depths: %s" % (self.rank, src, tg, timeout, depths)
        )
        # Registered diagnostics (servers report their lease table,
        # replication lag, and queue state) tell whether the hang is a
        # lost message, a dead server, or a stuck lease.
        for rank in sorted(self.world.diagnostics):
            try:
                line = self.world.diagnostics[rank]()
            except Exception as e:  # a broken callback must not mask the hang
                line = "<diagnostic failed: %s>" % e
            report += "\n  rank %d: %s" % (rank, line)
        return report

    def register_diagnostic(self, fn: Any) -> None:
        """Attach a state-summary callback for this rank, shown in
        recv-timeout hang reports.  ``fn`` takes no arguments and
        returns a string; it runs on the *blocked* rank's thread, so it
        must only read state."""
        self.world.diagnostics[self.rank] = fn

    def drain_dead(self, rank: int) -> list[tuple[Any, Status]]:
        """Scavenge every message pending in a dead rank's mailbox.

        In-process stand-in for a fault-tolerant transport's redelivery:
        messages deposited for a rank that died before receiving them
        are handed to the caller (the server that inherited the dead
        rank's shards) instead of being lost.  Must only be called for
        a rank known dead — the mailbox is emptied.
        """
        mb = self.world.mailboxes[rank]
        with mb.cond:
            pending = mb.messages
            mb.messages = []
        flightrec = self.world.flightrec
        if flightrec is not None:
            # The scavenger inherits the causal history of the messages
            # it adopts: merge each piggybacked clock as a recv.
            for src, tag, _, clock in pending:
                flightrec.note_recv(self.rank, src, tag, clock)
        return [(payload, Status(src, tag)) for src, tag, payload, _ in pending]

    def recv_poll(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float = 0.05,
    ) -> tuple[Any, Status] | None:
        """Like recv but returns None on timeout instead of raising."""
        tracer = self.world.tracer
        t0 = tracer.now() if tracer is not None else 0.0
        try:
            obj, status, clock = self.world.mailboxes[self.rank].get(
                source, tag, timeout, self.world.aborted
            )
        except DeadlockError:
            return None
        ring = self._fr_ring
        if ring is not None:
            # Inlined FlightRecorder.note_recv (see __init__ note).
            lam = ring.clock
            if clock > lam:
                lam = clock
            lam += 1
            ring.clock = lam
            i = ring.idx
            slots = ring.slots
            if i == len(slots):
                try:
                    slot = _SLOT_POOL.pop()
                except IndexError:
                    slot = [0, 0.0, "", 0, 0, 0]
                slots.append(slot)
            else:
                slot = slots[i]
            slot[0] = lam
            slot[1] = _pc() - self._fr_epoch
            slot[2] = "recv"
            slot[3] = status.source
            slot[4] = status.tag
            slot[5] = clock
            ring.idx = 0 if i + 1 == self._fr_cap else i + 1
            ring.emitted += 1
        if tracer is not None:
            tracer.complete(
                self.rank,
                "mpi",
                "recv",
                t0,
                payload={
                    "source": status.source,
                    "tag": status.tag,
                    "lam": clock,
                },
            )
        self.world.stats[self.rank].recvs += 1
        return obj, status

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        if self.world.aborted.is_set():
            raise AbortError("world aborted during probe")
        return self.world.mailboxes[self.rank].probe(source, tag)

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        try:
            self.world._barrier.wait()
        except threading.BrokenBarrierError:
            raise AbortError("world aborted during barrier") from None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        tag = _COLL_BASE + 1
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag)
            return obj
        value, _ = self.recv(source=root, tag=tag)
        return value

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        tag = _COLL_BASE + 2
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                value, st = self.recv(tag=tag)
                out[st.source] = value
            return out
        self.send(obj, root, tag)
        return None

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        tag = _COLL_BASE + 3
        if self.rank == root:
            assert objs is not None and len(objs) == self.size
            for r in range(self.size):
                if r != root:
                    self.send(objs[r], r, tag)
            return objs[root]
        value, _ = self.recv(source=root, tag=tag)
        return value

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        values = self.gather(obj, root=root)
        if self.rank != root:
            return None
        assert values is not None
        if op is None:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj: Any, op=None) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)
