"""The ``mpiexec`` analog: run a rank program on N thread-backed ranks."""

from __future__ import annotations

import sys
import threading
import time
import traceback
from typing import Any, Callable, Sequence

from ..faults import DeadlineExceeded
from .comm import AbortError, Comm, World


def _format_exception(e: BaseException) -> str:
    return "".join(traceback.format_exception(type(e), e, e.__traceback__))


def _indent(text: str, prefix: str = "    ") -> str:
    return "".join(prefix + line for line in text.splitlines(keepends=True))


def _rank_label(rank: int, rank_labels: Sequence[str] | None) -> str:
    if rank_labels is not None and 0 <= rank < len(rank_labels):
        return "rank %d (%s)" % (rank, rank_labels[rank])
    return "rank %d" % rank


def _thread_stack(thread: threading.Thread) -> str:
    """The current Python stack of a live thread (for stuck-rank reports)."""
    frame = sys._current_frames().get(thread.ident)
    if frame is None:
        return "<thread already exited>\n"
    return "".join(traceback.format_stack(frame))


class RankFailure(RuntimeError):
    """One or more ranks raised; carries (rank, exception) pairs.

    The message names every failed rank (with its role when the
    launcher was given ``rank_labels``) and attaches each failure's
    formatted traceback, so a run is debuggable from the message alone.
    When the run kept a flight recorder, ``blackbox`` holds the
    captured black-box dict (see :mod:`repro.obs.flightrec`).
    """

    #: Flight-recorder black box captured at failure time (dict), or None.
    blackbox: dict | None = None

    def __init__(
        self,
        failures: list[tuple[int, BaseException]],
        rank_labels: Sequence[str] | None = None,
    ):
        self.failures = failures
        summary = "; ".join(
            "%s: %s: %s" % (_rank_label(r, rank_labels), type(e).__name__, e)
            for r, e in failures
        )
        details = "\n".join(
            "%s:\n%s" % (_rank_label(r, rank_labels), _indent(_format_exception(e)))
            for r, e in failures
        )
        super().__init__(summary + "\n" + details)


def _capture_blackbox(
    world: World,
    threads: Sequence[threading.Thread],
    rank_labels: Sequence[str] | None,
    reason: str,
    detail: str,
    failed_ranks: Sequence[int],
) -> dict | None:
    """Snapshot the flight-recorder rings plus live-rank stacks and
    registered server diagnostics at the moment of failure."""
    flightrec = world.flightrec
    if flightrec is None:
        return None
    stacks = {
        r: _thread_stack(t) for r, t in enumerate(threads) if t.is_alive()
    }
    diagnostics = {}
    for rank in sorted(world.diagnostics):
        try:
            diagnostics[rank] = world.diagnostics[rank]()
        except Exception as e:  # a broken callback must not mask the failure
            diagnostics[rank] = "<diagnostic failed: %s>" % e
    return flightrec.blackbox(
        reason=reason,
        detail=detail,
        roles=list(rank_labels) if rank_labels is not None else None,
        stacks=stacks,
        diagnostics=diagnostics,
        failed_ranks=list(failed_ranks),
    )


def run_world(
    size: int,
    main: Callable[[Comm], Any],
    recv_timeout: float | None = 120.0,
    join_timeout: float | None = 300.0,
    tracer: Any | None = None,
    faults: Any | None = None,
    flightrec: Any | None = None,
    rank_labels: Sequence[str] | None = None,
    deadline: float | None = None,
    shutdown_grace: float = 10.0,
) -> list[Any]:
    """Launch ``main(comm)`` on ``size`` ranks; return per-rank results.

    Equivalent of ``mpiexec -n size python program.py``.  If any rank
    raises, the world is aborted (waking blocked receivers) and a
    :class:`RankFailure` summarizing all failures is raised.

    ``tracer`` (a :class:`repro.obs.Tracer`) enables MPI-layer tracing;
    per-rank traffic counters are folded into its metrics on exit.
    ``faults`` (a :class:`repro.faults.FaultState`) enables
    message-level fault injection.  ``flightrec`` (a
    :class:`repro.obs.FlightRecorder`) keeps the always-on black-box
    rings; on any failure raised here the rings, stuck-rank stacks, and
    registered diagnostics are snapshotted onto the exception as its
    ``blackbox`` attribute.  ``rank_labels`` names each rank's role in
    failure reports.  ``deadline`` is a wall-clock limit for the whole
    run: on expiry the world is aborted — an orderly shutdown that
    wakes every blocked receiver — and :class:`DeadlineExceeded` is
    raised naming any rank that failed to unwind within
    ``shutdown_grace`` seconds.
    """
    world = World(
        size,
        recv_timeout=recv_timeout,
        tracer=tracer,
        faults=faults,
        flightrec=flightrec,
    )
    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.comm(rank)
        try:
            results[rank] = main(comm)
        except BaseException as e:  # noqa: BLE001 - report any rank failure
            with failures_lock:
                failures.append((rank, e))
            world.abort(e)

    threads = [
        threading.Thread(target=runner, args=(r,), name="rank-%d" % r, daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()

    deadline_at = None if deadline is None else time.monotonic() + deadline
    deadline_hit = False
    for t in threads:
        budget = join_timeout
        if deadline_at is not None:
            remaining = max(0.0, deadline_at - time.monotonic())
            budget = remaining if budget is None else min(budget, remaining)
        t.join(timeout=budget)
        if t.is_alive():
            if deadline_at is not None and time.monotonic() >= deadline_at:
                deadline_hit = True
                world.abort(
                    DeadlineExceeded(
                        "wall-clock deadline of %.1fs exceeded" % deadline
                    )
                )
            else:
                world.abort(TimeoutError("rank thread did not finish"))
            break
    # Orderly unwind: aborted ranks wake out of blocking recvs/barriers
    # and exit; give them a bounded grace period.
    for t in threads:
        t.join(timeout=shutdown_grace)
    stuck = [r for r, t in enumerate(threads) if t.is_alive()]

    if tracer is not None:
        for rank, stats in enumerate(world.stats):
            tracer.metrics.fold_struct("mpi", stats, rank=rank)

    with failures_lock:
        recorded = sorted(failures, key=lambda p: p[0])
    # Suppress secondary AbortErrors triggered by the primary failure.
    primary = [p for p in recorded if not isinstance(p[1], AbortError)]

    if deadline_hit and not primary:
        if stuck:
            detail = "still-stuck ranks after %.1fs grace:\n%s" % (
                shutdown_grace,
                "\n".join(
                    "%s:\n%s"
                    % (_rank_label(r, rank_labels), _indent(_thread_stack(threads[r])))
                    for r in stuck
                ),
            )
        else:
            detail = "all ranks unwound cleanly after the abort"
        exc: BaseException = DeadlineExceeded(
            "run exceeded its %.1fs deadline and was shut down; %s"
            % (deadline, detail)
        )
        exc.blackbox = _capture_blackbox(
            world, threads, rank_labels, "DeadlineExceeded", str(exc), stuck
        )
        raise exc
    if stuck:
        # The join timed out and the grace period did not reap the
        # threads: report exactly which ranks are stuck and where.
        entries: list[tuple[int, BaseException]] = []
        for r in stuck:
            entries.append(
                (
                    r,
                    TimeoutError(
                        "%s did not finish (join_timeout=%s); current stack:\n%s"
                        % (
                            _rank_label(r, rank_labels),
                            join_timeout,
                            _thread_stack(threads[r]),
                        )
                    ),
                )
            )
        all_failures = sorted(primary + entries, key=lambda p: p[0])
        exc = RankFailure(all_failures, rank_labels)
        exc.blackbox = _capture_blackbox(
            world,
            threads,
            rank_labels,
            "RankFailure",
            str(exc).splitlines()[0],
            [r for r, _ in all_failures],
        )
        raise exc
    if recorded:
        blamed = primary or recorded
        exc = RankFailure(blamed, rank_labels)
        exc.blackbox = _capture_blackbox(
            world,
            threads,
            rank_labels,
            type(blamed[0][1]).__name__,
            str(exc).splitlines()[0],
            [r for r, _ in blamed],
        )
        raise exc
    return results
