"""The ``mpiexec`` analog: run a rank program on N thread-backed ranks."""

from __future__ import annotations

import sys
import threading
import time
import traceback
from typing import Any, Callable, Sequence

from ..faults import DeadlineExceeded
from .comm import AbortError, Comm, World


def _format_exception(e: BaseException) -> str:
    return "".join(traceback.format_exception(type(e), e, e.__traceback__))


def _indent(text: str, prefix: str = "    ") -> str:
    return "".join(prefix + line for line in text.splitlines(keepends=True))


def _rank_label(rank: int, rank_labels: Sequence[str] | None) -> str:
    if rank_labels is not None and 0 <= rank < len(rank_labels):
        return "rank %d (%s)" % (rank, rank_labels[rank])
    return "rank %d" % rank


def _thread_stack(thread: threading.Thread) -> str:
    """The current Python stack of a live thread (for stuck-rank reports)."""
    frame = sys._current_frames().get(thread.ident)
    if frame is None:
        return "<thread already exited>\n"
    return "".join(traceback.format_stack(frame))


class RankFailure(RuntimeError):
    """One or more ranks raised; carries (rank, exception) pairs.

    The message names every failed rank (with its role when the
    launcher was given ``rank_labels``) and attaches each failure's
    formatted traceback, so a run is debuggable from the message alone.
    """

    def __init__(
        self,
        failures: list[tuple[int, BaseException]],
        rank_labels: Sequence[str] | None = None,
    ):
        self.failures = failures
        summary = "; ".join(
            "%s: %s: %s" % (_rank_label(r, rank_labels), type(e).__name__, e)
            for r, e in failures
        )
        details = "\n".join(
            "%s:\n%s" % (_rank_label(r, rank_labels), _indent(_format_exception(e)))
            for r, e in failures
        )
        super().__init__(summary + "\n" + details)


def run_world(
    size: int,
    main: Callable[[Comm], Any],
    recv_timeout: float | None = 120.0,
    join_timeout: float | None = 300.0,
    tracer: Any | None = None,
    faults: Any | None = None,
    rank_labels: Sequence[str] | None = None,
    deadline: float | None = None,
    shutdown_grace: float = 10.0,
) -> list[Any]:
    """Launch ``main(comm)`` on ``size`` ranks; return per-rank results.

    Equivalent of ``mpiexec -n size python program.py``.  If any rank
    raises, the world is aborted (waking blocked receivers) and a
    :class:`RankFailure` summarizing all failures is raised.

    ``tracer`` (a :class:`repro.obs.Tracer`) enables MPI-layer tracing;
    per-rank traffic counters are folded into its metrics on exit.
    ``faults`` (a :class:`repro.faults.FaultState`) enables
    message-level fault injection.  ``rank_labels`` names each rank's
    role in failure reports.  ``deadline`` is a wall-clock limit for
    the whole run: on expiry the world is aborted — an orderly shutdown
    that wakes every blocked receiver — and :class:`DeadlineExceeded`
    is raised naming any rank that failed to unwind within
    ``shutdown_grace`` seconds.
    """
    world = World(size, recv_timeout=recv_timeout, tracer=tracer, faults=faults)
    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.comm(rank)
        try:
            results[rank] = main(comm)
        except BaseException as e:  # noqa: BLE001 - report any rank failure
            with failures_lock:
                failures.append((rank, e))
            world.abort(e)

    threads = [
        threading.Thread(target=runner, args=(r,), name="rank-%d" % r, daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()

    deadline_at = None if deadline is None else time.monotonic() + deadline
    deadline_hit = False
    for t in threads:
        budget = join_timeout
        if deadline_at is not None:
            remaining = max(0.0, deadline_at - time.monotonic())
            budget = remaining if budget is None else min(budget, remaining)
        t.join(timeout=budget)
        if t.is_alive():
            if deadline_at is not None and time.monotonic() >= deadline_at:
                deadline_hit = True
                world.abort(
                    DeadlineExceeded(
                        "wall-clock deadline of %.1fs exceeded" % deadline
                    )
                )
            else:
                world.abort(TimeoutError("rank thread did not finish"))
            break
    # Orderly unwind: aborted ranks wake out of blocking recvs/barriers
    # and exit; give them a bounded grace period.
    for t in threads:
        t.join(timeout=shutdown_grace)
    stuck = [r for r, t in enumerate(threads) if t.is_alive()]

    if tracer is not None:
        for rank, stats in enumerate(world.stats):
            tracer.metrics.fold_struct("mpi", stats, rank=rank)

    with failures_lock:
        recorded = sorted(failures, key=lambda p: p[0])
    # Suppress secondary AbortErrors triggered by the primary failure.
    primary = [p for p in recorded if not isinstance(p[1], AbortError)]

    if deadline_hit and not primary:
        if stuck:
            detail = "still-stuck ranks after %.1fs grace:\n%s" % (
                shutdown_grace,
                "\n".join(
                    "%s:\n%s"
                    % (_rank_label(r, rank_labels), _indent(_thread_stack(threads[r])))
                    for r in stuck
                ),
            )
        else:
            detail = "all ranks unwound cleanly after the abort"
        raise DeadlineExceeded(
            "run exceeded its %.1fs deadline and was shut down; %s"
            % (deadline, detail)
        )
    if stuck:
        # The join timed out and the grace period did not reap the
        # threads: report exactly which ranks are stuck and where.
        entries: list[tuple[int, BaseException]] = []
        for r in stuck:
            entries.append(
                (
                    r,
                    TimeoutError(
                        "%s did not finish (join_timeout=%s); current stack:\n%s"
                        % (
                            _rank_label(r, rank_labels),
                            join_timeout,
                            _thread_stack(threads[r]),
                        )
                    ),
                )
            )
        raise RankFailure(sorted(primary + entries, key=lambda p: p[0]), rank_labels)
    if recorded:
        raise RankFailure(primary or recorded, rank_labels)
    return results
