"""The ``mpiexec`` analog: run a rank program on N thread-backed ranks."""

from __future__ import annotations

import threading
from typing import Any, Callable

from .comm import Comm, World


class RankFailure(RuntimeError):
    """One or more ranks raised; carries (rank, exception) pairs."""

    def __init__(self, failures: list[tuple[int, BaseException]]):
        self.failures = failures
        msg = "; ".join(
            "rank %d: %s: %s" % (r, type(e).__name__, e) for r, e in failures
        )
        super().__init__(msg)


def run_world(
    size: int,
    main: Callable[[Comm], Any],
    recv_timeout: float | None = 120.0,
    join_timeout: float | None = 300.0,
    tracer: Any | None = None,
) -> list[Any]:
    """Launch ``main(comm)`` on ``size`` ranks; return per-rank results.

    Equivalent of ``mpiexec -n size python program.py``.  If any rank
    raises, the world is aborted (waking blocked receivers) and a
    :class:`RankFailure` summarizing all failures is raised.

    ``tracer`` (a :class:`repro.obs.Tracer`) enables MPI-layer tracing;
    per-rank traffic counters are folded into its metrics on exit.
    """
    world = World(size, recv_timeout=recv_timeout, tracer=tracer)
    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.comm(rank)
        try:
            results[rank] = main(comm)
        except BaseException as e:  # noqa: BLE001 - report any rank failure
            with failures_lock:
                failures.append((rank, e))
            world.abort(e)

    threads = [
        threading.Thread(target=runner, args=(r,), name="rank-%d" % r, daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=join_timeout)
        if t.is_alive():
            world.abort(TimeoutError("rank thread did not finish"))
    for t in threads:
        t.join(timeout=10.0)
    if tracer is not None:
        for rank, stats in enumerate(world.stats):
            tracer.metrics.fold_struct("mpi", stats, rank=rank)
    if failures:
        failures.sort(key=lambda p: p[0])
        # Suppress secondary AbortErrors triggered by the primary failure.
        from .comm import AbortError

        primary = [p for p in failures if not isinstance(p[1], AbortError)]
        raise RankFailure(primary or failures)
    return results
