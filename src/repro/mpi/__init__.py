"""A thread-backed MPI-like message-passing substrate.

The real Swift/T runs as an MPI program on Blue Gene/Q or Cray XE6; no
MPI library or cluster is available here, so this package provides the
same programming model — ranks, communicators, blocking/nonblocking
point-to-point messages with tags, probes, and collectives — with each
rank hosted on a Python thread inside one process.  The ADLB and
Turbine layers are written against :class:`Comm` exactly as they would
be against ``MPI_Comm``.

Use :func:`run_world` as the ``mpiexec`` analog.
"""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    AbortError,
    Comm,
    CommStats,
    DeadlockError,
    Status,
    World,
)
from .launcher import RankFailure, run_world

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "World",
    "Status",
    "CommStats",
    "AbortError",
    "DeadlockError",
    "RankFailure",
    "run_world",
]
