"""Protocol constants for the ADLB layer: tags, opcodes, task types."""

from __future__ import annotations

# --- message tags ---------------------------------------------------------
TAG_REQUEST = 10  # client -> server RPC request
TAG_RESPONSE = 11  # server -> client RPC response
TAG_ONEWAY = 12  # client -> server, no response expected
TAG_ASYNC = 13  # server -> client async delivery (notify/ctask/shutdown)
TAG_SERVER = 14  # server <-> server (steal, shutdown fanout, counters)

# --- task types -----------------------------------------------------------
WORK = "WORK"  # leaf tasks, executed by workers
CONTROL = "CONTROL"  # dataflow logic tasks, executed by engines

# --- data types -----------------------------------------------------------
T_INTEGER = "integer"
T_FLOAT = "float"
T_STRING = "string"
T_BLOB = "blob"
T_BOOLEAN = "boolean"
T_VOID = "void"
T_CONTAINER = "container"
T_REF = "ref"

SCALAR_TYPES = {T_INTEGER, T_FLOAT, T_STRING, T_BLOB, T_BOOLEAN, T_VOID, T_REF}

# --- opcodes (request ops carry a dict payload) -----------------------------
OP_PUT = "PUT"
OP_GET = "GET"  # blocking get (worker)
OP_GET_ASYNC = "GET_ASYNC"  # parked get with async delivery (engine)
OP_ID_BLOCK = "ID_BLOCK"
OP_CREATE = "CREATE"
OP_MULTICREATE = "MULTICREATE"
OP_STORE = "STORE"
OP_RETRIEVE = "RETRIEVE"
OP_EXISTS = "EXISTS"
OP_SUBSCRIBE = "SUBSCRIBE"
OP_CONTAINER_REF = "CONTAINER_REF"
OP_ENUMERATE = "ENUMERATE"
OP_REFCOUNT = "REFCOUNT"
OP_REFCOUNT_BATCH = "REFCOUNT_BATCH"  # coalesced per-task refcount deltas
OP_TYPEOF = "TYPEOF"
OP_INCR_WORK = "INCR_WORK"
OP_DECR_WORK = "DECR_WORK"
OP_TASK_FAIL = "TASK_FAIL"  # client reports a failed leased work unit
OP_JOURNAL = "JOURNAL"  # engine streams rule-lifecycle journal entries
OP_FINALIZE = "FINALIZE"
OP_STATS = "STATS"

# --- server <-> server ops ---------------------------------------------------
SOP_STEAL_REQ = "STEAL_REQ"
SOP_STEAL_RESP = "STEAL_RESP"
SOP_SHUTDOWN = "SHUTDOWN"
SOP_WORK_DELTA = "WORK_DELTA"
SOP_RANK_DEAD = "RANK_DEAD"  # launcher-side notification: a rank died
SOP_DRAIN_PROBE = "DRAIN_PROBE"  # master asks: are you quiescent?
SOP_DRAIN_RESP = "DRAIN_RESP"
SOP_REPLICATE = "REPLICATE"  # batched op-log entries to the buddy server
SOP_REPL_ACK = "REPL_ACK"  # buddy acknowledges applied entries
SOP_CKPT_REQ = "CKPT_REQ"  # master asks a server for its checkpoint shard
SOP_CKPT_PART = "CKPT_PART"  # shard/engine contribution back to the master
SOP_STATUS = "STATUS"  # periodic per-server status piggybacked to the master

# id allocation block size handed to clients
ID_BLOCK_SIZE = 256
