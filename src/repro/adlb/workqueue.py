"""Work queues for one ADLB server.

Tasks are matched by type, priority (higher first, FIFO within a
priority), and optional target rank.  Communication-free so the
matching invariants can be property-tested.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Task:
    type: str
    payload: Any
    priority: int = 0
    target: int = -1  # -1 means any rank
    attempts: int = 0  # executions so far (>0 only for lease requeues)
    uid: int = -1  # stable identity across requeues/replication (-1: none)
    prov: str | None = None  # spawning rule/unit id (traced runs only)
    chain: tuple = ()  # (rank, reason) per host-rank death this unit caused


class WorkQueue:
    def __init__(self) -> None:
        self._seq = itertools.count()
        # type -> heap of (-priority, seq, Task)
        self._untargeted: dict[str, list[tuple[int, int, Task]]] = {}
        # (type, rank) -> heap
        self._targeted: dict[tuple[str, int], list[tuple[int, int, Task]]] = {}
        self.size = 0

    def push(self, task: Task) -> None:
        entry = (-task.priority, next(self._seq), task)
        if task.target >= 0:
            heapq.heappush(
                self._targeted.setdefault((task.type, task.target), []), entry
            )
        else:
            heapq.heappush(self._untargeted.setdefault(task.type, []), entry)
        self.size += 1

    def pop(self, types: tuple[str, ...], rank: int) -> Task | None:
        """Best task of any of the given types for this rank.

        Targeted tasks win over untargeted tasks of equal priority,
        matching ADLB semantics.
        """
        best_key: tuple[int, int] | None = None
        best_src: tuple[bool, Any] | None = None
        for t in types:
            heap = self._targeted.get((t, rank))
            if heap:
                key = heap[0][:2]
                if best_key is None or key < best_key:
                    best_key, best_src = key, (True, (t, rank))
            heap = self._untargeted.get(t)
            if heap:
                key = heap[0][:2]
                if best_key is None or key < best_key:
                    best_key, best_src = key, (False, t)
        if best_src is None:
            return None
        targeted, k = best_src
        heap = self._targeted[k] if targeted else self._untargeted[k]
        _, _, task = heapq.heappop(heap)
        self.size -= 1
        return task

    def steal(self, max_count: int) -> list[Task]:
        """Remove up to max_count *untargeted* tasks for another server.

        Targeted tasks must stay on the server that owns the target's
        attachment, so only untargeted work migrates.
        """
        out: list[Task] = []
        for heap in self._untargeted.values():
            while heap and len(out) < max_count:
                _, _, task = heapq.heappop(heap)
                out.append(task)
                self.size -= 1
            if len(out) >= max_count:
                break
        return out

    def remove_targeted(self, rank: int) -> list[Task]:
        """Remove every task targeted at ``rank`` (it died); caller
        decides whether to retarget or drop them."""
        out: list[Task] = []
        for key in [k for k in self._targeted if k[1] == rank]:
            heap = self._targeted.pop(key)
            for _, _, task in heap:
                out.append(task)
                self.size -= 1
        return out

    def all_tasks(self) -> list[Task]:
        """Every queued task (targeted and untargeted), unordered.

        Used for resilvering a replica and for checkpoint snapshots;
        the queue itself is not mutated."""
        out: list[Task] = []
        for heap in self._untargeted.values():
            out.extend(task for _, _, task in heap)
        for heap in self._targeted.values():
            out.extend(task for _, _, task in heap)
        return out

    def counts_by_type(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t, heap in self._untargeted.items():
            out[t] = out.get(t, 0) + len(heap)
        for (t, _), heap in self._targeted.items():
            out[t] = out.get(t, 0) + len(heap)
        return out
