"""ADLB: the Asynchronous Dynamic Load Balancer (Lusk et al.).

Servers distribute tasks to workers on demand, balance load by work
stealing, and host the Turbine data store.  This reimplements the ADLB
protocol over :mod:`repro.mpi`: typed/priority/targeted work queues,
parked receive requests, a typed data store with write/read refcounts
and close subscriptions, and counter-based distributed termination.
"""

from . import constants
from .client import AdlbClient, AdlbError
from .constants import CONTROL, WORK
from .datastore import (
    DataStore,
    DataStoreError,
    DoubleWriteError,
    NotFoundError,
    UnsetError,
)
from .layout import Layout
from .server import Server, ServerStats
from .workqueue import Task, WorkQueue

__all__ = [
    "AdlbClient",
    "AdlbError",
    "DataStore",
    "DataStoreError",
    "DoubleWriteError",
    "NotFoundError",
    "UnsetError",
    "Layout",
    "Server",
    "ServerStats",
    "Task",
    "WorkQueue",
    "WORK",
    "CONTROL",
    "constants",
]
