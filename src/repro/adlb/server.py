"""The ADLB server loop.

Each server owns a slice of the data store (TDs with ``id % n_servers``
matching its index), a work queue, and the parked GET requests of its
attached clients.  The first server additionally runs the distributed
termination counter: clients increment it for every unit of pending
work (rules, tasks, the initial program) and decrement on completion;
when it returns to zero the master fans out shutdown.

Work stealing: a server whose parked GETs cannot be satisfied locally
probes the other servers round-robin for untargeted tasks, as in ADLB.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from dataclasses import dataclass, field
from typing import Any

from ..faults import TaskError, TaskFailure, snippet
from ..mpi import Comm
from . import constants as C
from .datastore import DataStore, DataStoreError, Notification, RefStore
from .layout import Layout
from .workqueue import Task, WorkQueue


@dataclass
class ParkedGet:
    rank: int
    types: tuple[str, ...]
    is_async: bool


@dataclass
class _Lease:
    """One handed-out work unit awaiting completion by ``client``."""

    task: Task
    client: int
    deadline: float


@dataclass
class LeaseStats:
    """Lease-layer counters, folded into metrics as ``adlb.lease.*``."""

    granted: int = 0
    requeued: int = 0
    expired: int = 0
    dead_ranks: int = 0
    failed_permanent: int = 0


@dataclass
class ServerStats:
    """Per-server counter snapshot.

    Kept as the stable ``RunResult.server_stats`` surface; the values
    are folded into the run's :class:`repro.obs.Metrics` registry
    (``adlb.*`` counters) when tracing is enabled.
    """

    tasks_queued: int = 0
    tasks_matched: int = 0
    tasks_matched_targeted: int = 0
    steal_requests: int = 0
    tasks_stolen_in: int = 0
    tasks_stolen_out: int = 0
    data_ops: int = 0
    max_queue: int = 0
    idle_polls: int = 0


#: client data ops traced as ``adlb``-category instants
_DATA_OPS = {
    C.OP_CREATE,
    C.OP_MULTICREATE,
    C.OP_STORE,
    C.OP_RETRIEVE,
    C.OP_EXISTS,
    C.OP_SUBSCRIBE,
    C.OP_CONTAINER_REF,
    C.OP_ENUMERATE,
    C.OP_REFCOUNT,
    C.OP_REFCOUNT_BATCH,
    C.OP_TYPEOF,
}


class Server:
    def __init__(
        self,
        comm: Comm,
        layout: Layout,
        steal: bool = True,
        tracer: Any | None = None,
        leases: bool = False,
        lease_timeout: float = 60.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        on_error: str = "retry",
    ):
        self.comm = comm
        self.layout = layout
        self.rank = comm.rank
        self.steal_enabled = steal and layout.n_servers > 1
        self.tracer = tracer
        self.store = DataStore()
        self.queue = WorkQueue()
        self.parked: list[ParkedGet] = []
        self.stats = ServerStats()
        # Lease table: None when disabled, so the hot path stays a
        # single `is None` test per handout/completion.
        self._leases: dict[int, _Lease] | None = {} if leases else None
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.on_error = on_error
        self.lease_stats = LeaseStats()
        self.failures: list[TaskFailure] = []
        # (release_at, seq, task) heap of backoff-delayed requeues
        self._delayed: list[tuple[float, int, Task]] = []
        self._delay_seq = 0
        self._dead_ranks: set[int] = set()
        self._next_lease_check = 0.0
        # Drain-shutdown state (master only): set when a poisoned
        # decrement reports a permanently failed unit whose dependent
        # dataflow can never resolve.
        self._poisoned = False
        self._drain_since: float | None = None
        self._drain_count = 0
        self._drain_probes_ok: set[int] = set()
        self._drain_probing = False
        self.is_master = self.rank == layout.master_server
        # termination counter (master only)
        self.work_count = 0
        self.work_started = False
        self.shutting_down = False
        self._shutdown_sent: set[int] = set()
        # id allocation (master only)
        self._next_id = 1
        # steal state
        self._steal_inflight = False
        self._steal_ring = 0
        self._other_servers = [s for s in layout.servers if s != self.rank]
        # Clients attached to this server for work requests; each must be
        # told to shut down before this server may exit.
        self.attached_clients = {
            r
            for r in range(layout.size)
            if not layout.is_server(r) and layout.my_server(r) == self.rank
        }
        self._shutdown_acked: set[int] = set()

    # ------------------------------------------------------------------ loop

    def run(self) -> ServerStats:
        """Serve until shutdown completes; returns server statistics."""
        while not self._done():
            got = self.comm.recv_poll(timeout=0.02)
            if self._leases is not None:
                self._lease_tick()
            if got is None:
                self.stats.idle_polls += 1
                self._idle_tick()
                continue
            msg, status = got
            self._dispatch(msg, status.source, status.tag)
        if self.tracer is not None:
            self.tracer.metrics.fold_struct("adlb", self.stats, rank=self.rank)
            if self._leases is not None:
                self.tracer.metrics.fold_struct(
                    "adlb.lease", self.lease_stats, rank=self.rank
                )
        return self.stats

    def _done(self) -> bool:
        return (
            self.shutting_down
            and self._shutdown_acked >= self.attached_clients
        )

    # ---------------------------------------------------------------- dispatch

    def _dispatch(self, msg: dict, source: int, tag: int) -> None:
        op = msg["op"]
        if tag == C.TAG_SERVER:
            self._server_op(op, msg, source)
            return
        try:
            result = self._client_op(op, msg, source)
        except DataStoreError as e:
            if tag == C.TAG_REQUEST:
                self.comm.send(("error", str(e)), source, C.TAG_RESPONSE)
            else:
                raise
            return
        if tag == C.TAG_REQUEST and result is not _NO_REPLY:
            self.comm.send(("ok", result), source, C.TAG_RESPONSE)

    # -------------------------------------------------------------- client ops

    def _client_op(self, op: str, msg: dict, source: int) -> Any:
        tracer = self.tracer
        if tracer is not None and op in _DATA_OPS:
            tracer.instant(
                self.rank, "adlb", "data:" + op.lower(), {"client": source}
            )
        if op == C.OP_PUT:
            task = Task(
                type=msg["type"],
                payload=msg["payload"],
                priority=msg.get("priority", 0),
                target=msg.get("target", -1),
            )
            if tracer is not None:
                tracer.instant(
                    self.rank,
                    "adlb",
                    "put",
                    {"type": task.type, "targeted": task.target >= 0},
                )
            self._accept_task(task)
            return None
        if op == C.OP_GET:
            if self._leases is not None:
                # Asking for the next task completes the previous lease.
                self._leases.pop(source, None)
            if self.shutting_down:
                self.comm.send(("shutdown",), source, C.TAG_RESPONSE)
                self._shutdown_acked.add(source)
                return _NO_REPLY
            types = tuple(msg["types"])
            task = self.queue.pop(types, source)
            if task is not None:
                self._record_match(task)
                if self._leases is not None:
                    self._grant(task, source)
                self.comm.send(
                    ("task", task.type, task.payload), source, C.TAG_RESPONSE
                )
            else:
                if tracer is not None:
                    tracer.instant(
                        self.rank, "adlb", "get_park", {"client": source}
                    )
                self.parked.append(ParkedGet(source, types, is_async=False))
                self._maybe_steal()
            return _NO_REPLY
        if op == C.OP_GET_ASYNC:
            if self._leases is not None:
                self._leases.pop(source, None)
            if self.shutting_down:
                self.comm.send(("shutdown",), source, C.TAG_ASYNC)
                self._shutdown_acked.add(source)
                return _NO_REPLY
            types = tuple(msg["types"])
            task = self.queue.pop(types, source)
            if task is not None:
                self._record_match(task)
                if self._leases is not None:
                    self._grant(task, source)
                self.comm.send(
                    ("ctask", task.type, task.payload), source, C.TAG_ASYNC
                )
            else:
                if tracer is not None:
                    tracer.instant(
                        self.rank, "adlb", "get_park", {"client": source}
                    )
                self.parked.append(ParkedGet(source, types, is_async=True))
                self._maybe_steal()
            return _NO_REPLY
        if op == C.OP_ID_BLOCK:
            assert self.is_master, "id blocks come from the master server"
            start = self._next_id
            self._next_id += C.ID_BLOCK_SIZE
            return (start, C.ID_BLOCK_SIZE)
        if op == C.OP_CREATE:
            self.stats.data_ops += 1
            self.store.create(
                msg["id"],
                msg["type"],
                write_refcount=msg.get("write_refcount", 1),
                read_refcount=msg.get("read_refcount", 1),
            )
            return msg["id"]
        if op == C.OP_MULTICREATE:
            self.stats.data_ops += 1
            for spec in msg["specs"]:
                self.store.create(
                    spec["id"],
                    spec["type"],
                    write_refcount=spec.get("write_refcount", 1),
                    read_refcount=spec.get("read_refcount", 1),
                )
            return len(msg["specs"])
        if op == C.OP_STORE:
            self.stats.data_ops += 1
            notes, refs = self.store.store(
                msg["id"],
                msg["value"],
                subscript=msg.get("subscript"),
                decr_write=msg.get("decr_write", 1),
            )
            self._emit(notes, refs)
            return None
        if op == C.OP_RETRIEVE:
            self.stats.data_ops += 1
            # Reply is (value, closed): the closed bit marks the value
            # immutable, licensing the client to cache it locally.
            return self.store.retrieve_tagged(
                msg["id"], subscript=msg.get("subscript")
            )
        if op == C.OP_EXISTS:
            self.stats.data_ops += 1
            return self.store.exists(msg["id"], subscript=msg.get("subscript"))
        if op == C.OP_TYPEOF:
            return self.store.lookup(msg["id"]).type
        if op == C.OP_SUBSCRIBE:
            self.stats.data_ops += 1
            return self.store.subscribe(msg["id"], msg.get("rank", source))
        if op == C.OP_CONTAINER_REF:
            self.stats.data_ops += 1
            ref = self.store.container_reference(
                msg["id"], msg["subscript"], msg["ref_id"]
            )
            if ref is not None:
                self._emit([], [ref])
            return None
        if op == C.OP_ENUMERATE:
            self.stats.data_ops += 1
            return self.store.enumerate(msg["id"])
        if op == C.OP_REFCOUNT:
            self.stats.data_ops += 1
            notes = self.store.refcount(
                msg["id"],
                read_delta=msg.get("read_delta", 0),
                write_delta=msg.get("write_delta", 0),
            )
            self._emit(notes, [])
            # freed: the read refcount dropped the TD; clients evict it
            # from their retrieve caches.
            return {"freed": msg["id"] not in self.store.tds}
        if op == C.OP_REFCOUNT_BATCH:
            # Coalesced refcount deltas from one client task (one entry
            # per id).  Ops are applied in order; if one fails, the
            # preceding ops stay applied and the error is reported for
            # the whole batch — matching the per-op RPC failure the
            # client would have seen at its deferred call site.
            self.stats.data_ops += 1
            freed: list[int] = []
            for item in msg["ops"]:
                notes = self.store.refcount(
                    item["id"],
                    read_delta=item.get("read_delta", 0),
                    write_delta=item.get("write_delta", 0),
                )
                self._emit(notes, [])
                if item["id"] not in self.store.tds:
                    freed.append(item["id"])
            return {"freed": freed}
        if op == C.OP_INCR_WORK:
            assert self.is_master
            self.work_count += msg.get("amount", 1)
            self.work_started = True
            return None
        if op == C.OP_DECR_WORK:
            assert self.is_master
            if msg.get("poison"):
                self._poisoned = True
            self.work_count -= msg.get("amount", 1)
            if self.work_count < 0:
                raise DataStoreError("termination counter went negative")
            if self.work_count == 0 and self.work_started:
                self._initiate_shutdown()
            return None
        if op == C.OP_TASK_FAIL:
            self._task_fail(source, msg)
            return None
        if op == C.OP_STATS:
            from dataclasses import asdict

            return asdict(self.stats)
        raise DataStoreError("unknown ADLB op %r" % op)

    # --------------------------------------------------------------- server ops

    def _server_op(self, op: str, msg: dict, source: int) -> None:
        if op == C.SOP_STEAL_REQ:
            n = max(1, self.queue.size // 2)
            tasks = self.queue.steal(n) if self.queue.size else []
            self.stats.tasks_stolen_out += len(tasks)
            if self.tracer is not None:
                self.tracer.instant(
                    self.rank, "adlb", "steal_out", {"to": source, "n": len(tasks)}
                )
            self.comm.send(
                {"op": C.SOP_STEAL_RESP, "tasks": tasks}, source, C.TAG_SERVER
            )
            return
        if op == C.SOP_STEAL_RESP:
            self._steal_inflight = False
            tasks = msg["tasks"]
            self.stats.tasks_stolen_in += len(tasks)
            if self.tracer is not None:
                self.tracer.instant(
                    self.rank, "adlb", "steal_in", {"from": source, "n": len(tasks)}
                )
            for task in tasks:
                self._accept_task(task)
            # Empty responses retry from the idle tick, not immediately,
            # to avoid a steal storm when the whole system is idle.
            return
        if op == C.SOP_SHUTDOWN:
            self._enter_shutdown()
            return
        if op == C.SOP_RANK_DEAD:
            self._mark_rank_dead(
                msg["rank"], reason=msg.get("reason", "rank died")
            )
            return
        if op == C.SOP_DRAIN_PROBE:
            self.comm.send(
                {"op": C.SOP_DRAIN_RESP, "quiescent": self._quiescent()},
                source,
                C.TAG_SERVER,
            )
            return
        if op == C.SOP_DRAIN_RESP:
            if self._drain_probing and msg["quiescent"]:
                self._drain_probes_ok.add(source)
                if self._drain_probes_ok >= set(self._other_servers):
                    self._drain_shutdown()
            elif self._drain_probing:
                # Someone still has runnable work: disarm and re-observe.
                self._drain_probing = False
                self._drain_since = None
            return
        raise RuntimeError("unknown server op %r" % op)

    # ---------------------------------------------------------------- matching

    def _record_match(self, task: Task) -> None:
        self.stats.tasks_matched += 1
        if task.target >= 0:
            self.stats.tasks_matched_targeted += 1
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "match",
                {"type": task.type, "targeted": task.target >= 0},
            )

    def _accept_task(self, task: Task) -> None:
        for i, parked in enumerate(self.parked):
            if task.type in parked.types and task.target in (-1, parked.rank):
                del self.parked[i]
                self._record_match(task)
                if self._leases is not None:
                    self._grant(task, parked.rank)
                if parked.is_async:
                    self.comm.send(
                        ("ctask", task.type, task.payload),
                        parked.rank,
                        C.TAG_ASYNC,
                    )
                else:
                    self.comm.send(
                        ("task", task.type, task.payload),
                        parked.rank,
                        C.TAG_RESPONSE,
                    )
                return
        self.queue.push(task)
        self.stats.tasks_queued += 1
        self.stats.max_queue = max(self.stats.max_queue, self.queue.size)

    def _emit(self, notes: list[Notification], refs: list[RefStore]) -> None:
        for note in notes:
            self.comm.send(("notify", note.id), note.rank, C.TAG_ASYNC)
        for ref in refs:
            home = self.layout.home_server(ref.ref_id)
            store_msg = {
                "op": C.OP_STORE,
                "id": ref.ref_id,
                "value": ref.value,
                "decr_write": 1,
            }
            if home == self.rank:
                notes2, refs2 = self.store.store(ref.ref_id, ref.value)
                self._emit(notes2, refs2)
            else:
                self.comm.send(store_msg, home, C.TAG_ONEWAY)

    # ------------------------------------------------------------------ leases

    def _grant(self, task: Task, client: int) -> None:
        """Record a handed-out unit; completion is implied by the
        client's next GET (one outstanding task per client)."""
        self.lease_stats.granted += 1
        self._leases[client] = _Lease(
            task, client, time.monotonic() + self.lease_timeout
        )

    def _decr_work(self, amount: int = 1, poison: bool = False) -> None:
        """Repair the termination counter for a unit the client will
        never account for (failed permanently, or its rank died)."""
        master = self.layout.master_server
        msg: dict = {"op": C.OP_DECR_WORK, "amount": amount}
        if poison:
            msg["poison"] = True
        if self.rank == master:
            self._client_op(C.OP_DECR_WORK, msg, self.rank)
        else:
            self.comm.send(msg, master, C.TAG_ONEWAY)

    def _requeue(self, task: Task, attempts: int) -> None:
        """Put a failed/orphaned unit back with exponential backoff."""
        nxt = dataclasses.replace(task, attempts=attempts)
        delay = self.retry_backoff * (2 ** max(0, attempts - 1))
        self.lease_stats.requeued += 1
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "lease_requeue",
                {"type": task.type, "attempts": attempts},
            )
        if delay <= 0:
            self._accept_task(nxt)
        else:
            self._delay_seq += 1
            heapq.heappush(
                self._delayed, (time.monotonic() + delay, self._delay_seq, nxt)
            )

    def _task_fail(self, source: int, msg: dict) -> None:
        """OP_TASK_FAIL: the client hands its leased unit back as failed.

        Ownership of the unit (and its termination-counter increment)
        transfers to this server: either it is requeued for another
        attempt, or given up permanently.
        """
        lease = self._leases.pop(source, None) if self._leases is not None else None
        if lease is None:
            # Leases disabled or the unit was already swept by a
            # dead-rank notification: permanently failed.
            self._give_up(
                TaskFailure(
                    rank=source,
                    kind=msg.get("kind", "task"),
                    payload=msg.get("payload", ""),
                    attempts=msg.get("attempts", 1),
                    error=msg["error"],
                    traceback=msg.get("traceback", ""),
                )
            )
            return
        attempts = lease.task.attempts + 1
        if attempts <= self.max_retries:
            self._requeue(lease.task, attempts)
            return
        self._give_up(
            TaskFailure(
                rank=source,
                kind=msg.get("kind", "task"),
                payload=snippet(lease.task.payload),
                attempts=attempts,
                error=msg["error"],
                traceback=msg.get("traceback", ""),
            )
        )

    def _give_up(self, failure: TaskFailure) -> None:
        """Retries exhausted: in ``continue`` mode record the failure
        and repair the counter; otherwise surface a TaskError."""
        self.lease_stats.failed_permanent += 1
        self.failures.append(failure)
        if self.on_error == "continue":
            self._decr_work(poison=True)
            return
        raise TaskError(failure)

    def _mark_rank_dead(self, rank: int, reason: str = "rank died") -> None:
        """Sweep all state tied to a dead client rank.

        Called on a launcher-side SOP_RANK_DEAD notification or a lease
        expiry.  Safe if the rank is merely slow: its unit is re-run
        elsewhere (at-least-once semantics) and it can no longer be
        granted work or block shutdown.
        """
        if rank in self._dead_ranks or self.layout.is_server(rank):
            return
        self._dead_ranks.add(rank)
        self.lease_stats.dead_ranks += 1
        if self.tracer is not None:
            self.tracer.instant(self.rank, "adlb", "rank_dead", {"rank": rank})
        # The dead rank can never request work or ack shutdown again.
        self.attached_clients.discard(rank)
        self._shutdown_acked.discard(rank)
        self.parked = [p for p in self.parked if p.rank != rank]
        # Re-aim queued tasks that could only run on the dead rank.
        for task in self.queue.remove_targeted(rank):
            self._accept_task(dataclasses.replace(task, target=-1))
        if self._leases is None:
            return
        lease = self._leases.pop(rank, None)
        if lease is None:
            return
        task = lease.task
        if task.target == rank:
            task = dataclasses.replace(task, target=-1)
        attempts = task.attempts + 1
        # A unit lost to a rank death gets at least one more chance,
        # even when task retries are disabled.
        if attempts <= max(1, self.max_retries):
            self._requeue(task, attempts)
        else:
            self._give_up(
                TaskFailure(
                    rank=rank,
                    kind="task",
                    payload=snippet(task.payload),
                    attempts=attempts,
                    error=reason,
                )
            )

    def _lease_tick(self) -> None:
        """Release due backoff requeues; expire overdue leases."""
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, task = heapq.heappop(self._delayed)
            self._accept_task(task)
        if now < self._next_lease_check:
            return
        self._next_lease_check = now + 0.05
        expired = [l for l in self._leases.values() if l.deadline <= now]
        for lease in expired:
            self.lease_stats.expired += 1
            if self.tracer is not None:
                self.tracer.instant(
                    self.rank,
                    "adlb",
                    "lease_expired",
                    {"client": lease.client, "type": lease.task.type},
                )
            self._mark_rank_dead(
                lease.client,
                reason="lease expired after %.1fs (rank presumed dead)"
                % self.lease_timeout,
            )

    # ---------------------------------------------------------------- stealing

    def _maybe_steal(self) -> None:
        if (
            not self.steal_enabled
            or self._steal_inflight
            or not self.parked
            or self.shutting_down
        ):
            return
        victim = self._other_servers[self._steal_ring % len(self._other_servers)]
        self._steal_ring += 1
        self._steal_inflight = True
        self.stats.steal_requests += 1
        if self.tracer is not None:
            self.tracer.instant(self.rank, "adlb", "steal_req", {"victim": victim})
        self.comm.send({"op": C.SOP_STEAL_REQ}, victim, C.TAG_SERVER)

    def _idle_tick(self) -> None:
        self._maybe_steal()
        if self._poisoned and not self.shutting_down:
            self._drain_tick()

    # ------------------------------------------------------- poisoned drain

    def _quiescent(self) -> bool:
        """Nothing on this server can make progress: every attached
        client is parked waiting for work, no work is queued, delayed,
        or leased out."""
        return (
            len(self.parked) >= len(self.attached_clients)
            and self.queue.size == 0
            and not self._delayed
            and not self._leases
        )

    def _drain_tick(self) -> None:
        """Master-side shutdown of a poisoned run.

        A permanently failed unit (on_error="continue") poisons the
        run: dataflow blocked on its outputs can never resolve, so the
        termination counter will never reach zero.  Once the system is
        quiescent — every client parked, nothing queued/delayed/leased
        anywhere, counter stable — the remaining units are unreachable
        and the master shuts the run down so `continue` terminates.
        """
        if not (self.is_master and self.work_started and self.work_count > 0):
            return
        now = time.monotonic()
        if not self._quiescent():
            self._drain_since = None
            self._drain_probing = False
            return
        if self._drain_since is None or self._drain_count != self.work_count:
            self._drain_since = now
            self._drain_count = self.work_count
            self._drain_probing = False
            return
        # Require the quiescent state to hold briefly so in-flight
        # oneway messages (puts, decrements) get a chance to land.
        if now - self._drain_since < 0.1 or self._drain_probing:
            return
        if not self._other_servers:
            self._drain_shutdown()
            return
        self._drain_probing = True
        self._drain_probes_ok = set()
        for s in self._other_servers:
            self.comm.send({"op": C.SOP_DRAIN_PROBE}, s, C.TAG_SERVER)

    def _drain_shutdown(self) -> None:
        if self.shutting_down:
            return
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "drain_shutdown",
                {"abandoned_units": self.work_count},
            )
        self._initiate_shutdown()

    # ---------------------------------------------------------------- shutdown

    def _initiate_shutdown(self) -> None:
        for s in self.layout.servers:
            if s != self.rank:
                self.comm.send({"op": C.SOP_SHUTDOWN}, s, C.TAG_SERVER)
        self._enter_shutdown()

    def _enter_shutdown(self) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        for parked in self.parked:
            tag = C.TAG_ASYNC if parked.is_async else C.TAG_RESPONSE
            self.comm.send(("shutdown",), parked.rank, tag)
            self._shutdown_acked.add(parked.rank)
        self.parked = []


_NO_REPLY = object()
