"""The ADLB server loop.

Each server owns a slice of the data store (TDs with ``id % n_servers``
matching its index), a work queue, and the parked GET requests of its
attached clients.  The first server additionally runs the distributed
termination counter: clients increment it for every unit of pending
work (rules, tasks, the initial program) and decrement on completion;
when it returns to zero the master fans out shutdown.

Work stealing: a server whose parked GETs cannot be satisfied locally
probes the other servers round-robin for untargeted tasks, as in ADLB.

Fault tolerance (``replicate=True``): every mutation — data-store ops,
work-queue inserts/grants, termination-counter changes — is logged to
the server's *buddy* (the next live server in ring order) as batched
``SOP_REPLICATE`` entries, flushed at every dispatch boundary.  Injected
kills fire *between* dispatches (fail-stop), so a dead server's
replicated image is exact.  The buddy detects death by notification or
heartbeat loss, promotes the replica shard, re-routes clients via the
shared epoch-stamped :class:`~repro.adlb.layout.ServerMap`, adopts the
dead server's leases and attached clients, and scavenges its undelivered
mailbox.  Without replication, a server death raises a diagnostic
:class:`~repro.faults.ServerLost` instead of hanging the run.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from dataclasses import dataclass, field
from typing import Any

from ..faults import (
    EngineLost,
    QuarantinedTask,
    RankKilled,
    ServerLost,
    TaskError,
    TaskFailure,
    snippet,
)
from ..mpi import Comm
from . import constants as C
from .datastore import DataStore, DataStoreError, Notification, RefStore
from .layout import Layout, ServerMap
from .workqueue import Task, WorkQueue


@dataclass
class ParkedGet:
    rank: int
    types: tuple[str, ...]
    is_async: bool
    seq: int = -1  # reliable-RPC sequence of the parked request


@dataclass
class _Lease:
    """One handed-out work unit awaiting completion by ``client``."""

    task: Task
    client: int
    deadline: float


@dataclass
class LeaseStats:
    """Lease-layer counters, folded into metrics as ``adlb.lease.*``."""

    granted: int = 0
    requeued: int = 0
    expired: int = 0
    dead_ranks: int = 0
    failed_permanent: int = 0


@dataclass
class ReplStats:
    """Replication counters, folded into metrics as ``adlb.repl.*``."""

    batches_sent: int = 0
    entries_sent: int = 0
    entries_applied: int = 0
    heartbeats: int = 0
    resilvers: int = 0
    server_deaths: int = 0
    promotions: int = 0
    scavenged_msgs: int = 0
    dedup_hits: int = 0
    # Peak op-log entries sent but not yet acked by the buddy (worst
    # replication lag observed; per-rank gauge on traced runs).
    max_lag: int = 0


@dataclass
class CkptStats:
    """Checkpoint counters, folded into metrics as ``adlb.ckpt.*``."""

    written: int = 0
    abandoned: int = 0
    units_captured: int = 0


@dataclass
class QuarantineStats:
    """Poison-task counters, folded into metrics as ``adlb.quarantine.*``."""

    quarantined: int = 0
    rank_kills: int = 0  # total rank deaths across quarantined units' chains


class RuleJournal:
    """Server-side mirror of one engine's pending rule table.

    Built from the engine's streamed rule-lifecycle entries; at engine
    death :meth:`pending` yields exactly the rules the dead engine had
    registered but not yet fired/released (checkpoint-rule format, so
    an adopter replays them through ``add_rule``).  ``guard`` is the
    program/restore guard unit the engine holds, ``ctask_done`` marks a
    control task whose effects are journaled but whose lease has not
    been returned yet (its lease must not requeue).
    """

    __slots__ = ("rules", "guard", "ctask_done", "last_heard")

    def __init__(self) -> None:
        self.rules: dict[int, dict] = {}  # rule id -> {inputs: set, ...}
        self.guard = 0
        self.ctask_done = False
        self.last_heard = time.monotonic()

    def apply(self, entries: list) -> None:
        for entry in entries:
            kind = entry[0]
            if kind == "create":
                rule = dict(entry[1])
                rule["inputs"] = set(rule["inputs"])
                self.rules[rule["id"]] = rule
            elif kind == "close":
                td = entry[1]
                for rule in self.rules.values():
                    rule["inputs"].discard(td)
            elif kind == "done":
                self.rules.pop(entry[1], None)
            elif kind == "guard":
                self.guard = entry[1]
            elif kind == "ctask_done":
                self.ctask_done = True
            elif kind == "ctask_clear":
                self.ctask_done = False
            else:
                raise RuntimeError("unknown journal entry %r" % (kind,))

    def pending(self) -> list[dict]:
        """Pending rules in checkpoint-rule format for adoption replay."""
        return [
            {
                "inputs": sorted(rule["inputs"]),
                "action": rule["action"],
                "type": rule["type"],
                "target": rule["target"],
                "priority": rule["priority"],
                "name": rule["name"],
            }
            for rule in self.rules.values()
        ]

    def state(self) -> dict:
        """Serializable image for resilver transfer."""
        return {
            "rules": [
                dict(rule, inputs=sorted(rule["inputs"]))
                for rule in self.rules.values()
            ],
            "guard": self.guard,
            "ctask_done": self.ctask_done,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RuleJournal":
        journal = cls()
        for rule in state["rules"]:
            rule = dict(rule)
            rule["inputs"] = set(rule["inputs"])
            journal.rules[rule["id"]] = rule
        journal.guard = state["guard"]
        journal.ctask_done = state["ctask_done"]
        return journal


#: dedup-cache marker: the request is parked, there is no reply to resend
_PARKED = "__parked__"


class Replica:
    """Shadow of one ward server's replicable state, held by its buddy.

    Built incrementally from the ward's op-log entries (or wholesale
    from a ``reset`` resilver image); promoted into the buddy's own
    state when the ward dies.  ``replay_ok`` on the shadow store keeps
    a resilver/incremental overlap from raising.
    """

    def __init__(self) -> None:
        self.store = DataStore(replay_ok=True)
        self.tasks: dict[int, Task] = {}  # uid -> queued/delayed task
        self.leases: dict[int, Task] = {}  # client -> granted task
        # client -> (seq, (tag, payload)): plain-RPC, sync-GET, and
        # async-park dedup slots.  Three slots because the channels
        # interleave: a parked engine keeps issuing sync RPCs, and a
        # worker's split GET stays outstanding across its decr_work —
        # one shared slot would let a later reply evict an earlier
        # channel's cached reply while its client still awaits it.
        self.dedup: dict[int, tuple[int, Any]] = {}
        self.gdedup: dict[int, tuple[int, Any]] = {}
        self.adedup: dict[int, tuple[int, Any]] = {}
        self.dead_ranks: set[int] = set()
        # engine rank -> mirrored rule journal (survives anchor death)
        self.journals: dict[int, RuleJournal] = {}
        self.work_count = 0
        self.work_started = False
        self.poisoned = False
        self.next_id = 1
        self.last_heard = time.monotonic()

    def apply(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "data":
            self._apply_data(entry[1])
        elif kind == "task+":
            task = entry[1]
            self.tasks[task.uid] = task
        elif kind == "task-":
            for uid in entry[1]:
                self.tasks.pop(uid, None)
        elif kind == "grant":
            _, task, client, seq, reply = entry
            self.tasks.pop(task.uid, None)
            self.leases[client] = task
            if seq is not None and seq >= 0:
                slot = self.adedup if reply[0] == C.TAG_ASYNC else self.gdedup
                cur = slot.get(client)
                if cur is None or seq >= cur[0]:
                    slot[client] = (seq, reply)
        elif kind == "done":
            self.leases.pop(entry[1], None)
        elif kind == "dedup":
            _, client, seq, reply = entry
            cur = self.dedup.get(client)
            if cur is None or seq >= cur[0]:
                self.dedup[client] = (seq, reply)
        elif kind == "work":
            _, self.work_count, self.work_started, self.poisoned = entry
        elif kind == "master":
            self.next_id = entry[1]
        elif kind == "deadrank":
            self.dead_ranks.add(entry[1])
        elif kind == "journal":
            self.journals.setdefault(entry[1], RuleJournal()).apply(entry[2])
        elif kind == "journal_clear":
            self.journals.pop(entry[1], None)
        elif kind == "reset":
            state = entry[1]
            self.store.load_snapshot(state["store"])
            self.tasks = {t.uid: t for t in state["tasks"]}
            self.leases = dict(state["leases"])
            self.dedup = dict(state["dedup"])
            self.gdedup = dict(state["gdedup"])
            self.adedup = dict(state["adedup"])
            self.dead_ranks = set(state["dead_ranks"])
            self.journals = {
                r: RuleJournal.from_state(s)
                for r, s in state.get("journals", {}).items()
            }
            self.work_count = state["work_count"]
            self.work_started = state["work_started"]
            self.poisoned = state["poisoned"]
            self.next_id = state["next_id"]
        else:
            raise RuntimeError("unknown replication entry %r" % (kind,))

    def _apply_data(self, msg: dict) -> None:
        """Replay one data-store mutation onto the shadow store.

        Notifications and ref store-throughs are discarded — the owner
        already emitted them; the shadow only tracks resulting state."""
        op = msg["op"]
        s = self.store
        try:
            if op == C.OP_CREATE:
                s.create(
                    msg["id"],
                    msg["type"],
                    write_refcount=msg.get("write_refcount", 1),
                    read_refcount=msg.get("read_refcount", 1),
                )
            elif op == C.OP_MULTICREATE:
                for spec in msg["specs"]:
                    s.create(
                        spec["id"],
                        spec["type"],
                        write_refcount=spec.get("write_refcount", 1),
                        read_refcount=spec.get("read_refcount", 1),
                    )
            elif op == C.OP_STORE:
                s.store(
                    msg["id"],
                    msg["value"],
                    subscript=msg.get("subscript"),
                    decr_write=msg.get("decr_write", 1),
                )
            elif op == C.OP_SUBSCRIBE:
                s.subscribe(msg["id"], msg["rank"])
            elif op == C.OP_CONTAINER_REF:
                s.container_reference(msg["id"], msg["subscript"], msg["ref_id"])
            elif op == C.OP_REFCOUNT:
                s.refcount(
                    msg["id"],
                    read_delta=msg.get("read_delta", 0),
                    write_delta=msg.get("write_delta", 0),
                )
            elif op == C.OP_REFCOUNT_BATCH:
                for item in msg["ops"]:
                    s.refcount(
                        item["id"],
                        read_delta=item.get("read_delta", 0),
                        write_delta=item.get("write_delta", 0),
                    )
        except DataStoreError:
            # The owner validated the op before logging it; a replay
            # divergence (e.g. resilver overlap) must not kill the buddy.
            pass


@dataclass
class ServerStats:
    """Per-server counter snapshot.

    Kept as the stable ``RunResult.server_stats`` surface; the values
    are folded into the run's :class:`repro.obs.Metrics` registry
    (``adlb.*`` counters) when tracing is enabled.
    """

    tasks_queued: int = 0
    tasks_matched: int = 0
    tasks_matched_targeted: int = 0
    steal_requests: int = 0
    tasks_stolen_in: int = 0
    tasks_stolen_out: int = 0
    data_ops: int = 0
    max_queue: int = 0
    idle_polls: int = 0


#: client data ops traced as ``adlb``-category instants
_DATA_OPS = {
    C.OP_CREATE,
    C.OP_MULTICREATE,
    C.OP_STORE,
    C.OP_RETRIEVE,
    C.OP_EXISTS,
    C.OP_SUBSCRIBE,
    C.OP_CONTAINER_REF,
    C.OP_ENUMERATE,
    C.OP_REFCOUNT,
    C.OP_REFCOUNT_BATCH,
    C.OP_TYPEOF,
}

#: ops whose replies need no cross-server dedup replication: replaying
#: them after a failover cannot corrupt state (GETs are dedup'd through
#: the grant path instead).
_READ_ONLY_OPS = {
    C.OP_RETRIEVE,
    C.OP_EXISTS,
    C.OP_TYPEOF,
    C.OP_ENUMERATE,
    C.OP_STATS,
    C.OP_GET,
    C.OP_GET_ASYNC,
}


class Server:
    def __init__(
        self,
        comm: Comm,
        layout: Layout,
        steal: bool = True,
        tracer: Any | None = None,
        leases: bool = False,
        lease_timeout: float = 60.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        on_error: str = "retry",
        server_map: ServerMap | None = None,
        replicate: bool = False,
        faults: Any | None = None,
        reliable: bool = False,
        checkpoint_path: str | None = None,
        checkpoint_interval: float | None = None,
        restore_shard: dict | None = None,
        monitor: Any | None = None,
        status_interval: float | None = None,
        journal: bool = False,
    ):
        self.comm = comm
        self.layout = layout
        self.rank = comm.rank
        self.steal_enabled = steal and layout.n_servers > 1
        self.tracer = tracer
        # Reliable mode (re-sendable RPCs) and checkpoint restore can
        # replay a mutation that already landed; the store then treats
        # exact duplicates as no-ops instead of DoubleWriteError.
        self.store = DataStore(replay_ok=reliable or restore_shard is not None)
        self.reliable = reliable
        self.queue = WorkQueue()
        self.parked: list[ParkedGet] = []
        self.stats = ServerStats()
        # Lease table: None when disabled, so the hot path stays a
        # single `is None` test per handout/completion.
        self._leases: dict[int, _Lease] | None = {} if leases else None
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.on_error = on_error
        self.lease_stats = LeaseStats()
        self.failures: list[TaskFailure] = []
        # ---- engine rule-table journaling -----------------------------
        self.journal = journal
        # engine rank -> its journaled rule table (this server is the
        # engine's anchor; entries ride the op-log to the buddy too).
        self._journals: dict[int, RuleJournal] = {}
        # Units withdrawn as poisonous (their attempts kept killing
        # their host ranks); collected onto RunResult.quarantined.
        self.quarantined: list[QuarantinedTask] = []
        self.quarantine_stats = QuarantineStats()
        # (release_at, seq, task) heap of backoff-delayed requeues
        self._delayed: list[tuple[float, int, Task]] = []
        self._delay_seq = 0
        self._dead_ranks: set[int] = set()
        self._next_lease_check = 0.0
        # Drain-shutdown state (master only): set when a poisoned
        # decrement reports a permanently failed unit whose dependent
        # dataflow can never resolve.
        self._poisoned = False
        self._drain_since: float | None = None
        self._drain_count = 0
        self._drain_probes_ok: set[int] = set()
        self._drain_probing = False
        self.is_master = self.rank == layout.master_server
        # termination counter (master only)
        self.work_count = 0
        self.work_started = False
        self.shutting_down = False
        self._shutdown_sent: set[int] = set()
        # id allocation (master only)
        self._next_id = 1
        # steal state
        self._steal_inflight = False
        self._steal_ring = 0
        self._other_servers = [s for s in layout.servers if s != self.rank]
        # Clients attached to this server for work requests; each must be
        # told to shut down before this server may exit.
        self.attached_clients = {
            r
            for r in range(layout.size)
            if not layout.is_server(r) and layout.my_server(r) == self.rank
        }
        self._shutdown_acked: set[int] = set()
        # ---- fault tolerance ------------------------------------------
        self.map = server_map
        self.faults = faults
        self.replicate = replicate and layout.n_servers >= 2
        if self.replicate and self.map is None:
            # Replication routes through a shared epoch-stamped map.
            self.map = ServerMap(layout)
        self.repl_stats = ReplStats()
        self.ckpt_stats = CkptStats()
        # RPC dedup caches: client -> (seq, (tag, payload)); payload may
        # be the _PARKED sentinel (request parked, nothing to resend).
        # Plain RPCs, sync GETs, and async parks interleave from one
        # client (a split GET stays outstanding across the worker's
        # decr_work), so each channel gets its own slot.
        self._dedup: dict[int, tuple[int, tuple[int, Any]]] = {}
        self._gdedup: dict[int, tuple[int, tuple[int, Any]]] = {}
        self._adedup: dict[int, tuple[int, tuple[int, Any]]] = {}
        self._buddy = self.map.buddy(self.rank) if self.replicate else None
        self._replicas: dict[int, Replica] = {}
        self._dead_servers: set[int] = set()
        self._repl_buf: list[tuple] = []
        self._repl_seq = 0  # entries sent
        self._repl_acked = 0  # entries the buddy confirmed applied
        self._last_flush = time.monotonic()
        self._ward_timeout = min(lease_timeout, 5.0)
        self._hb_interval = max(0.02, min(self._ward_timeout / 4, 0.25))
        self._uid_counter = 0
        # ---- live monitoring ------------------------------------------
        # The master server holds the shared RunMonitor; other servers
        # push their status dict to it every status_interval.  Checked
        # in the main loop (busy servers never reach _idle_tick).
        self._monitor = monitor
        self._status_interval = status_interval
        self._next_status = 0.0
        # ---- checkpointing (master drives) ----------------------------
        self.ckpt_path = checkpoint_path
        self.ckpt_interval = checkpoint_interval or 0.5
        self._ckpt_gen = 0
        self._ckpt_phase: str | None = None
        self._ckpt_started = 0.0
        self._ckpt_parts: dict[tuple[str, int], dict] = {}
        self._ckpt_waiting: set[int] = set()
        self._last_ckpt = time.monotonic()
        if restore_shard is not None:
            self._load_shard(restore_shard)
        # Hang reports dump this server's lease table and replication
        # lag, so a stuck run is diagnosable from the exception alone.
        comm.register_diagnostic(self._diagnostic)
        # Always-on flight recorder (may be None); single `is None`
        # test per hook, same discipline as tracer/faults.
        self.flightrec = comm.world.flightrec

    def _load_shard(self, shard: dict) -> None:
        """Adopt a checkpoint shard (``repro run --restore``)."""
        self.store.load_snapshot(shard["store"])
        for task in shard.get("tasks", ()):
            self._accept_task(task)
        if shard.get("next_id") is not None:
            self._next_id = shard["next_id"]
        if shard.get("work_count") is not None:
            self.work_count = shard["work_count"]
            self.work_started = True

    # ------------------------------------------------------------------ loop

    def run(self) -> ServerStats:
        """Serve until shutdown completes; returns server statistics."""
        if self.replicate:
            # Establish the ward heartbeat immediately so buddies can
            # tell "never started" from "died silently".
            self._repl_flush(heartbeat=True)
        try:
            while not self._done():
                got = self.comm.recv_poll(timeout=0.02)
                if self._leases is not None:
                    self._lease_tick()
                if self._status_interval is not None:
                    self._status_tick()
                if got is None:
                    self.stats.idle_polls += 1
                    self._idle_tick()
                    continue
                msg, status = got
                self._dispatch(msg, status.source, status.tag)
        except RankKilled as e:
            if self.replicate and not e.silent:
                # Final gasp: push any unflushed op-log tail to the
                # buddy before dying (a silent kill models an abrupt
                # crash, so it gets no such courtesy).
                try:
                    self._repl_flush()
                except Exception:
                    pass
            raise
        self._journal_sweep()
        if self._status_interval is not None:
            # Final status so the driver's last sample reflects the
            # completed run even when shorter than one interval.
            self._next_status = 0.0
            self._status_tick()
        if self.tracer is not None:
            self.tracer.metrics.fold_struct("adlb", self.stats, rank=self.rank)
            if self._leases is not None:
                self.tracer.metrics.fold_struct(
                    "adlb.lease", self.lease_stats, rank=self.rank
                )
            if self.replicate or self.reliable:
                self.tracer.metrics.fold_struct(
                    "adlb.repl", self.repl_stats, rank=self.rank
                )
            if self.ckpt_path is not None:
                self.tracer.metrics.fold_struct(
                    "adlb.ckpt", self.ckpt_stats, rank=self.rank
                )
            if self.quarantined:
                self.tracer.metrics.fold_struct(
                    "adlb.quarantine", self.quarantine_stats, rank=self.rank
                )
        return self.stats

    def _done(self) -> bool:
        return (
            self.shutting_down
            and self._shutdown_acked >= self.attached_clients
        )

    def _journal_sweep(self) -> None:
        """Drain in-flight journal flushes after a clean shutdown.

        An engine's final ``done`` entry is flushed *after* the
        ``decr_work`` that zeroes the termination counter (the jot is
        buffered in ``drain()``; the flush lands at the next loop
        boundary), and parked clients are acked without a round trip —
        so this server can satisfy :meth:`_done` while that last
        ``OP_JOURNAL`` oneway is still in its mailbox or on the wire.
        The engine is guaranteed to send it before blocking, so a
        short bounded drain makes the mirrors exact for the terminal
        audit; a live engine's mirror that *stays* pending past the
        deadline is a real leak and is left for the audit to flag.
        """
        live_pending = lambda: any(  # noqa: E731
            journal.rules
            for engine, journal in self._journals.items()
            if engine not in self._dead_ranks
        )
        if not live_pending():
            return
        deadline = time.monotonic() + 1.0
        while live_pending() and time.monotonic() < deadline:
            got = self.comm.recv_poll(timeout=0.02)
            if got is None:
                continue
            msg, status = got
            if isinstance(msg, dict) and msg.get("op") == C.OP_JOURNAL:
                jr = self._journals.setdefault(
                    msg.get("rank", status.source), RuleJournal()
                )
                jr.apply(msg["entries"])
                jr.last_heard = time.monotonic()
            # Anything else (heartbeats, reliable-RPC resends) would
            # have been dropped by exiting anyway; discard it.

    def audit_row(self) -> dict:
        """Terminal bookkeeping snapshot for run-invariant auditing.

        Called once, after :meth:`run` returns on a clean shutdown
        (never on a killed rank), by the runtime's collection path when
        ``RuntimeConfig.audit`` is set.  Pure reads — the server loop
        has already exited, so no lock is needed.  The conservation
        laws over these rows live in :mod:`repro.chaos.invariants`.
        """
        return {
            "role": "server",
            "rank": self.rank,
            "is_master": self.is_master,
            "work_started": self.work_started,
            "work_count": self.work_count,
            "poisoned": self._poisoned,
            "queued_tasks": self.queue.size,
            "delayed_tasks": len(self._delayed),
            "parked_gets": len(self.parked),
            # client rank -> uid of the task it still holds a lease on
            "leases": {
                client: str(lease.task.uid)
                for client, lease in (self._leases or {}).items()
            },
            # engine rank -> rules still pending in its journal mirror
            "journal_pending": {
                engine: len(journal.rules)
                for engine, journal in self._journals.items()
            },
            # per-channel dedup-slot counts (bounded by client count)
            "dedup_slots": {
                "rpc": len(self._dedup),
                "get": len(self._gdedup),
                "async": len(self._adedup),
            },
            "dead_ranks": sorted(self._dead_ranks),
            "attached_clients": len(self.attached_clients),
            "failures": len(self.failures),
            "quarantined": len(self.quarantined),
        }

    # ---------------------------------------------------------------- dispatch

    def _dispatch(self, msg: dict, source: int, tag: int) -> None:
        if self.faults is not None:
            directive = self.faults.on_server_op(self.rank)
            if directive is not None:
                # Fail-stop at the message boundary: nothing of this
                # dispatch has run, so the replicated image is exact.
                raise RankKilled(self.rank, silent=directive[1])
        op = msg["op"]
        if tag == C.TAG_SERVER:
            self._server_op(op, msg, source)
        else:
            seq = msg.get("seq", -1)
            if seq >= 0 and self._dedup_hit(msg, source, seq):
                pass
            else:
                try:
                    result = self._client_op(op, msg, source)
                except DataStoreError as e:
                    if tag == C.TAG_REQUEST:
                        self._reply(("error", str(e)), source, seq)
                    else:
                        raise
                else:
                    if tag == C.TAG_REQUEST and result is not _NO_REPLY:
                        self._reply(("ok", result), source, seq)
                if seq >= 0 and op not in _READ_ONLY_OPS:
                    cached = self._dedup.get(source)
                    if cached is not None and cached[0] == seq:
                        self._repl(("dedup", source, seq, cached[1]))
        # Replication batches flush at every dispatch boundary, so the
        # buddy's image is at most one in-flight batch behind.
        if self._repl_buf:
            self._repl_flush()

    def _reply(self, payload: tuple, source: int, seq: int) -> None:
        """Send a TAG_RESPONSE reply, seq-stamped and dedup-cached when
        the request came from a reliable client."""
        if seq >= 0:
            payload = payload + (seq,)
            self._dedup[source] = (seq, (C.TAG_RESPONSE, payload))
        self.comm.send(payload, source, C.TAG_RESPONSE)

    def _dedup_hit(self, msg: dict, source: int, seq: int) -> bool:
        """True when a seq-stamped request is a duplicate and was fully
        handled here (cached reply resent, or silently dropped)."""
        op = msg["op"]
        is_async = op == C.OP_GET_ASYNC
        if is_async:
            slot = self._adedup
        elif op == C.OP_GET:
            slot = self._gdedup
        else:
            slot = self._dedup
        cached = slot.get(source)
        if cached is None:
            return False
        cseq, (ctag, cpayload) = cached
        if seq > cseq:
            return False  # genuinely new request
        if seq < cseq:
            return True  # duplicate of an already-superseded request
        if cpayload is _PARKED:
            # Re-sent park (failover or resend timer): reprocess so the
            # request parks — or is served — at the current owner.
            self.repl_stats.dedup_hits += 1
            self._unpark(source)
            return False
        self.repl_stats.dedup_hits += 1
        if is_async:
            # Re-ack the park, then resend the grant; the client drops
            # whichever copy it already consumed by sequence number.
            self.comm.send(("parked", seq), source, C.TAG_RESPONSE)
        self.comm.send(cpayload, source, ctag)
        return True

    def _unpark(self, rank: int) -> None:
        self.parked = [p for p in self.parked if p.rank != rank]

    # -------------------------------------------------------------- client ops

    def _client_op(self, op: str, msg: dict, source: int) -> Any:
        tracer = self.tracer
        if tracer is not None and op in _DATA_OPS:
            tracer.instant(
                self.rank, "adlb", "data:" + op.lower(), {"client": source}
            )
        if op == C.OP_PUT:
            task = Task(
                type=msg["type"],
                payload=msg["payload"],
                priority=msg.get("priority", 0),
                target=msg.get("target", -1),
                prov=msg.get("prov"),
            )
            if tracer is not None:
                tracer.instant(
                    self.rank,
                    "adlb",
                    "put",
                    {"type": task.type, "targeted": task.target >= 0},
                )
            self._accept_task(task)
            return None
        if op == C.OP_GET:
            seq = msg.get("seq", -1)
            if self._leases is not None:
                # Asking for the next task completes the previous lease.
                if self._leases.pop(source, None) is not None:
                    self._repl(("done", source))
            if self.shutting_down:
                payload: tuple = ("shutdown",)
                if seq >= 0:
                    payload = payload + (seq,)
                    self._gdedup[source] = (seq, (C.TAG_RESPONSE, payload))
                self.comm.send(payload, source, C.TAG_RESPONSE)
                self._shutdown_acked.add(source)
                return _NO_REPLY
            types = tuple(msg["types"])
            task = self.queue.pop(types, source)
            if task is not None:
                self._record_match(task)
                self._send_grant(task, source, is_async=False, seq=seq)
            else:
                if tracer is not None:
                    tracer.instant(
                        self.rank, "adlb", "get_park", {"client": source}
                    )
                self._park(source, types, is_async=False, seq=seq)
                self._maybe_steal()
            return _NO_REPLY
        if op == C.OP_GET_ASYNC:
            seq = msg.get("seq", -1)
            if seq >= 0:
                # Reliable clients block on this acknowledgement so
                # "parked" is distinguishable from "request lost"; it
                # goes out in every branch (the grant/shutdown travels
                # separately on the async channel).
                self.comm.send(("parked", seq), source, C.TAG_RESPONSE)
            if self._leases is not None:
                if self._leases.pop(source, None) is not None:
                    self._repl(("done", source))
                    # The lease's control task is fully accounted by
                    # the engine now; a later engine death must not
                    # repair it again.
                    jr = self._journals.get(source)
                    if jr is not None and jr.ctask_done:
                        jr.ctask_done = False
                        self._repl(("journal", source, [("ctask_clear",)]))
            if self.shutting_down:
                self.comm.send(("shutdown",), source, C.TAG_ASYNC)
                self._shutdown_acked.add(source)
                return _NO_REPLY
            types = tuple(msg["types"])
            task = self.queue.pop(types, source)
            if task is not None:
                self._record_match(task)
                self._send_grant(task, source, is_async=True, seq=seq)
            else:
                if tracer is not None:
                    tracer.instant(
                        self.rank, "adlb", "get_park", {"client": source}
                    )
                self._park(source, types, is_async=True, seq=seq)
                self._maybe_steal()
            return _NO_REPLY
        if op == C.OP_ID_BLOCK:
            assert self.is_master, "id blocks come from the master server"
            start = self._next_id
            self._next_id += C.ID_BLOCK_SIZE
            self._repl(("master", self._next_id))
            return (start, C.ID_BLOCK_SIZE)
        if op == C.OP_CREATE:
            self.stats.data_ops += 1
            self.store.create(
                msg["id"],
                msg["type"],
                write_refcount=msg.get("write_refcount", 1),
                read_refcount=msg.get("read_refcount", 1),
            )
            self._repl(("data", msg))
            return msg["id"]
        if op == C.OP_MULTICREATE:
            self.stats.data_ops += 1
            for spec in msg["specs"]:
                self.store.create(
                    spec["id"],
                    spec["type"],
                    write_refcount=spec.get("write_refcount", 1),
                    read_refcount=spec.get("read_refcount", 1),
                )
            self._repl(("data", msg))
            return len(msg["specs"])
        if op == C.OP_STORE:
            self.stats.data_ops += 1
            notes, refs = self.store.store(
                msg["id"],
                msg["value"],
                subscript=msg.get("subscript"),
                decr_write=msg.get("decr_write", 1),
            )
            self._repl(("data", msg))
            self._emit(notes, refs)
            return None
        if op == C.OP_RETRIEVE:
            self.stats.data_ops += 1
            # Reply is (value, closed): the closed bit marks the value
            # immutable, licensing the client to cache it locally.
            return self.store.retrieve_tagged(
                msg["id"], subscript=msg.get("subscript")
            )
        if op == C.OP_EXISTS:
            self.stats.data_ops += 1
            return self.store.exists(msg["id"], subscript=msg.get("subscript"))
        if op == C.OP_TYPEOF:
            return self.store.lookup(msg["id"]).type
        if op == C.OP_SUBSCRIBE:
            self.stats.data_ops += 1
            closed = self.store.subscribe(msg["id"], msg.get("rank", source))
            if not closed:
                self._repl(
                    ("data", dict(msg, rank=msg.get("rank", source)))
                )
            return closed
        if op == C.OP_CONTAINER_REF:
            self.stats.data_ops += 1
            ref = self.store.container_reference(
                msg["id"], msg["subscript"], msg["ref_id"]
            )
            if ref is not None:
                self._emit([], [ref])
            else:
                self._repl(("data", msg))
            return None
        if op == C.OP_ENUMERATE:
            self.stats.data_ops += 1
            return self.store.enumerate(msg["id"])
        if op == C.OP_REFCOUNT:
            self.stats.data_ops += 1
            notes = self.store.refcount(
                msg["id"],
                read_delta=msg.get("read_delta", 0),
                write_delta=msg.get("write_delta", 0),
            )
            self._repl(("data", msg))
            self._emit(notes, [])
            # freed: the read refcount dropped the TD; clients evict it
            # from their retrieve caches.
            return {"freed": msg["id"] not in self.store.tds}
        if op == C.OP_REFCOUNT_BATCH:
            # Coalesced refcount deltas from one client task (one entry
            # per id).  Ops are applied in order; if one fails, the
            # preceding ops stay applied and the error is reported for
            # the whole batch — matching the per-op RPC failure the
            # client would have seen at its deferred call site.
            self.stats.data_ops += 1
            freed: list[int] = []
            for item in msg["ops"]:
                notes = self.store.refcount(
                    item["id"],
                    read_delta=item.get("read_delta", 0),
                    write_delta=item.get("write_delta", 0),
                )
                self._emit(notes, [])
                if item["id"] not in self.store.tds:
                    freed.append(item["id"])
            self._repl(("data", msg))
            return {"freed": freed}
        if op == C.OP_INCR_WORK:
            assert self.is_master
            self.work_count += msg.get("amount", 1)
            self.work_started = True
            self._repl_work()
            return None
        if op == C.OP_DECR_WORK:
            assert self.is_master
            if msg.get("poison"):
                self._poisoned = True
            self.work_count -= msg.get("amount", 1)
            if self.work_count < 0:
                raise DataStoreError("termination counter went negative")
            self._repl_work()
            if self.work_count == 0 and self.work_started:
                self._initiate_shutdown()
            return None
        if op == C.OP_TASK_FAIL:
            self._task_fail(source, msg)
            return None
        if op == C.OP_JOURNAL:
            # Engine rule-lifecycle journal (empty = pure heartbeat).
            rank = msg.get("rank", source)
            jr = self._journals.setdefault(rank, RuleJournal())
            jr.apply(msg["entries"])
            jr.last_heard = time.monotonic()
            if msg["entries"]:
                if self.flightrec is not None:
                    self.flightrec.record(
                        self.rank, "journal", len(msg["entries"]), rank
                    )
                self._repl(("journal", rank, msg["entries"]))
            return None
        if op == C.OP_STATS:
            from dataclasses import asdict

            return asdict(self.stats)
        raise DataStoreError("unknown ADLB op %r" % op)

    # --------------------------------------------------------------- server ops

    def _server_op(self, op: str, msg: dict, source: int) -> None:
        if op == C.SOP_STEAL_REQ:
            n = max(1, self.queue.size // 2)
            tasks = self.queue.steal(n) if self.queue.size else []
            self.stats.tasks_stolen_out += len(tasks)
            if self.tracer is not None:
                self.tracer.instant(
                    self.rank, "adlb", "steal_out", {"to": source, "n": len(tasks)}
                )
            self.comm.send(
                {"op": C.SOP_STEAL_RESP, "tasks": tasks}, source, C.TAG_SERVER
            )
            return
        if op == C.SOP_STEAL_RESP:
            self._steal_inflight = False
            tasks = msg["tasks"]
            self.stats.tasks_stolen_in += len(tasks)
            if self.tracer is not None:
                self.tracer.instant(
                    self.rank, "adlb", "steal_in", {"from": source, "n": len(tasks)}
                )
            for task in tasks:
                self._accept_task(task)
            # Empty responses retry from the idle tick, not immediately,
            # to avoid a steal storm when the whole system is idle.
            return
        if op == C.SOP_SHUTDOWN:
            self._enter_shutdown()
            return
        if op == C.SOP_STATUS:
            # Relayed status from a non-master server; drop it quietly
            # when not (or no longer) holding the monitor.
            if self._monitor is not None:
                self._monitor.update(msg["rank"], msg["status"])
            return
        if op == C.SOP_RANK_DEAD:
            rank = msg["rank"]
            if self.layout.is_server(rank):
                self._server_dead(rank, reason=msg.get("reason", "rank died"))
            else:
                self._mark_rank_dead(
                    rank, reason=msg.get("reason", "rank died")
                )
            return
        if op == C.SOP_REPLICATE:
            rep = self._replicas.setdefault(source, Replica())
            rep.last_heard = time.monotonic()
            for entry in msg["entries"]:
                rep.apply(entry)
            self.repl_stats.entries_applied += len(msg["entries"])
            self.comm.send(
                {"op": C.SOP_REPL_ACK, "seq": msg["seq"]},
                source,
                C.TAG_SERVER,
            )
            return
        if op == C.SOP_REPL_ACK:
            self._repl_acked = max(self._repl_acked, msg["seq"])
            return
        if op == C.SOP_CKPT_REQ:
            # Drain already-deposited messages first so in-flight puts
            # land in the snapshot (the master's request was sent after
            # every engine contributed, so anything an engine counted is
            # already in our mailbox).
            self._drain_mailbox()
            part = self._server_ckpt_part()
            part["op"] = C.SOP_CKPT_PART
            part["gen"] = msg["gen"]
            self.comm.send(part, source, C.TAG_SERVER)
            return
        if op == C.SOP_CKPT_PART:
            self._ckpt_part(msg, source)
            return
        if op == C.SOP_DRAIN_PROBE:
            self.comm.send(
                {"op": C.SOP_DRAIN_RESP, "quiescent": self._quiescent()},
                source,
                C.TAG_SERVER,
            )
            return
        if op == C.SOP_DRAIN_RESP:
            if self._drain_probing and msg["quiescent"]:
                self._drain_probes_ok.add(source)
                if self._drain_probes_ok >= set(self._other_servers):
                    self._drain_shutdown()
            elif self._drain_probing:
                # Someone still has runnable work: disarm and re-observe.
                self._drain_probing = False
                self._drain_since = None
            return
        raise RuntimeError("unknown server op %r" % op)

    # ---------------------------------------------------------------- matching

    def _record_match(self, task: Task) -> None:
        self.stats.tasks_matched += 1
        if task.target >= 0:
            self.stats.tasks_matched_targeted += 1
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "match",
                {"type": task.type, "targeted": task.target >= 0},
            )

    def _accept_task(self, task: Task) -> None:
        if task.uid < 0 and (self.replicate or self.tracer is not None):
            # Stable identity so op-log inserts/removals correlate and
            # provenance can chain retried attempts to their original.
            self._uid_counter += 1
            task = dataclasses.replace(
                task, uid=(self.rank << 20) | self._uid_counter
            )
            if self.tracer is not None:
                # Lineage node: a unit of queued work, linked back to
                # the rule/unit that spawned it.
                self.tracer.instant(
                    self.rank,
                    "prov",
                    "task",
                    {"uid": task.uid, "by": task.prov, "type": task.type},
                )
        for i, parked in enumerate(self.parked):
            if task.type in parked.types and task.target in (-1, parked.rank):
                del self.parked[i]
                self._record_match(task)
                self._send_grant(task, parked.rank, parked.is_async, parked.seq)
                return
        self.queue.push(task)
        self._repl(("task+", task))
        self.stats.tasks_queued += 1
        self.stats.max_queue = max(self.stats.max_queue, self.queue.size)

    def _send_grant(
        self, task: Task, source: int, is_async: bool, seq: int = -1
    ) -> None:
        """Hand a matched task to a client: lease it, send it, and
        replicate the grant (which doubles as the dedup record a
        failover heir resends)."""
        if is_async:
            payload: tuple = ("ctask", task.type, task.payload)
            tag = C.TAG_ASYNC
        else:
            payload = ("task", task.type, task.payload)
            tag = C.TAG_RESPONSE
        if seq >= 0:
            payload = payload + (seq,)
            slot = self._adedup if is_async else self._gdedup
            slot[source] = (seq, (tag, payload))
        if self._leases is not None:
            self._grant(task, source)
        if self.flightrec is not None:
            self.flightrec.record(
                self.rank, "grant", source, task.type, task.attempts
            )
        if self.tracer is not None:
            # Lineage edge: the queued unit was handed to this client;
            # the k-th grant to a rank pairs with its k-th executed unit
            # (one outstanding task per client).
            self.tracer.instant(
                self.rank,
                "prov",
                "grant",
                {"uid": task.uid, "client": source, "attempts": task.attempts},
            )
        self.comm.send(payload, source, tag)
        self._repl(
            ("grant", task, source, seq if seq >= 0 else None, (tag, payload))
        )

    def _park(
        self, rank: int, types: tuple[str, ...], is_async: bool, seq: int
    ) -> None:
        """Park a GET; a re-sent park replaces any stale entry so one
        client never holds two parked requests on a channel."""
        self._unpark(rank)
        self.parked.append(ParkedGet(rank, types, is_async=is_async, seq=seq))
        if seq >= 0:
            slot = self._adedup if is_async else self._gdedup
            slot[rank] = (seq, (C.TAG_RESPONSE, _PARKED))

    def _emit(self, notes: list[Notification], refs: list[RefStore]) -> None:
        for note in notes:
            self.comm.send(("notify", note.id), note.rank, C.TAG_ASYNC)
        for ref in refs:
            home = self._home(ref.ref_id)
            store_msg = {
                "op": C.OP_STORE,
                "id": ref.ref_id,
                "value": ref.value,
                "decr_write": 1,
            }
            if home == self.rank:
                notes2, refs2 = self.store.store(ref.ref_id, ref.value)
                self._repl(("data", store_msg))
                self._emit(notes2, refs2)
            else:
                self.comm.send(store_msg, home, C.TAG_ONEWAY)

    def _home(self, td_id: int) -> int:
        if self.map is not None:
            return self.map.home_server(td_id)
        return self.layout.home_server(td_id)

    # ------------------------------------------------------------- replication

    def _repl(self, entry: tuple) -> None:
        if self.replicate and self._buddy is not None:
            self._repl_buf.append(entry)

    def _repl_work(self) -> None:
        # Absolute counter state, not deltas: replays are idempotent.
        self._repl(
            ("work", self.work_count, self.work_started, self._poisoned)
        )

    def _repl_flush(self, heartbeat: bool = False) -> None:
        """Ship the op-log tail to the buddy.  Empty batches double as
        liveness heartbeats."""
        if not self.replicate or self._buddy is None:
            return
        buf, self._repl_buf = self._repl_buf, []
        self._repl_seq += len(buf)
        self.repl_stats.batches_sent += 1
        self.repl_stats.entries_sent += len(buf)
        lag = self._repl_seq - self._repl_acked
        if lag > self.repl_stats.max_lag:
            self.repl_stats.max_lag = lag
        if heartbeat:
            self.repl_stats.heartbeats += 1
        if buf and self.flightrec is not None:
            self.flightrec.record(self.rank, "repl_flush", len(buf), lag)
        if self.tracer is not None and buf:
            # Replication lag is causal state: a promotion can only
            # recover what was flushed, so the analyzer links these to
            # promote/requeue events.
            self.tracer.instant(
                self.rank,
                "repl",
                "flush",
                {"entries": len(buf), "seq": self._repl_seq, "lag": lag},
            )
        self.comm.send(
            {"op": C.SOP_REPLICATE, "entries": buf, "seq": self._repl_seq},
            self._buddy,
            C.TAG_SERVER,
        )
        self._last_flush = time.monotonic()

    def _resilver(self) -> None:
        """Replace the buddy's shadow with a full image of this server.

        Needed whenever incremental history is insufficient: at a buddy
        change (the old buddy — and the op-log it held — is gone) and
        after a promotion (this server's state just changed wholesale).
        """
        if not self.replicate or self._buddy is None:
            return
        self.repl_stats.resilvers += 1
        tasks = self.queue.all_tasks() + [t for _, _, t in self._delayed]
        state = {
            "store": self.store.snapshot(),
            "tasks": tasks,
            "leases": {c: l.task for c, l in (self._leases or {}).items()},
            "dedup": dict(self._dedup),
            "gdedup": dict(self._gdedup),
            "adedup": dict(self._adedup),
            "dead_ranks": set(self._dead_ranks),
            "work_count": self.work_count,
            "work_started": self.work_started,
            "poisoned": self._poisoned,
            "next_id": self._next_id,
            "journals": {r: j.state() for r, j in self._journals.items()},
        }
        self._repl_buf = [("reset", state)]
        self._repl_flush()

    # -------------------------------------------------------------- failover

    def _server_dead(
        self, dead: int, reason: str = "server died", broadcast: bool = False
    ) -> None:
        """A fellow server is gone: re-route, and promote its replica
        if this server is the heir.  Without replication this is fatal —
        the dead server's shard is unrecoverable — so fail loudly."""
        if dead == self.rank or dead in self._dead_servers:
            return
        if not self.replicate or self.map is None:
            raise ServerLost(dead, reason)
        self._dead_servers.add(dead)
        self.repl_stats.server_deaths += 1
        if self.flightrec is not None:
            self.flightrec.record(self.rank, "server_dead", dead)
        if self.tracer is not None:
            self.tracer.instant(
                self.rank, "adlb", "server_dead", {"rank": dead}
            )
        self.map.mark_dead(dead)
        if broadcast:
            # Heartbeat-detected death: the launcher sent no
            # notification, so tell the other survivors ourselves.
            for s in self.map.alive:
                if s != self.rank:
                    self.comm.send(
                        {"op": C.SOP_RANK_DEAD, "rank": dead, "reason": reason},
                        s,
                        C.TAG_SERVER,
                    )
        self._other_servers = [s for s in self.map.alive if s != self.rank]
        self._steal_inflight = False  # a pending steal may never answer
        if not self._other_servers:
            self.steal_enabled = False
        old_buddy = self._buddy
        self._buddy = self.map.buddy(self.rank)
        if self.map.resolve(dead) == self.rank:
            self._promote(dead)  # ends with a resilver to the new buddy
        else:
            self._replicas.pop(dead, None)
            if self._buddy != old_buddy:
                # Our op-log history died with the old buddy: full resync.
                self._resilver()

    def _promote(self, dead: int) -> None:
        """Absorb the dead server's replica shard into this server."""
        rep = self._replicas.pop(dead, None) or Replica()
        self.repl_stats.promotions += 1
        if self.flightrec is not None:
            self.flightrec.record(self.rank, "promote", dead)
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "promote",
                {"from": dead, "tds": len(rep.store.tds), "tasks": len(rep.tasks)},
            )
        self.store.absorb(rep.store)
        self.store.replay_ok = True  # scavenged re-sends may replay ops
        if not self.is_master and self.map.master == self.rank:
            # The master anchor now resolves here: adopt the termination
            # counter, poison flag, and ID allocator.
            self.work_count = rep.work_count
            self.work_started = rep.work_started
            self._poisoned = self._poisoned or rep.poisoned
            self._next_id = max(self._next_id, rep.next_id)
            self.is_master = True
        for client, cached in rep.dedup.items():
            cur = self._dedup.get(client)
            if cur is None or cached[0] > cur[0]:
                self._dedup[client] = cached
        for client, cached in rep.gdedup.items():
            cur = self._gdedup.get(client)
            if cur is None or cached[0] > cur[0]:
                self._gdedup[client] = cached
        for client, cached in rep.adedup.items():
            cur = self._adedup.get(client)
            if cur is None or cached[0] > cur[0]:
                self._adedup[client] = cached
        self._dead_ranks |= rep.dead_ranks
        # Engine rule journals anchored at the dead server now live
        # here.  The replica image merges first; flushes stranded in
        # the dead server's mailbox are re-applied by the scavenge
        # below, and the engine only re-aims new flushes at this heir
        # after it learns of the failover — so entry order holds.
        for r, j in rep.journals.items():
            self._journals.setdefault(r, j)
        # Adopt the dead server's clients: they re-route here and must
        # be shut down before this server may exit.
        for r in range(self.layout.size):
            if (
                not self.layout.is_server(r)
                and r not in self._dead_ranks
                and self.map.my_server(r) == self.rank
            ):
                self.attached_clients.add(r)
        for client, task in rep.leases.items():
            if client in self._dead_ranks:
                if task.target == client:
                    task = dataclasses.replace(task, target=-1)
                self._requeue(task, task.attempts + 1)
            elif self._leases is not None:
                self._leases[client] = _Lease(
                    task, client, time.monotonic() + self.lease_timeout
                )
        for task in list(rep.tasks.values()):
            self._accept_task(task)
        self._scavenge(dead)
        self._resilver()

    def _scavenge(self, dead: int) -> None:
        """Recover messages stranded in a dead server's mailbox.

        Clients' requests and oneways (puts, counter decrements) are
        re-dispatched here as the shard's new owner; peer steal
        responses are absorbed; everything else from the old topology
        is stale and dropped."""
        for payload, status in self.comm.drain_dead(dead):
            self.repl_stats.scavenged_msgs += 1
            if status.tag == C.TAG_SERVER:
                sop = payload.get("op")
                if sop == C.SOP_STEAL_RESP:
                    for task in payload["tasks"]:
                        self._accept_task(task)
                elif sop == C.SOP_RANK_DEAD:
                    self._dispatch(payload, status.source, status.tag)
                # REPLICATE / REPL_ACK / DRAIN_* / SHUTDOWN / CKPT_*:
                # addressed to the old topology; superseded.
            elif status.tag in (C.TAG_REQUEST, C.TAG_ONEWAY):
                self._dispatch(payload, status.source, status.tag)

    # ------------------------------------------------------------------ leases

    def _grant(self, task: Task, client: int) -> None:
        """Record a handed-out unit; completion is implied by the
        client's next GET (one outstanding task per client)."""
        self.lease_stats.granted += 1
        self._leases[client] = _Lease(
            task, client, time.monotonic() + self.lease_timeout
        )

    def _decr_work(self, amount: int = 1, poison: bool = False) -> None:
        """Repair the termination counter for a unit the client will
        never account for (failed permanently, or its rank died)."""
        master = (
            self.map.master if self.map is not None else self.layout.master_server
        )
        msg: dict = {"op": C.OP_DECR_WORK, "amount": amount}
        if poison:
            msg["poison"] = True
        if self.rank == master:
            self._client_op(C.OP_DECR_WORK, msg, self.rank)
        else:
            self.comm.send(msg, master, C.TAG_ONEWAY)

    def _requeue(self, task: Task, attempts: int) -> None:
        """Put a failed/orphaned unit back with exponential backoff."""
        nxt = dataclasses.replace(task, attempts=attempts)
        delay = self.retry_backoff * (2 ** max(0, attempts - 1))
        self.lease_stats.requeued += 1
        if self.flightrec is not None:
            self.flightrec.record(self.rank, "requeue", task.type, attempts)
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "lease_requeue",
                {"type": task.type, "attempts": attempts, "uid": task.uid},
            )
        if delay <= 0:
            self._accept_task(nxt)
        else:
            if nxt.uid < 0 and (self.replicate or self.tracer is not None):
                self._uid_counter += 1
                nxt = dataclasses.replace(
                    nxt, uid=(self.rank << 20) | self._uid_counter
                )
            self._repl(("task+", nxt))
            self._delay_seq += 1
            heapq.heappush(
                self._delayed, (time.monotonic() + delay, self._delay_seq, nxt)
            )

    def _task_fail(self, source: int, msg: dict) -> None:
        """OP_TASK_FAIL: the client hands its leased unit back as failed.

        Ownership of the unit (and its termination-counter increment)
        transfers to this server: either it is requeued for another
        attempt, or given up permanently.
        """
        lease = self._leases.pop(source, None) if self._leases is not None else None
        if lease is None:
            if source in self._dead_ranks:
                # The rank was already declared dead and its lease
                # swept (requeued or quarantined); a straggling
                # failure report — e.g. a watchdog TaskTimeout racing
                # the sweep — must not fail the unit a second time.
                return
            # Leases disabled or the unit was already swept by a
            # dead-rank notification: permanently failed.
            self._give_up(
                TaskFailure(
                    rank=source,
                    kind=msg.get("kind", "task"),
                    payload=msg.get("payload", ""),
                    attempts=msg.get("attempts", 1),
                    error=msg["error"],
                    traceback=msg.get("traceback", ""),
                )
            )
            return
        attempts = lease.task.attempts + 1
        if attempts <= self.max_retries:
            self._requeue(lease.task, attempts)
            return
        self._give_up(
            TaskFailure(
                rank=source,
                kind=msg.get("kind", "task"),
                payload=snippet(lease.task.payload),
                attempts=attempts,
                error=msg["error"],
                traceback=msg.get("traceback", ""),
            )
        )

    def _give_up(self, failure: TaskFailure) -> None:
        """Retries exhausted: in ``continue`` mode record the failure
        and repair the counter; otherwise surface a TaskError."""
        self.lease_stats.failed_permanent += 1
        self.failures.append(failure)
        if self.on_error == "continue":
            self._decr_work(poison=True)
            return
        raise TaskError(failure)

    def _mark_rank_dead(self, rank: int, reason: str = "rank died") -> None:
        """Sweep all state tied to a dead client rank.

        Called on a launcher-side SOP_RANK_DEAD notification or a lease
        expiry.  Safe if the rank is merely slow: its unit is re-run
        elsewhere (at-least-once semantics) and it can no longer be
        granted work or block shutdown.
        """
        if self.layout.is_server(rank):
            self._server_dead(rank, reason=reason)
            return
        if rank in self._dead_ranks:
            return
        self._dead_ranks.add(rank)
        self._repl(("deadrank", rank))
        self.lease_stats.dead_ranks += 1
        if self.flightrec is not None:
            self.flightrec.record(self.rank, "rank_dead", rank)
        if self.tracer is not None:
            self.tracer.instant(self.rank, "adlb", "rank_dead", {"rank": rank})
        # The dead rank can never request work or ack shutdown again.
        self.attached_clients.discard(rank)
        self._shutdown_acked.discard(rank)
        self.parked = [p for p in self.parked if p.rank != rank]
        # Close notifications must stop chasing the dead rank (the
        # adopter's re-subscription re-points them at itself).
        self.store.drop_subscriber(rank)
        if self._ckpt_phase is not None and rank in self._ckpt_waiting:
            # A checkpoint round must not stall 10s waiting on a corpse.
            self._ckpt_waiting.discard(rank)
            if not self._ckpt_waiting:
                if self._ckpt_phase == "engines":
                    self._ckpt_engines_done()
                else:
                    self._ckpt_write()
        ctask_done = False
        if self.layout.is_engine(rank):
            ctask_done = self._engine_dead(rank, reason)
        # Re-aim queued tasks that could only run on the dead rank.
        for task in self.queue.remove_targeted(rank):
            self._accept_task(dataclasses.replace(task, target=-1))
        if self._leases is None:
            return
        lease = self._leases.pop(rank, None)
        if lease is None:
            return
        self._repl(("done", rank))
        if ctask_done:
            # The journal shows the leased control task completed (its
            # rule creates are journaled and adopted, its counter unit
            # rides the adoption repair): requeueing would re-run it
            # and double every one of its effects.
            return
        task = lease.task
        if task.target == rank:
            task = dataclasses.replace(task, target=-1)
        attempts = task.attempts + 1
        # A unit lost to a rank death gets at least one more chance,
        # even when task retries are disabled.
        if attempts <= max(1, self.max_retries):
            self._requeue(
                dataclasses.replace(task, chain=tuple(task.chain) + ((rank, reason),)),
                attempts,
            )
        else:
            self._quarantine(task, rank, reason, attempts)

    def _quarantine(
        self, task: Task, rank: int, reason: str, attempts: int
    ) -> None:
        """Withdraw a unit whose attempts keep killing their host ranks.

        Unlike a task *error* (the unit raised and retries exhausted —
        a TaskError), every attempt here took its rank down via a
        ``RankKilled`` announcement or lease expiry; requeueing again
        would keep feeding ranks to it.  The unit is recorded with its
        retry chain and its counter unit poisoned ``continue``-style so
        the run drains cleanly instead of respawn-looping.
        """
        chain = tuple(task.chain) + ((rank, reason),)
        record = QuarantinedTask(
            uid=str(task.uid),
            kind="ctask" if task.type == C.CONTROL else "task",
            payload=snippet(task.payload),
            attempts=attempts,
            chain=chain,
        )
        self.quarantined.append(record)
        self.quarantine_stats.quarantined += 1
        self.quarantine_stats.rank_kills += len(chain)
        if self.flightrec is not None:
            self.flightrec.record(self.rank, "quarantine", task.type, attempts)
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "quarantine",
                {
                    "uid": task.uid,
                    "type": task.type,
                    "attempts": attempts,
                    "ranks": [r for r, _ in chain],
                },
            )
        self.lease_stats.failed_permanent += 1
        self._decr_work(poison=True)

    def _engine_dead(self, rank: int, reason: str) -> bool:
        """Engine-specific death handling; runs on every server.

        Returns True when the dead engine's journal shows its leased
        control task completed (so the caller must not requeue it).
        Only the engine's anchor server performs the adoption: it
        replays the journal into pending rules and ships them — plus
        the termination-counter repair — to the lowest surviving
        engine on the async channel.
        """
        if not self.journal:
            # No journal: the pending rules died with the rank.  Raise
            # the diagnostic instead of hanging (mirrors ServerLost).
            raise EngineLost(rank, reason)
        anchor = (
            self.map.my_server(rank)
            if self.map is not None
            else self.layout.my_server(rank)
        )
        if anchor != self.rank:
            return False
        jr = self._journals.pop(rank, None)
        if jr is None:
            # Never journaled: the fail-stop invariant says it held
            # nothing (first flush precedes the first kill-point).
            return False
        self._repl(("journal_clear", rank))
        rules = jr.pending()
        repair = len(rules) + jr.guard + (1 if jr.ctask_done else 0)
        adopter = next(
            (
                e
                for e in self.layout.engines
                if e != rank and e not in self._dead_ranks
            ),
            None,
        )
        if adopter is None:
            if rules or repair:
                raise EngineLost(
                    rank,
                    reason + "; no surviving engine to adopt",
                    rules_pending=len(rules),
                )
            return jr.ctask_done
        if self.flightrec is not None:
            self.flightrec.record(
                self.rank, "engine_adopt", rank, adopter, len(rules)
            )
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "engine_adopt",
                {
                    "dead": rank,
                    "adopter": adopter,
                    "rules": len(rules),
                    "repair": repair,
                },
            )
        self.comm.send(("adopt", rank, rules, repair), adopter, C.TAG_ASYNC)
        return jr.ctask_done

    def _lease_tick(self) -> None:
        """Release due backoff requeues; expire overdue leases."""
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, task = heapq.heappop(self._delayed)
            self._accept_task(task)
        if now < self._next_lease_check:
            return
        self._next_lease_check = now + 0.05
        expired = [l for l in self._leases.values() if l.deadline <= now]
        for lease in expired:
            self.lease_stats.expired += 1
            if self.flightrec is not None:
                self.flightrec.record(
                    self.rank, "lease_expired", lease.client, lease.task.type
                )
            if self.tracer is not None:
                self.tracer.instant(
                    self.rank,
                    "adlb",
                    "lease_expired",
                    {"client": lease.client, "type": lease.task.type},
                )
            self._mark_rank_dead(
                lease.client,
                reason="lease expired after %.1fs (rank presumed dead)"
                % self.lease_timeout,
            )

    # ---------------------------------------------------------------- stealing

    def _maybe_steal(self) -> None:
        if (
            not self.steal_enabled
            or self._steal_inflight
            or not self.parked
            or self.shutting_down
        ):
            return
        victim = self._other_servers[self._steal_ring % len(self._other_servers)]
        self._steal_ring += 1
        self._steal_inflight = True
        self.stats.steal_requests += 1
        if self.tracer is not None:
            self.tracer.instant(self.rank, "adlb", "steal_req", {"victim": victim})
        self.comm.send({"op": C.SOP_STEAL_REQ}, victim, C.TAG_SERVER)

    def _status_tick(self) -> None:
        """Push this server's status to the monitor (master: directly;
        others: an ``SOP_STATUS`` one-liner to the master)."""
        now = time.monotonic()
        if now < self._next_status:
            return
        self._next_status = now + (self._status_interval or 0.5)
        status = self._status()
        if self._monitor is not None:
            self._monitor.update(self.rank, status)
            return
        master = (
            self.map.master if self.map is not None else self.layout.master_server
        )
        if master != self.rank and master not in self._dead_servers:
            self.comm.send(
                {"op": C.SOP_STATUS, "rank": self.rank, "status": status},
                master,
                C.TAG_SERVER,
            )

    def _status(self) -> dict:
        status = {
            "matched": self.stats.tasks_matched,
            "queued": self.queue.size,
            "parked": len(self.parked),
            "clients": len(self.attached_clients),
        }
        if self._leases is not None:
            status["leases"] = len(self._leases)
        if self.replicate:
            status["repl_lag"] = self._repl_seq - self._repl_acked
        if self.is_master:
            status["outstanding"] = max(0, self.work_count)
        return status

    def _idle_tick(self) -> None:
        self._maybe_steal()
        if self.replicate:
            self._repl_tick()
        if self.journal and self.faults is not None and self._leases is not None:
            self._journal_tick()
        if self.ckpt_path is not None:
            self._ckpt_tick()
        if self._poisoned and not self.shutting_down:
            self._drain_tick()

    def _journal_tick(self) -> None:
        """Detect a silently-dead engine via journal-heartbeat loss.

        A kill-notified engine death arrives as SOP_RANK_DEAD; a
        *silent* kill models an abrupt crash, so the only signal is
        that the engine's journal flushes/heartbeats stop.  Uses the
        lease timeout as the staleness threshold — same budget a slow
        worker gets.
        """
        now = time.monotonic()
        for rank, jr in list(self._journals.items()):
            if rank in self._dead_ranks:
                continue
            if now - jr.last_heard > self.lease_timeout:
                reason = "journal heartbeat lost for %.1fs" % (
                    now - jr.last_heard
                )
                for s in self._other_servers:
                    self.comm.send(
                        {"op": C.SOP_RANK_DEAD, "rank": rank, "reason": reason},
                        s,
                        C.TAG_SERVER,
                    )
                self._mark_rank_dead(rank, reason)

    def _repl_tick(self) -> None:
        """Heartbeat the buddy; detect a silently-dead ward."""
        now = time.monotonic()
        if now - self._last_flush >= self._hb_interval:
            self._repl_flush(heartbeat=True)
        # Wards: live servers whose buddy is this server.  A ward that
        # stops flushing (silent kill — no launcher notification) is
        # declared dead and its replica promoted.
        for ward in list(self.map.alive):
            if ward == self.rank or self.map.buddy(ward) != self.rank:
                continue
            rep = self._replicas.setdefault(ward, Replica())
            if now - rep.last_heard > self._ward_timeout:
                self._server_dead(
                    ward,
                    reason="replication heartbeat lost for %.1fs"
                    % (now - rep.last_heard),
                    broadcast=True,
                )
        # Messages sent to a dead server after its mailbox was first
        # scavenged (in-flight racers) are re-drained by the current
        # owner of its shards.
        for dead in list(self._dead_servers):
            if self.map.resolve(dead) == self.rank:
                self._scavenge(dead)

    # ------------------------------------------------------- poisoned drain

    def _quiescent(self) -> bool:
        """Nothing on this server can make progress: every attached
        client is parked waiting for work, no work is queued, delayed,
        or leased out."""
        return (
            len(self.parked) >= len(self.attached_clients)
            and self.queue.size == 0
            and not self._delayed
            and not self._leases
        )

    def _drain_tick(self) -> None:
        """Master-side shutdown of a poisoned run.

        A permanently failed unit (on_error="continue") poisons the
        run: dataflow blocked on its outputs can never resolve, so the
        termination counter will never reach zero.  Once the system is
        quiescent — every client parked, nothing queued/delayed/leased
        anywhere, counter stable — the remaining units are unreachable
        and the master shuts the run down so `continue` terminates.
        """
        if not (self.is_master and self.work_started and self.work_count > 0):
            return
        now = time.monotonic()
        if not self._quiescent():
            self._drain_since = None
            self._drain_probing = False
            return
        if self._drain_since is None or self._drain_count != self.work_count:
            self._drain_since = now
            self._drain_count = self.work_count
            self._drain_probing = False
            return
        # Require the quiescent state to hold briefly so in-flight
        # oneway messages (puts, decrements) get a chance to land.
        if now - self._drain_since < 0.1 or self._drain_probing:
            return
        if not self._other_servers:
            self._drain_shutdown()
            return
        self._drain_probing = True
        self._drain_probes_ok = set()
        for s in self._other_servers:
            self.comm.send({"op": C.SOP_DRAIN_PROBE}, s, C.TAG_SERVER)

    def _drain_shutdown(self) -> None:
        if self.shutting_down:
            return
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "drain_shutdown",
                {"abandoned_units": self.work_count},
            )
        self._initiate_shutdown()

    # ---------------------------------------------------------------- shutdown

    def _initiate_shutdown(self) -> None:
        servers = self.map.alive if self.map is not None else self.layout.servers
        for s in servers:
            if s != self.rank:
                self.comm.send({"op": C.SOP_SHUTDOWN}, s, C.TAG_SERVER)
        self._enter_shutdown()

    def _enter_shutdown(self) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        if self.flightrec is not None:
            self.flightrec.record(self.rank, "shutdown")
        for parked in self.parked:
            tag = C.TAG_ASYNC if parked.is_async else C.TAG_RESPONSE
            payload: tuple = ("shutdown",)
            if parked.seq >= 0 and not parked.is_async:
                payload = payload + (parked.seq,)
            self.comm.send(payload, parked.rank, tag)
            self._shutdown_acked.add(parked.rank)
        self.parked = []

    # ------------------------------------------------------------- checkpoint

    def _ckpt_tick(self) -> None:
        """Master-driven periodic consistent snapshot.

        Two phases: engines first snapshot their rule tables (counting
        any put they already issued), then every server drains its
        mailbox — capturing those in-flight puts — and snapshots its
        shard.  The ordering closes the consistency window: a put an
        engine counted is in some server's mailbox before that server
        drains."""
        if (
            not self.is_master
            or self.shutting_down
            or not self.work_started
            or self.work_count <= 0
        ):
            return
        now = time.monotonic()
        if self._ckpt_phase is not None:
            if now - self._ckpt_started > 10.0:
                self.ckpt_stats.abandoned += 1
                self._ckpt_phase = None
            return
        if now - self._last_ckpt < self.ckpt_interval:
            return
        self._ckpt_gen += 1
        self._ckpt_phase = "engines"
        self._ckpt_started = now
        self._ckpt_parts = {}
        self._ckpt_waiting = {
            r for r in self.layout.engines if r not in self._dead_ranks
        }
        if not self._ckpt_waiting:
            self._ckpt_engines_done()
            return
        for r in self._ckpt_waiting:
            self.comm.send(("ckpt", self._ckpt_gen), r, C.TAG_ASYNC)

    def _ckpt_part(self, msg: dict, source: int) -> None:
        if msg.get("gen") != self._ckpt_gen or self._ckpt_phase is None:
            return  # straggler from an abandoned generation
        self._ckpt_parts[(msg["kind"], source)] = msg
        self._ckpt_waiting.discard(source)
        if self._ckpt_waiting:
            return
        if self._ckpt_phase == "engines":
            self._ckpt_engines_done()
        else:
            self._ckpt_write()

    def _ckpt_engines_done(self) -> None:
        self._ckpt_phase = "servers"
        self._drain_mailbox()
        part = self._server_ckpt_part()
        self._ckpt_parts[("server", self.rank)] = part
        others = [
            s
            for s in (self.map.alive if self.map else self.layout.servers)
            if s != self.rank
        ]
        self._ckpt_waiting = set(others)
        if not others:
            self._ckpt_write()
            return
        for s in others:
            self.comm.send(
                {"op": C.SOP_CKPT_REQ, "gen": self._ckpt_gen}, s, C.TAG_SERVER
            )

    def _drain_mailbox(self) -> None:
        """Process every message already deposited for this rank."""
        while True:
            got = self.comm.recv_poll(timeout=0)
            if got is None:
                return
            msg, status = got
            self._dispatch(msg, status.source, status.tag)

    def _server_ckpt_part(self) -> dict:
        tasks = [dataclasses.asdict(t) for t in self.queue.all_tasks()]
        tasks += [dataclasses.asdict(t) for _, _, t in self._delayed]
        if self._leases:
            # In-flight units are re-run on restore (at-least-once).
            tasks += [dataclasses.asdict(l.task) for l in self._leases.values()]
        return {
            "kind": "server",
            "rank": self.rank,
            "store": self.store.snapshot(),
            "tasks": tasks,
            "next_id": self._next_id,
        }

    def _ckpt_write(self) -> None:
        from .checkpoint import write_checkpoint

        servers = {}
        units = 0
        for (kind, rank), part in self._ckpt_parts.items():
            if kind == "server":
                servers[rank] = {
                    "store": part["store"],
                    "tasks": part["tasks"],
                    "next_id": part["next_id"],
                }
                units += len(part["tasks"])
        engines = {
            rank: part["rules"]
            for (kind, rank), part in self._ckpt_parts.items()
            if kind == "engine"
        }
        image = {
            "version": 1,
            "gen": self._ckpt_gen,
            "size": self.layout.size,
            "n_servers": self.layout.n_servers,
            "n_engines": len(self.layout.engines),
            "work_count": self.work_count,
            "servers": servers,
            "engines": engines,
        }
        write_checkpoint(self.ckpt_path, image)
        self.ckpt_stats.written += 1
        self.ckpt_stats.units_captured = units
        self._last_ckpt = time.monotonic()
        self._ckpt_phase = None
        if self.tracer is not None:
            self.tracer.instant(
                self.rank,
                "adlb",
                "checkpoint",
                {"gen": self._ckpt_gen, "units": units},
            )

    # ------------------------------------------------------------ diagnostics

    def _diagnostic(self) -> str:
        """One-line state summary for recv-timeout hang reports."""
        parts = [
            "server q=%d parked=%d delayed=%d"
            % (self.queue.size, len(self.parked), len(self._delayed))
        ]
        if self._leases:
            now = time.monotonic()
            parts.append(
                "leases={%s}"
                % ", ".join(
                    "%d: %s (%.1fs left)"
                    % (c, snippet(l.task.payload, 40), l.deadline - now)
                    for c, l in sorted(self._leases.items())
                )
            )
        else:
            parts.append("leases=none")
        if self.replicate:
            parts.append(
                "repl lag=%d (sent=%d acked=%d) buddy=%s dead_servers=%s"
                % (
                    self._repl_seq - self._repl_acked,
                    self._repl_seq,
                    self._repl_acked,
                    self._buddy,
                    sorted(self._dead_servers) or "{}",
                )
            )
        if self._journals:
            parts.append(
                "journals={%s}"
                % ", ".join(
                    "%d: %d rule(s)%s%s"
                    % (
                        r,
                        len(j.rules),
                        " +guard" if j.guard else "",
                        " +ctask_done" if j.ctask_done else "",
                    )
                    for r, j in sorted(self._journals.items())
                )
            )
        if self.quarantined:
            parts.append(
                "quarantined=%d" % len(self.quarantined)
            )
        if self.is_master:
            parts.append(
                "work_count=%d%s"
                % (self.work_count, " poisoned" if self._poisoned else "")
            )
        return "; ".join(parts)


_NO_REPLY = object()
