"""Rank layout: which ranks are servers, engines, and workers.

Following the paper's Fig. 2, the MPI job is split into engines (Swift
logic), ADLB servers, and workers.  As in real ADLB, servers occupy the
highest ranks.  Engines come first, workers in between.

:class:`Layout` is immutable — it names the *shards*: rank ``s`` of the
initial server set anchors the data-store slice ``id % n_servers == s -
first`` and the work attachments ``client % n_servers``.  When servers
can die (``replicate=True``), routing goes through a shared, mutable
:class:`ServerMap` layered on top: an epoch-stamped table mapping each
shard anchor to the rank currently serving it.  Server death promotes
the shard to the dead rank's buddy and bumps the epoch; clients resolve
through the map at send time and re-send in-flight requests when the
epoch moves under them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class Layout:
    size: int
    n_servers: int
    n_engines: int

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one ADLB server")
        if self.n_engines < 1:
            raise ValueError("need at least one engine")
        if self.n_workers < 1:
            raise ValueError(
                "layout (size=%d, servers=%d, engines=%d) leaves no workers"
                % (self.size, self.n_servers, self.n_engines)
            )

    # -- role partitions -----------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self.size - self.n_servers - self.n_engines

    @property
    def servers(self) -> list[int]:
        return list(range(self.size - self.n_servers, self.size))

    @property
    def engines(self) -> list[int]:
        return list(range(self.n_engines))

    @property
    def workers(self) -> list[int]:
        return list(range(self.n_engines, self.size - self.n_servers))

    @property
    def master_server(self) -> int:
        return self.size - self.n_servers

    def is_server(self, rank: int) -> bool:
        return rank >= self.size - self.n_servers

    def is_engine(self, rank: int) -> bool:
        return rank < self.n_engines

    def is_worker(self, rank: int) -> bool:
        return not self.is_server(rank) and not self.is_engine(rank)

    def role(self, rank: int) -> str:
        if self.is_server(rank):
            return "server"
        if self.is_engine(rank):
            return "engine"
        return "worker"

    # -- attachments -----------------------------------------------------------

    def my_server(self, rank: int) -> int:
        """The server a client rank sends work requests to."""
        first = self.size - self.n_servers
        return first + rank % self.n_servers

    def home_server(self, td_id: int) -> int:
        """The server that owns a TD."""
        first = self.size - self.n_servers
        return first + td_id % self.n_servers


class ServerMap:
    """Epoch-stamped, mutable shard-routing table over a static Layout.

    One instance is shared by every rank of a world (the simulated
    ranks share an address space, so a mutation by the promoting server
    is immediately visible to clients — the in-process stand-in for
    ADLB's routing-update broadcast).  All reads are optimistic: a
    client snapshots ``epoch`` before sending and re-resolves when the
    epoch has moved, and servers reject requests for shards they do not
    own with a redirect reply, so a racy read is never worse than one
    extra round trip.
    """

    def __init__(self, layout: Layout):
        self.layout = layout
        self._lock = threading.Lock()
        #: bumped on every promotion; requests are stamped with it
        self.epoch = 0
        # shard anchor (initial server rank) -> rank currently serving it
        self._owner = {s: s for s in layout.servers}
        self._dead: set[int] = set()

    # -- resolution (hot path: one dict lookup over the static layout) -----

    def resolve(self, anchor: int) -> int:
        """The rank currently serving the shard anchored at ``anchor``."""
        return self._owner[anchor]

    def my_server(self, rank: int) -> int:
        return self._owner[self.layout.my_server(rank)]

    def home_server(self, td_id: int) -> int:
        return self._owner[self.layout.home_server(td_id)]

    @property
    def master(self) -> int:
        """The rank currently running the termination counter."""
        return self._owner[self.layout.master_server]

    @property
    def alive(self) -> list[int]:
        return [s for s in self.layout.servers if s not in self._dead]

    def is_dead(self, rank: int) -> bool:
        return rank in self._dead

    def owned_by(self, rank: int) -> list[int]:
        """Shard anchors currently served by ``rank``."""
        return [a for a, o in self._owner.items() if o == rank]

    # -- failover ----------------------------------------------------------

    def buddy(self, rank: int) -> int | None:
        """The replication partner of ``rank``: the next live server in
        ring order.  ``None`` when no other server is alive."""
        ring = self.layout.servers
        i = ring.index(rank)
        for step in range(1, len(ring)):
            cand = ring[(i + step) % len(ring)]
            if cand not in self._dead and cand != rank:
                return cand
        return None

    def successor(self, dead: int) -> int | None:
        """The rank that inherits a dead server's shards.

        Deterministic and computable by every survivor independently:
        the next live server after ``dead`` in ring order — which is
        exactly the buddy ``dead`` was replicating to when it died."""
        ring = self.layout.servers
        i = ring.index(dead)
        for step in range(1, len(ring)):
            cand = ring[(i + step) % len(ring)]
            if cand not in self._dead and cand != dead:
                return cand
        return None

    def mark_dead(self, rank: int) -> int | None:
        """Record a server death and re-home its shards to the successor.

        Idempotent; returns the successor rank (or ``None`` if this was
        the last live server).  The epoch bump is what in-flight
        clients observe."""
        with self._lock:
            if rank in self._dead:
                return None
            self._dead.add(rank)
            heir = self.successor(rank)
            if heir is None:
                self.epoch += 1
                return None
            for anchor, owner in self._owner.items():
                if owner == rank:
                    self._owner[anchor] = heir
            self.epoch += 1
            return heir
