"""Rank layout: which ranks are servers, engines, and workers.

Following the paper's Fig. 2, the MPI job is split into engines (Swift
logic), ADLB servers, and workers.  As in real ADLB, servers occupy the
highest ranks.  Engines come first, workers in between.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Layout:
    size: int
    n_servers: int
    n_engines: int

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one ADLB server")
        if self.n_engines < 1:
            raise ValueError("need at least one engine")
        if self.n_workers < 1:
            raise ValueError(
                "layout (size=%d, servers=%d, engines=%d) leaves no workers"
                % (self.size, self.n_servers, self.n_engines)
            )

    # -- role partitions -----------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self.size - self.n_servers - self.n_engines

    @property
    def servers(self) -> list[int]:
        return list(range(self.size - self.n_servers, self.size))

    @property
    def engines(self) -> list[int]:
        return list(range(self.n_engines))

    @property
    def workers(self) -> list[int]:
        return list(range(self.n_engines, self.size - self.n_servers))

    @property
    def master_server(self) -> int:
        return self.size - self.n_servers

    def is_server(self, rank: int) -> bool:
        return rank >= self.size - self.n_servers

    def is_engine(self, rank: int) -> bool:
        return rank < self.n_engines

    def is_worker(self, rank: int) -> bool:
        return not self.is_server(rank) and not self.is_engine(rank)

    def role(self, rank: int) -> str:
        if self.is_server(rank):
            return "server"
        if self.is_engine(rank):
            return "engine"
        return "worker"

    # -- attachments -----------------------------------------------------------

    def my_server(self, rank: int) -> int:
        """The server a client rank sends work requests to."""
        first = self.size - self.n_servers
        return first + rank % self.n_servers

    def home_server(self, td_id: int) -> int:
        """The server that owns a TD."""
        first = self.size - self.n_servers
        return first + td_id % self.n_servers
