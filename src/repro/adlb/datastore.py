"""The ADLB typed data store.

Turbine data (TDs) live on servers.  A TD has a type, a value (or, for
containers, a subscript -> value mapping), a *write refcount* (the
number of outstanding writers/"slots"; the TD closes when it reaches
zero) and a *read refcount* (garbage collection).  Subscribers are
notified when the TD — or a particular container subscript — closes.

This module is deliberately communication-free so its invariants can be
unit- and property-tested directly; :mod:`repro.adlb.server` drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .constants import SCALAR_TYPES, T_CONTAINER


class DataStoreError(RuntimeError):
    pass


class DoubleWriteError(DataStoreError):
    """A closed scalar TD was stored again (single-assignment violated)."""


class NotFoundError(DataStoreError):
    pass


class UnsetError(DataStoreError):
    """Retrieve of a TD (or subscript) that has no value yet."""


@dataclass
class TD:
    """One Turbine datum."""

    id: int
    type: str
    value: Any = None
    members: dict[str, Any] = field(default_factory=dict)
    is_set: bool = False
    write_refcount: int = 1
    read_refcount: int = 1
    # rank -> opaque info returned with the notification
    subscribers: list[int] = field(default_factory=list)
    # container subscript subscriptions: subscript -> list of ref TD ids
    member_refs: dict[str, list[int]] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.write_refcount <= 0


@dataclass
class Notification:
    """A pending close notification produced by a store/refcount op."""

    rank: int
    id: int


@dataclass
class RefStore:
    """A store-through: write ``value`` to TD ``ref_id`` (possibly remote)."""

    ref_id: int
    value: Any


class DataStore:
    """Data store for one server; ids are owned by exactly one server.

    With ``replay_ok=True`` exact duplicates of already-applied
    mutations (same id/subscript *and* equal value, or a re-create with
    the same type) become no-ops instead of :class:`DoubleWriteError`.
    Servers enable this when fault tolerance is armed, because RPC
    re-sends after a failover and checkpoint-restore races can replay a
    mutation that already landed; genuinely conflicting writes still
    raise.  Default off — single-assignment stays strict.
    """

    def __init__(self, replay_ok: bool = False) -> None:
        self.tds: dict[int, TD] = {}
        self.replay_ok = replay_ok
        self.n_created = 0
        self.n_stores = 0
        self.n_retrieves = 0

    # -- lifecycle -----------------------------------------------------------

    def create(
        self,
        id: int,
        type: str,
        write_refcount: int = 1,
        read_refcount: int = 1,
    ) -> TD:
        if id in self.tds:
            if self.replay_ok and self.tds[id].type == type:
                return self.tds[id]
            raise DataStoreError("TD <%d> already exists" % id)
        if type != T_CONTAINER and type not in SCALAR_TYPES:
            raise DataStoreError("unknown data type %r" % type)
        if write_refcount < 1:
            raise DataStoreError("write refcount must be >= 1 at create")
        td = TD(
            id=id,
            type=type,
            write_refcount=write_refcount,
            read_refcount=read_refcount,
        )
        self.tds[id] = td
        self.n_created += 1
        return td

    def lookup(self, id: int) -> TD:
        td = self.tds.get(id)
        if td is None:
            raise NotFoundError("TD <%d> not found" % id)
        return td

    # -- store / retrieve -------------------------------------------------------

    def store(
        self,
        id: int,
        value: Any,
        subscript: str | None = None,
        decr_write: int = 1,
    ) -> tuple[list[Notification], list[RefStore]]:
        """Store a value; returns (close notifications, ref store-throughs)."""
        td = self.lookup(id)
        self.n_stores += 1
        refs: list[RefStore] = []
        if subscript is None:
            if td.type == T_CONTAINER:
                raise DataStoreError(
                    "TD <%d> is a container; store needs a subscript" % id
                )
            if td.is_set:
                if self.replay_ok and td.value == value:
                    return [], []  # replayed duplicate: already applied
                raise DoubleWriteError(
                    "TD <%d> stored twice (single-assignment)" % id
                )
            td.value = value
            td.is_set = True
        else:
            if td.type != T_CONTAINER:
                raise DataStoreError("TD <%d> is not a container" % id)
            if subscript in td.members:
                if self.replay_ok and td.members[subscript] == value:
                    return [], []  # replayed duplicate: already applied
                raise DoubleWriteError(
                    "TD <%d>[%s] inserted twice" % (id, subscript)
                )
            td.members[subscript] = value
            for ref_id in td.member_refs.pop(subscript, []):
                refs.append(RefStore(ref_id=ref_id, value=value))
        notes = self._decr_write(td, decr_write)
        return notes, refs

    def _decr_write(self, td: TD, amount: int) -> list[Notification]:
        if amount == 0:
            return []
        already_closed = td.closed
        td.write_refcount -= amount
        if td.write_refcount < 0:
            raise DataStoreError(
                "TD <%d> write refcount went negative" % td.id
            )
        if td.closed and not already_closed:
            notes = [Notification(rank=r, id=td.id) for r in td.subscribers]
            td.subscribers = []
            return notes
        return []

    def retrieve(self, id: int, subscript: str | None = None) -> Any:
        return self.retrieve_tagged(id, subscript)[0]

    def retrieve_tagged(
        self, id: int, subscript: str | None = None
    ) -> tuple[Any, bool]:
        """Retrieve a value together with its immutability bit.

        The second element is True when the value can never change
        again: a closed scalar, a closed whole-container snapshot, or a
        container member (single-assignment per subscript, so immutable
        from the moment it exists).  Clients use the bit to decide
        whether the reply may be cached.
        """
        td = self.lookup(id)
        self.n_retrieves += 1
        if subscript is None:
            if td.type == T_CONTAINER:
                # whole-container retrieve: subscript -> value mapping
                return dict(td.members), td.closed
            if not td.is_set:
                raise UnsetError("TD <%d> retrieved before set" % id)
            return td.value, td.closed
        if td.type != T_CONTAINER:
            raise DataStoreError("TD <%d> is not a container" % id)
        if subscript not in td.members:
            raise UnsetError("TD <%d>[%s] retrieved before insert" % (id, subscript))
        return td.members[subscript], True

    def exists(self, id: int, subscript: str | None = None) -> bool:
        td = self.tds.get(id)
        if td is None:
            return False
        if subscript is None:
            return td.is_set if td.type != T_CONTAINER else True
        return subscript in td.members

    def enumerate(self, id: int) -> list[str]:
        td = self.lookup(id)
        if td.type != T_CONTAINER:
            raise DataStoreError("TD <%d> is not a container" % id)
        return list(td.members.keys())

    # -- dataflow ----------------------------------------------------------------

    def subscribe(self, id: int, rank: int) -> bool:
        """Register interest in a TD's close.

        Returns True if the TD is already closed (caller should treat
        the dependency as satisfied immediately — no notification will
        be sent).
        """
        td = self.lookup(id)
        if td.closed:
            return True
        td.subscribers.append(rank)
        return False

    def drop_subscriber(self, rank: int) -> None:
        """Forget a dead rank's close-subscriptions on every open TD.

        Its adopter re-subscribes for itself when it replays the
        journaled rules; notifications must not chase the corpse.
        """
        for td in self.tds.values():
            if not td.closed and rank in td.subscribers:
                td.subscribers = [r for r in td.subscribers if r != rank]

    def container_reference(
        self, id: int, subscript: str, ref_id: int
    ) -> RefStore | None:
        """Arrange for members[subscript] to be copied into TD ref_id.

        If the member is already present, return the store-through now;
        otherwise it is emitted by the eventual insert.
        """
        td = self.lookup(id)
        if td.type != T_CONTAINER:
            raise DataStoreError("TD <%d> is not a container" % id)
        if subscript in td.members:
            return RefStore(ref_id=ref_id, value=td.members[subscript])
        td.member_refs.setdefault(subscript, []).append(ref_id)
        return None

    def refcount(
        self, id: int, read_delta: int = 0, write_delta: int = 0
    ) -> list[Notification]:
        """Adjust refcounts; may close (write) or free (read) the TD."""
        td = self.lookup(id)
        notes: list[Notification] = []
        if write_delta > 0:
            if td.closed:
                raise DataStoreError(
                    "TD <%d>: cannot add writers after close" % id
                )
            td.write_refcount += write_delta
        elif write_delta < 0:
            notes = self._decr_write(td, -write_delta)
        td.read_refcount += read_delta
        if td.read_refcount <= 0:
            del self.tds[id]
        return notes

    # -- replication / checkpoint --------------------------------------------

    def snapshot(self) -> dict[int, dict[str, Any]]:
        """A plain-data image of every TD, for checkpointing or
        resilvering a replica.  Subscribers/member-refs travel too so a
        promoted replica keeps pending notifications alive."""
        out: dict[int, dict[str, Any]] = {}
        for id, td in self.tds.items():
            out[id] = {
                "type": td.type,
                "value": td.value,
                "members": dict(td.members),
                "is_set": td.is_set,
                "write_refcount": td.write_refcount,
                "read_refcount": td.read_refcount,
                "subscribers": list(td.subscribers),
                "member_refs": {k: list(v) for k, v in td.member_refs.items()},
            }
        return out

    def load_snapshot(self, image: dict[int, dict[str, Any]]) -> None:
        """Replace contents with a :meth:`snapshot` image."""
        self.tds = {}
        for id, d in image.items():
            td = TD(
                id=id,
                type=d["type"],
                value=d["value"],
                members=dict(d["members"]),
                is_set=d["is_set"],
                write_refcount=d["write_refcount"],
                read_refcount=d["read_refcount"],
                subscribers=list(d["subscribers"]),
                member_refs={k: list(v) for k, v in d["member_refs"].items()},
            )
            self.tds[id] = td

    def absorb(self, other: "DataStore") -> None:
        """Merge another store's TDs into this one (promotion: the ids
        of distinct shards are disjoint by construction)."""
        for id, td in other.tds.items():
            self.tds.setdefault(id, td)
