"""Client-side ADLB API used by engines and workers.

Wraps the RPC protocol: work ops go to the rank's attached server, data
ops are routed to each TD's home server, and termination-counter ops go
to the master server.

Two hot-path optimizations (both off by default; the runtime enables
them via :class:`repro.turbine.runtime.RuntimeConfig`):

* **Immutable-read cache** — servers tag every retrieve reply with a
  ``closed`` bit; closed values are single-assignment and can never
  change, so the client memoizes them in a bounded LRU and answers
  repeat retrieves without a round trip.  Entries are evicted when the
  client itself drops a read reference and when a (batched) refcount
  reply reports the TD freed.  Safe because TD ids are allocated
  monotonically and never reused.
* **Batched refcounts** — read-refcount decrements and write-refcount
  decrements are coalesced per TD id and flushed as one RPC per home
  server at task boundaries (:meth:`flush_refcounts`), instead of one
  blocking round trip per ``read_refcount_decr``.  Write-refcount
  *increments* always apply immediately: generated code increments a
  container's write count before handing out slots, and deferring that
  would let the container close early.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..lru import LRUCache
from ..mpi import Comm
from . import constants as C
from .layout import Layout, ServerMap


class AdlbError(RuntimeError):
    pass


_MISSING = object()


@dataclass
class ClientDataStats:
    """Counters folded into metrics as ``adlb.retrieve_cache.*``."""

    hits: int = 0  # retrieves answered from the local immutable cache
    misses: int = 0  # retrieves that went to the server
    evictions: int = 0  # entries dropped by refcount GC (not LRU pressure)
    refcount_batches: int = 0  # flush RPCs sent
    refcount_batched_ops: int = 0  # deltas coalesced into those batches


@dataclass
class ClientRpcStats:
    """Reliable-RPC counters, folded into metrics as ``adlb.rpc.*``."""

    sent: int = 0  # seq-stamped requests issued
    resends: int = 0  # re-sends after the resend-interval expired
    failovers: int = 0  # re-sends triggered by a ServerMap epoch bump
    stale_replies: int = 0  # replies dropped by sequence mismatch


class AdlbClient:
    def __init__(
        self,
        comm: Comm,
        layout: Layout,
        read_cache: bool = False,
        batch_refcounts: bool = False,
        cache_capacity: int = 4096,
        server_map: ServerMap | None = None,
        reliable: bool = False,
        resend_interval: float = 0.25,
        tracer: Any | None = None,
    ):
        self.comm = comm
        self.layout = layout
        self.rank = comm.rank
        # Provenance context: the id of the unit of work (task / fired
        # rule / control task / program) currently executing on this
        # rank.  Set by the engine/worker loops when tracing; every
        # store issued while it is set emits a ``prov.write`` lineage
        # edge (unit -> td) into the trace.
        self.tracer = tracer
        # Always-on flight recorder (may be None), shared via the world.
        self.flightrec = comm.world.flightrec
        self.prov_unit: str | None = None
        # Optional poll hook invoked while blocked in recv_async; the
        # engine installs its journal heartbeat here so the anchor can
        # tell a quiet engine from a silently-dead one.
        self.tick: Any | None = None
        # Static layout anchor; reliable mode re-resolves it through the
        # shared ServerMap at every send, so a failover re-routes every
        # later request to the shard's heir transparently.
        self.my_server = layout.my_server(self.rank)
        self._id_next = 0
        self._id_limit = 0
        self.read_cache_enabled = read_cache
        self.batch_refcounts = batch_refcounts
        # (id, subscript) -> immutable value
        self._read_cache: LRUCache[tuple[int, str | None], Any] = LRUCache(
            cache_capacity
        )
        # id -> [read_delta, write_delta] pending flush
        self._pending_refcounts: dict[int, list[int]] = {}
        # ids with cached container-member entries (eviction index)
        self._sub_ids: set[int] = set()
        self.data_stats = ClientDataStats()
        # ---- reliable RPC state ---------------------------------------
        self.map = server_map
        self.reliable = reliable
        self.resend_interval = resend_interval
        self.rpc_stats = ClientRpcStats()
        self._seq = 0
        # outstanding split GET (get_send .. get_wait)
        self._get_msg: dict | None = None
        self._get_seq = -1
        self._get_epoch = 0
        self._get_last_send = 0.0
        self._get_reply: tuple | None = None
        # outstanding async park (park_async .. recv_async)
        self._park_msg: dict | None = None
        self._park_seq = -1
        self._park_epoch = 0

    # ------------------------------------------------------------------- RPC

    def _resolve(self, anchor: int) -> int:
        return self.map.resolve(anchor) if self.map is not None else anchor

    def _epoch(self) -> int:
        return self.map.epoch if self.map is not None else 0

    def _rpc(self, server: int, msg: dict) -> Any:
        if self.reliable:
            reply = self._reliable_call(server, msg)
        else:
            self.comm.send(msg, server, C.TAG_REQUEST)
            reply, _ = self.comm.recv(source=server, tag=C.TAG_RESPONSE)
        if reply[0] == "error":
            raise AdlbError(reply[1])
        return reply[1]

    def _oneway(self, server: int, msg: dict) -> None:
        if self.reliable:
            # Fire-and-forget is unrecoverable after a failover or a
            # dropped message; reliable mode upgrades every oneway to an
            # acknowledged, idempotently re-sendable RPC.
            self._reliable_call(server, msg)
            return
        self.comm.send(msg, server, C.TAG_ONEWAY)

    def _reliable_call(self, anchor: int, msg: dict) -> tuple:
        """At-least-once RPC with at-most-once server-side effects.

        The request carries a per-client sequence number; servers dedup
        on it and cache the reply, so re-sends (resend-interval expiry,
        or a ServerMap epoch bump after a failover) are safe even for
        mutating ops.  Replies echo the sequence; anything else in the
        response stream is a stale duplicate and is dropped."""
        self._seq += 1
        seq = self._seq
        msg = dict(msg, seq=seq)
        self.rpc_stats.sent += 1
        epoch = self._epoch()
        self.comm.send(msg, self._resolve(anchor), C.TAG_REQUEST)
        last_send = time.monotonic()
        while True:
            got = self.comm.recv_poll(tag=C.TAG_RESPONSE, timeout=0.02)
            if got is not None:
                reply, _ = got
                if reply and reply[-1] == seq:
                    return reply[:-1]
                if (
                    self._get_seq >= 0
                    and reply
                    and reply[-1] == self._get_seq
                ):
                    # The reply to an outstanding split GET landed while
                    # another RPC was in flight (the worker protocol
                    # sends its counter decrement after get_send): hold
                    # it for get_wait instead of dropping it.
                    self._get_reply = reply[:-1]
                else:
                    self.rpc_stats.stale_replies += 1
                continue
            now = time.monotonic()
            cur = self._epoch()
            if cur != epoch:
                epoch = cur
                self.rpc_stats.failovers += 1
                self.comm.send(msg, self._resolve(anchor), C.TAG_REQUEST)
                last_send = now
            elif now - last_send >= self.resend_interval:
                self.rpc_stats.resends += 1
                self.comm.send(msg, self._resolve(anchor), C.TAG_REQUEST)
                last_send = now

    # ------------------------------------------------------------------ work

    def put(
        self,
        payload: Any,
        type: str = C.WORK,
        priority: int = 0,
        target: int = -1,
        prov: str | None = None,
    ) -> None:
        """Submit a task.  Targeted tasks are routed to the target's server.

        ``prov`` names the rule or unit that spawned the task (lineage
        edge source); it rides along only on traced runs."""
        server = (
            self.layout.my_server(target) if target >= 0 else self.my_server
        )
        msg = {
            "op": C.OP_PUT,
            "type": type,
            "payload": payload,
            "priority": priority,
            "target": target,
        }
        if prov is None and self.tracer is not None:
            prov = self.prov_unit
        if prov is not None:
            msg["prov"] = prov
        self._oneway(server, msg)

    def get(self, types: tuple[str, ...] = (C.WORK,)) -> tuple[str, Any] | None:
        """Blocking get; returns (type, payload) or None on shutdown."""
        self.get_send(types)
        return self.get_wait()

    def get_send(self, types: tuple[str, ...] = (C.WORK,)) -> None:
        """First half of get(): issue the request without waiting.

        Splitting get lets a worker send its termination-counter
        decrement *after* it is parked, which the shutdown protocol
        requires (a server only exits once every attached client is
        parked or has been told to shut down).
        """
        self.flush_refcounts()  # task boundary: land deferred decrements
        msg: dict = {"op": C.OP_GET, "types": list(types)}
        if self.reliable:
            self._seq += 1
            msg["seq"] = self._seq
            self._get_msg = msg
            self._get_seq = self._seq
            self._get_epoch = self._epoch()
            self._get_last_send = time.monotonic()
            self._get_reply = None
            self.rpc_stats.sent += 1
        self.comm.send(msg, self._resolve(self.my_server), C.TAG_REQUEST)

    def get_wait(self) -> tuple[str, Any] | None:
        if self.reliable:
            reply = self._get_wait_reliable()
        else:
            reply, _ = self.comm.recv(source=self.my_server, tag=C.TAG_RESPONSE)
        if reply[0] == "shutdown":
            return None
        if reply[0] == "task":
            return reply[1], reply[2]
        raise AdlbError("unexpected get reply %r" % (reply,))

    def _get_wait_reliable(self) -> tuple:
        reply = self._get_reply
        self._get_reply = None
        while reply is None:
            got = self.comm.recv_poll(tag=C.TAG_RESPONSE, timeout=0.02)
            if got is not None:
                r, _ = got
                if r and r[-1] == self._get_seq:
                    reply = r[:-1]
                else:
                    self.rpc_stats.stale_replies += 1
                continue
            now = time.monotonic()
            cur = self._epoch()
            if cur != self._get_epoch:
                self._get_epoch = cur
                self.rpc_stats.failovers += 1
            elif now - self._get_last_send < self.resend_interval:
                continue
            else:
                self.rpc_stats.resends += 1
            self.comm.send(
                self._get_msg, self._resolve(self.my_server), C.TAG_REQUEST
            )
            self._get_last_send = now
        self._get_seq = -1
        self._get_msg = None
        return reply

    def park_async(self, types: tuple[str, ...] = (C.CONTROL,)) -> None:
        """Engine-style parked get; delivery arrives on the async channel."""
        self.flush_refcounts()  # task boundary: land deferred decrements
        if not self.reliable:
            self._oneway(
                self.my_server, {"op": C.OP_GET_ASYNC, "types": list(types)}
            )
            return
        self._seq += 1
        seq = self._seq
        self._park_msg = {"op": C.OP_GET_ASYNC, "types": list(types), "seq": seq}
        self._park_seq = seq
        self._park_epoch = self._epoch()
        self.rpc_stats.sent += 1
        self.comm.send(
            self._park_msg, self._resolve(self.my_server), C.TAG_REQUEST
        )
        # Wait for the ("parked", seq) acknowledgement so "parked" is
        # distinguishable from "request lost"; the grant itself arrives
        # on the async channel whenever work shows up.
        last_send = time.monotonic()
        while True:
            got = self.comm.recv_poll(tag=C.TAG_RESPONSE, timeout=0.02)
            if got is not None:
                reply, _ = got
                if reply and reply[-1] == seq:
                    return
                self.rpc_stats.stale_replies += 1
                continue
            now = time.monotonic()
            cur = self._epoch()
            if cur != self._park_epoch:
                self._park_epoch = cur
                self.rpc_stats.failovers += 1
            elif now - last_send < self.resend_interval:
                continue
            else:
                self.rpc_stats.resends += 1
            self.comm.send(
                self._park_msg, self._resolve(self.my_server), C.TAG_REQUEST
            )
            last_send = now

    def recv_async(self) -> tuple:
        """Receive the next async event: ('notify', id) |
        ('ctask', type, payload) | ('ckpt', gen) | ('adopt', rank,
        rules, repair) | ('shutdown',)."""
        if not self.reliable:
            if self.tick is None:
                msg, _ = self.comm.recv(tag=C.TAG_ASYNC)
                return msg
            while True:
                got = self.comm.recv_poll(tag=C.TAG_ASYNC, timeout=0.05)
                if got is not None:
                    msg, _ = got
                    return msg
                self.tick()
        while True:
            got = self.comm.recv_poll(tag=C.TAG_ASYNC, timeout=0.05)
            if got is not None:
                msg, _ = got
                if msg[0] == "ctask":
                    if len(msg) > 3:
                        if msg[3] != self._park_seq:
                            # duplicate of an already-consumed grant
                            self.rpc_stats.stale_replies += 1
                            continue
                        # Consume the park: later copies of this grant
                        # (failover resends) no longer match.
                        self._park_seq = -1
                        return msg[:3]
                return msg
            if self.tick is not None:
                self.tick()
            if self._park_seq >= 0:
                cur = self._epoch()
                if cur != self._park_epoch:
                    # Our server died while we were parked: re-park at
                    # the heir (same seq — its dedup table knows whether
                    # the dead server already granted us something).
                    self._park_epoch = cur
                    self.rpc_stats.failovers += 1
                    self.comm.send(
                        self._park_msg,
                        self._resolve(self.my_server),
                        C.TAG_REQUEST,
                    )

    def journal(self, entries: list) -> None:
        """Stream rule-lifecycle journal entries to the anchor server.

        An empty list is a pure heartbeat (refreshes the journal's
        last-heard stamp).  Always a raw oneway, even in reliable mode:
        the thread-backed transport guarantees in-order delivery, a
        flush after the final counter decrement must not block on a
        server that already shut down, and entries stranded in a dead
        server's mailbox are recovered by the heir's scavenge pass
        (the message carries ``rank`` so provenance survives)."""
        self.comm.send(
            {"op": C.OP_JOURNAL, "rank": self.rank, "entries": entries},
            self._resolve(self.my_server) if self.reliable else self.my_server,
            C.TAG_ONEWAY,
        )

    def task_fail(self, kind: str, error: str, traceback_text: str = "") -> None:
        """Report the leased task as failed; ownership of the unit (and
        its termination-counter increment) passes back to the server,
        which will retry it or give up per its retry policy."""
        self._oneway(
            self.my_server,
            {
                "op": C.OP_TASK_FAIL,
                "kind": kind,
                "error": error,
                "traceback": traceback_text,
            },
        )

    # ------------------------------------------------------------------ data

    def allocate_id(self) -> int:
        if self._id_next >= self._id_limit:
            start, size = self._rpc(
                self.layout.master_server, {"op": C.OP_ID_BLOCK}
            )
            self._id_next, self._id_limit = start, start + size
        td_id = self._id_next
        self._id_next += 1
        return td_id

    def create(
        self,
        type: str,
        write_refcount: int = 1,
        read_refcount: int = 1,
        id: int | None = None,
    ) -> int:
        td_id = self.allocate_id() if id is None else id
        self._rpc(
            self.layout.home_server(td_id),
            {
                "op": C.OP_CREATE,
                "id": td_id,
                "type": type,
                "write_refcount": write_refcount,
                "read_refcount": read_refcount,
            },
        )
        return td_id

    def store(
        self,
        id: int,
        value: Any,
        subscript: str | None = None,
        decr_write: int = 1,
    ) -> None:
        if self.read_cache_enabled and subscript is not None:
            # A member insert invalidates any cached whole-container
            # snapshot (possible with decr_write=0 after a snapshot).
            if self._read_cache.pop((id, None)) is not None:
                self.data_stats.evictions += 1
        if self.tracer is not None:
            # Lineage edge: the current unit wrote this TD.
            prov_payload: dict = {"td": id, "unit": self.prov_unit}
            if subscript is not None:
                prov_payload["sub"] = subscript
            self.tracer.instant(self.rank, "prov", "write", prov_payload)
        self._rpc(
            self.layout.home_server(id),
            {
                "op": C.OP_STORE,
                "id": id,
                "value": value,
                "subscript": subscript,
                "decr_write": decr_write,
            },
        )

    def retrieve(self, id: int, subscript: str | None = None) -> Any:
        if self.read_cache_enabled:
            key = (id, subscript)
            cached = self._read_cache.get(key, _MISSING)
            if cached is not _MISSING:
                self.data_stats.hits += 1
                # Containers are cached as dict snapshots; hand out a
                # copy so callers can't mutate the cached entry.
                return dict(cached) if type(cached) is dict else cached
            value, closed = self._rpc(
                self.layout.home_server(id),
                {"op": C.OP_RETRIEVE, "id": id, "subscript": subscript},
            )
            self.data_stats.misses += 1
            if closed:
                self._read_cache.put(key, value)
                if subscript is not None:
                    self._sub_ids.add(id)
            return value
        value, _closed = self._rpc(
            self.layout.home_server(id),
            {"op": C.OP_RETRIEVE, "id": id, "subscript": subscript},
        )
        return value

    def exists(self, id: int, subscript: str | None = None) -> bool:
        return self._rpc(
            self.layout.home_server(id),
            {"op": C.OP_EXISTS, "id": id, "subscript": subscript},
        )

    def typeof(self, id: int) -> str:
        return self._rpc(self.layout.home_server(id), {"op": C.OP_TYPEOF, "id": id})

    def subscribe(self, id: int) -> bool:
        """Subscribe to a TD's close; True if already closed."""
        return self._rpc(
            self.layout.home_server(id),
            {"op": C.OP_SUBSCRIBE, "id": id, "rank": self.rank},
        )

    def container_reference(self, id: int, subscript: str, ref_id: int) -> None:
        self._rpc(
            self.layout.home_server(id),
            {
                "op": C.OP_CONTAINER_REF,
                "id": id,
                "subscript": subscript,
                "ref_id": ref_id,
            },
        )

    def enumerate(self, id: int) -> list[str]:
        return self._rpc(
            self.layout.home_server(id), {"op": C.OP_ENUMERATE, "id": id}
        )

    def refcount(self, id: int, read_delta: int = 0, write_delta: int = 0) -> None:
        if read_delta < 0:
            # This client gave up a read reference: never serve the
            # value from cache again, whether or not the TD survives.
            self._evict_id(id)
        if self.batch_refcounts:
            # Defer decrements to the task-boundary flush.  Positive
            # write deltas must go out immediately: generated code adds
            # writer slots *before* handing them out, and a deferred
            # increment could let the TD close under an in-flight slot.
            if write_delta > 0:
                self._rpc(
                    self.layout.home_server(id),
                    {
                        "op": C.OP_REFCOUNT,
                        "id": id,
                        "read_delta": 0,
                        "write_delta": write_delta,
                    },
                )
                write_delta = 0
            if read_delta == 0 and write_delta == 0:
                return
            pending = self._pending_refcounts.get(id)
            if pending is None:
                self._pending_refcounts[id] = [read_delta, write_delta]
            else:
                pending[0] += read_delta
                pending[1] += write_delta
            return
        reply = self._rpc(
            self.layout.home_server(id),
            {
                "op": C.OP_REFCOUNT,
                "id": id,
                "read_delta": read_delta,
                "write_delta": write_delta,
            },
        )
        if isinstance(reply, dict) and reply.get("freed"):
            self._evict_id(id)

    def flush_refcounts(self) -> None:
        """Send pending refcount deltas, one batched RPC per home server.

        Called at task boundaries (after a worker task, a fired LOCAL
        rule, or a control task) so every deferred decrement lands
        before the matching termination-counter decrement.
        """
        if not self._pending_refcounts:
            return
        pending = self._pending_refcounts
        self._pending_refcounts = {}
        by_server: dict[int, list[dict]] = {}
        for id, (read_delta, write_delta) in pending.items():
            if read_delta == 0 and write_delta == 0:
                continue
            by_server.setdefault(self.layout.home_server(id), []).append(
                {"id": id, "read_delta": read_delta, "write_delta": write_delta}
            )
        if self.flightrec is not None:
            self.flightrec.record(
                self.rank,
                "refcount_flush",
                sum(len(v) for v in by_server.values()),
            )
        if self.tracer is not None:
            # Lineage: a deferred refcount batch belongs to the unit
            # whose boundary flushed it (decrements can close TDs and
            # fire downstream rules, so the edge matters causally).
            self.tracer.instant(
                self.rank,
                "prov",
                "refcount_flush",
                {
                    "unit": self.prov_unit,
                    "ops": sum(len(v) for v in by_server.values()),
                    "tds": sorted(
                        id for ops in by_server.values() for id in
                        (o["id"] for o in ops)
                    ),
                },
            )
        for server, ops in by_server.items():
            reply = self._rpc(server, {"op": C.OP_REFCOUNT_BATCH, "ops": ops})
            self.data_stats.refcount_batches += 1
            self.data_stats.refcount_batched_ops += len(ops)
            for id in reply.get("freed", ()):
                self._evict_id(id)

    def discard_pending_refcounts(self) -> None:
        """Drop deferred refcount deltas without applying them.

        Used when a task fails and will be *retried*: the re-execution
        performs the same decrements again, so flushing the failed
        attempt's deltas would double-apply them."""
        self._pending_refcounts = {}

    def _evict_id(self, id: int) -> None:
        """Drop every cache entry belonging to a TD (scalar + members).

        The subscript-id index keeps the common case (scalar TDs) a
        single dict pop instead of a full cache scan.
        """
        if not self.read_cache_enabled:
            return
        n = 0
        if self._read_cache.pop((id, None)) is not None:
            n += 1
        if id in self._sub_ids:
            self._sub_ids.discard(id)
            stale = [k for k in self._read_cache.keys() if k[0] == id]
            for k in stale:
                self._read_cache.pop(k)
            n += len(stale)
        self.data_stats.evictions += n

    # ----------------------------------------------------------- termination

    def incr_work(self, amount: int = 1) -> None:
        self._oneway(
            self.layout.master_server, {"op": C.OP_INCR_WORK, "amount": amount}
        )

    def decr_work(self, amount: int = 1, poison: bool = False) -> None:
        """Decrement the termination counter.

        ``poison=True`` marks the decrement as coming from a unit that
        failed permanently under ``on_error="continue"``: dataflow
        blocked on its outputs will never resolve, so the master arms
        quiescence-based drain shutdown for the rest of the run."""
        msg: dict = {"op": C.OP_DECR_WORK, "amount": amount}
        if poison:
            msg["poison"] = True
        self._oneway(self.layout.master_server, msg)

    def server_stats(self) -> dict:
        return self._rpc(self.my_server, {"op": C.OP_STATS})
