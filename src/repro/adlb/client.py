"""Client-side ADLB API used by engines and workers.

Wraps the RPC protocol: work ops go to the rank's attached server, data
ops are routed to each TD's home server, and termination-counter ops go
to the master server.
"""

from __future__ import annotations

from typing import Any

from ..mpi import Comm
from . import constants as C
from .layout import Layout


class AdlbError(RuntimeError):
    pass


class AdlbClient:
    def __init__(self, comm: Comm, layout: Layout):
        self.comm = comm
        self.layout = layout
        self.rank = comm.rank
        self.my_server = layout.my_server(self.rank)
        self._id_next = 0
        self._id_limit = 0

    # ------------------------------------------------------------------- RPC

    def _rpc(self, server: int, msg: dict) -> Any:
        self.comm.send(msg, server, C.TAG_REQUEST)
        reply, _ = self.comm.recv(source=server, tag=C.TAG_RESPONSE)
        if reply[0] == "error":
            raise AdlbError(reply[1])
        return reply[1]

    def _oneway(self, server: int, msg: dict) -> None:
        self.comm.send(msg, server, C.TAG_ONEWAY)

    # ------------------------------------------------------------------ work

    def put(
        self,
        payload: Any,
        type: str = C.WORK,
        priority: int = 0,
        target: int = -1,
    ) -> None:
        """Submit a task.  Targeted tasks are routed to the target's server."""
        server = (
            self.layout.my_server(target) if target >= 0 else self.my_server
        )
        self._oneway(
            server,
            {
                "op": C.OP_PUT,
                "type": type,
                "payload": payload,
                "priority": priority,
                "target": target,
            },
        )

    def get(self, types: tuple[str, ...] = (C.WORK,)) -> tuple[str, Any] | None:
        """Blocking get; returns (type, payload) or None on shutdown."""
        self.get_send(types)
        return self.get_wait()

    def get_send(self, types: tuple[str, ...] = (C.WORK,)) -> None:
        """First half of get(): issue the request without waiting.

        Splitting get lets a worker send its termination-counter
        decrement *after* it is parked, which the shutdown protocol
        requires (a server only exits once every attached client is
        parked or has been told to shut down).
        """
        self.comm.send(
            {"op": C.OP_GET, "types": list(types)}, self.my_server, C.TAG_REQUEST
        )

    def get_wait(self) -> tuple[str, Any] | None:
        reply, _ = self.comm.recv(source=self.my_server, tag=C.TAG_RESPONSE)
        if reply[0] == "shutdown":
            return None
        if reply[0] == "task":
            return reply[1], reply[2]
        raise AdlbError("unexpected get reply %r" % (reply,))

    def park_async(self, types: tuple[str, ...] = (C.CONTROL,)) -> None:
        """Engine-style parked get; delivery arrives on the async channel."""
        self._oneway(self.my_server, {"op": C.OP_GET_ASYNC, "types": list(types)})

    def recv_async(self) -> tuple:
        """Receive the next async event: ('notify', id) |
        ('ctask', type, payload) | ('shutdown',)."""
        msg, _ = self.comm.recv(tag=C.TAG_ASYNC)
        return msg

    # ------------------------------------------------------------------ data

    def allocate_id(self) -> int:
        if self._id_next >= self._id_limit:
            start, size = self._rpc(
                self.layout.master_server, {"op": C.OP_ID_BLOCK}
            )
            self._id_next, self._id_limit = start, start + size
        td_id = self._id_next
        self._id_next += 1
        return td_id

    def create(
        self,
        type: str,
        write_refcount: int = 1,
        read_refcount: int = 1,
        id: int | None = None,
    ) -> int:
        td_id = self.allocate_id() if id is None else id
        self._rpc(
            self.layout.home_server(td_id),
            {
                "op": C.OP_CREATE,
                "id": td_id,
                "type": type,
                "write_refcount": write_refcount,
                "read_refcount": read_refcount,
            },
        )
        return td_id

    def store(
        self,
        id: int,
        value: Any,
        subscript: str | None = None,
        decr_write: int = 1,
    ) -> None:
        self._rpc(
            self.layout.home_server(id),
            {
                "op": C.OP_STORE,
                "id": id,
                "value": value,
                "subscript": subscript,
                "decr_write": decr_write,
            },
        )

    def retrieve(self, id: int, subscript: str | None = None) -> Any:
        return self._rpc(
            self.layout.home_server(id),
            {"op": C.OP_RETRIEVE, "id": id, "subscript": subscript},
        )

    def exists(self, id: int, subscript: str | None = None) -> bool:
        return self._rpc(
            self.layout.home_server(id),
            {"op": C.OP_EXISTS, "id": id, "subscript": subscript},
        )

    def typeof(self, id: int) -> str:
        return self._rpc(self.layout.home_server(id), {"op": C.OP_TYPEOF, "id": id})

    def subscribe(self, id: int) -> bool:
        """Subscribe to a TD's close; True if already closed."""
        return self._rpc(
            self.layout.home_server(id),
            {"op": C.OP_SUBSCRIBE, "id": id, "rank": self.rank},
        )

    def container_reference(self, id: int, subscript: str, ref_id: int) -> None:
        self._rpc(
            self.layout.home_server(id),
            {
                "op": C.OP_CONTAINER_REF,
                "id": id,
                "subscript": subscript,
                "ref_id": ref_id,
            },
        )

    def enumerate(self, id: int) -> list[str]:
        return self._rpc(
            self.layout.home_server(id), {"op": C.OP_ENUMERATE, "id": id}
        )

    def refcount(self, id: int, read_delta: int = 0, write_delta: int = 0) -> None:
        self._rpc(
            self.layout.home_server(id),
            {
                "op": C.OP_REFCOUNT,
                "id": id,
                "read_delta": read_delta,
                "write_delta": write_delta,
            },
        )

    # ----------------------------------------------------------- termination

    def incr_work(self, amount: int = 1) -> None:
        self._oneway(
            self.layout.master_server, {"op": C.OP_INCR_WORK, "amount": amount}
        )

    def decr_work(self, amount: int = 1) -> None:
        self._oneway(
            self.layout.master_server, {"op": C.OP_DECR_WORK, "amount": amount}
        )

    def server_stats(self) -> dict:
        return self._rpc(self.my_server, {"op": C.OP_STATS})
