"""Checkpoint images: atomic write, validation, and restore planning.

A checkpoint is a single pickle produced by the master server's
two-phase snapshot protocol (see :mod:`repro.adlb.server`): per-server
shard images (data store + pending tasks) plus per-engine rule tables.
``repro run --restore <ckpt>`` replays one into a fresh world of the
same shape.

Restore semantics are at-least-once: units that were in flight at the
snapshot re-run, and the restored termination counter is reconstructed
as ``total captured tasks + one guard per engine`` — each engine holds
its guard while re-registering rules (every ``add_rule`` increments the
counter itself) and releases it when done, so the counter balances
regardless of how many rules re-fire immediately.
"""

from __future__ import annotations

import os
import pickle
from typing import Any

from .layout import Layout
from .workqueue import Task


class CheckpointError(RuntimeError):
    pass


def write_checkpoint(path: str, image: dict) -> None:
    """Write atomically (tmp + rename) so a crash mid-write can never
    leave a truncated checkpoint behind."""
    # Subscribers are rank-level rule subscriptions; the rules re-create
    # them at restore, and stale ones would double-notify.  Pending
    # container store-throughs (member_refs) stay: nothing re-creates
    # those.
    for shard in image.get("servers", {}).values():
        for td in shard["store"].values():
            td["subscribers"] = []
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        pickle.dump(image, f, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def read_checkpoint(path: str) -> dict:
    if not os.path.exists(path):
        raise CheckpointError("checkpoint %r does not exist" % path)
    with open(path, "rb") as f:
        image = pickle.load(f)
    if not isinstance(image, dict) or image.get("version") != 1:
        raise CheckpointError("%r is not a v1 repro checkpoint" % path)
    return image


def restore_plan(image: dict, layout: Layout) -> dict[str, Any]:
    """Turn a checkpoint image into per-rank restore material.

    Returns ``{"server_shards": {rank: shard}, "engine_rules":
    {rank: [rule, ...]}}``.  The new world must have the same shape as
    the checkpointed one — shard ownership and rule placement are
    rank-keyed.
    """
    for key, have in (
        ("size", layout.size),
        ("n_servers", layout.n_servers),
        ("n_engines", len(layout.engines)),
    ):
        want = image[key]
        if want != have:
            raise CheckpointError(
                "checkpoint was taken with %s=%d; this run has %s=%d "
                "(restore requires an identically-shaped world)"
                % (key, want, key, have)
            )
    total_tasks = 0
    server_shards: dict[int, dict] = {}
    for rank, shard in image["servers"].items():
        tasks = [Task(**d) for d in shard["tasks"]]
        total_tasks += len(tasks)
        server_shards[rank] = {
            "store": shard["store"],
            "tasks": tasks,
            "next_id": shard["next_id"],
            "work_count": None,
        }
    master = server_shards.setdefault(
        layout.master_server,
        {"store": {}, "tasks": [], "next_id": None, "work_count": None},
    )
    # Captured tasks plus one guard per engine; see module docstring.
    master["work_count"] = total_tasks + len(layout.engines)
    return {
        "server_shards": server_shards,
        "engine_rules": dict(image.get("engines", {})),
    }
