"""Baseline scheduler for the load-balancing comparison (LB experiment).

The paper (§II-A) argues that "the asynchronous, load-balanced Swift
model is an excellent fit" for compute-intensive functions with varying
runtimes.  The natural baseline is *static round-robin*: pre-assign
task i to worker ``i % W`` with no runtime balancing.  Both paths here
run over the same thread-backed MPI substrate so measured makespans are
directly comparable with the dynamic ADLB runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..mpi import Comm, run_world
from .client import AdlbClient
from .constants import WORK
from .layout import Layout
from .server import Server


@dataclass
class DispatchResult:
    makespan: float
    per_worker_busy: list[float] = field(default_factory=list)

    @property
    def imbalance(self) -> float:
        """max busy / mean busy - 1 (0 means perfectly balanced)."""
        busy = np.asarray(self.per_worker_busy)
        mean = float(busy.mean()) if busy.size else 0.0
        if mean == 0:
            return 0.0
        return float(busy.max()) / mean - 1.0


def run_static_round_robin(
    n_workers: int, task_fn: Callable[[int], None], n_tasks: int
) -> DispatchResult:
    """Execute tasks with static assignment: task i -> worker i % W."""
    busy = [0.0] * n_workers

    def main(comm: Comm) -> None:
        rank = comm.rank
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(rank, n_tasks, comm.size):
            task_fn(i)
        busy[rank] = time.perf_counter() - t0
        comm.barrier()

    t0 = time.perf_counter()
    run_world(n_workers, main)
    return DispatchResult(
        makespan=time.perf_counter() - t0, per_worker_busy=busy
    )


def run_adlb_dynamic(
    n_workers: int,
    task_fn: Callable[[int], None],
    n_tasks: int,
    n_servers: int = 1,
    steal: bool = True,
) -> DispatchResult:
    """Execute the same tasks through the real ADLB server/worker path."""
    size = n_workers + n_servers + 1  # one "engine" rank submits the bag
    layout = Layout(size, n_servers, 1)
    busy = [0.0] * size

    def main(comm: Comm) -> None:
        rank = comm.rank
        if layout.is_server(rank):
            Server(comm, layout, steal=steal).run()
            return
        client = AdlbClient(comm, layout)
        if layout.is_engine(rank):
            client.incr_work()  # cover the submission phase
            for i in range(n_tasks):
                client.incr_work()
                client.put(i, type=WORK)
            client.decr_work()
            # engines idle: park for control tasks until shutdown
            client.park_async(("CONTROL",))
            while True:
                msg = client.recv_async()
                if msg[0] == "shutdown":
                    return
            return
        t_busy = 0.0
        while True:
            got = client.get((WORK,))
            if got is None:
                busy[rank] = t_busy
                return
            _, payload = got
            t0 = time.perf_counter()
            task_fn(payload)
            t_busy += time.perf_counter() - t0
            client.decr_work()

    t0 = time.perf_counter()
    run_world(size, main)
    makespan = time.perf_counter() - t0
    worker_busy = [busy[r] for r in layout.workers]
    return DispatchResult(makespan=makespan, per_worker_busy=worker_busy)
