"""Tcl code generation (the STC back end).

Swift dataflow semantics compile onto the Turbine command set exactly
as in real STC: every Swift variable becomes a Turbine datum (TD);
statements become ``turbine::rule`` registrations; loop iterations are
shipped as CONTROL tasks; leaf calls (extension functions, apps,
python/r) become WORK tasks executed on workers; arrays are containers
of member-TD references with compile-time write-refcount ("slot")
accounting deciding when they close.

Slot accounting invariant: every scope that can write an array holds
exactly one slot per writer *statement* it contains; compound
statements (if, foreach, wait, calls) hold one slot and rebalance on
entry (``incr W-1``); a container is created with ``1 + W`` slots and
the declaration slot is released at the end of its block.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any

from ..tcl.listutil import format_element
from .errors import SwiftTypeError
from .semantics import FuncSig
from .stdlib import INTRINSICS
from .swift_ast import (
    AppDef,
    Assign,
    BinOp,
    Block,
    Call,
    Decl,
    Expr,
    ExprStmt,
    ExtFuncDef,
    Foreach,
    FuncDef,
    If,
    Literal,
    LValue,
    Program,
    RangeSpec,
    Stmt,
    Subscript,
    UnOp,
    VarRef,
    Wait,
)
from .types import (
    BOOLEAN,
    FLOAT,
    INT,
    STORE_CMD,
    STRING,
    TD_TYPE,
    VOID,
    SwiftType,
)

# ---------------------------------------------------------------- write sets


def writes_arrays(stmt: Stmt) -> set[str]:
    """Array variable names (possibly outer-scope) written by stmt."""
    if isinstance(stmt, Decl):
        if stmt.swift_type.is_array and stmt.init is not None:
            return {stmt.name}
        return set()
    if isinstance(stmt, Assign):
        out: set[str] = set()
        for target in stmt.targets:
            if target.index is not None:
                out.add(target.name)
            elif target.type is not None and target.type.is_array:
                out.add(target.name)
        return out
    if isinstance(stmt, If):
        out = block_writes(stmt.then)
        if stmt.els is not None:
            out |= block_writes(stmt.els)
        return out
    if isinstance(stmt, Foreach):
        return block_writes(stmt.body)
    if isinstance(stmt, Wait):
        return block_writes(stmt.body)
    if isinstance(stmt, Block):
        return block_writes(stmt)
    return set()


def block_writes(block: Block) -> set[str]:
    declared = {
        s.name for s in block.stmts if isinstance(s, Decl)
    }
    out: set[str] = set()
    for s in block.stmts:
        out |= writes_arrays(s)
    return out - declared


def writer_count(block: Block, name: str) -> int:
    """Number of immediate writer statements of array ``name`` in block."""
    return sum(1 for s in block.stmts if name in writes_arrays(s))


# ---------------------------------------------------------------- values


@dataclass
class CgVal:
    """A compiled expression value: constant, spawn-time value, or TD."""

    type: SwiftType
    kind: str  # 'const' | 'rtval' | 'td'
    const: Any = None
    expr: str = ""  # Tcl expression (an id for 'td', a value for 'rtval')
    slot: Any = None  # backing Slot, so TD materialization is cached


def quote_const(value: Any, t: SwiftType) -> str:
    """Tcl source representation of a Swift literal."""
    if t == BOOLEAN:
        return "1" if value else "0"
    if t == FLOAT:
        v = float(value)
        return repr(v)
    if t == INT:
        return str(int(value))
    return format_element(str(value))


class Slot:
    """A Swift variable during code generation."""

    __slots__ = ("swift_name", "type", "kind", "expr", "const", "value_expr")

    def __init__(self, swift_name: str, t: SwiftType, kind: str, expr: str = "", const: Any = None):
        self.swift_name = swift_name
        self.type = t
        self.kind = kind  # 'td' | 'const' | 'rtval' | 'unmaterialized'
        self.expr = expr
        self.const = const
        # spawn-time value expression, preserved across TD
        # materialization so O2 can still compute with the value
        self.value_expr: str | None = expr if kind == "rtval" else None


# ---------------------------------------------------------------- builders


class ProcBuilder:
    def __init__(self, name: str, params: list[str]):
        self.name = name
        self.params = params
        self.lines: list[str] = []
        self._temp = itertools.count(1)
        self._locals: set[str] = set(params)

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    def temp(self) -> str:
        return "t%d" % next(self._temp)

    def local_name(self, base: str) -> str:
        name = "v_" + base
        k = 1
        while name in self._locals:
            k += 1
            name = "v_%s_%d" % (base, k)
        self._locals.add(name)
        return name

    def param_name(self, base: str) -> str:
        name = "c_" + base
        k = 1
        while name in self._locals:
            k += 1
            name = "c_%s_%d" % (base, k)
        self._locals.add(name)
        return name

    def text(self) -> str:
        header = "proc %s { %s } {" % (self.name, " ".join(self.params) or "")
        return "\n".join([header, *self.lines, "}"])


class Scope:
    def __init__(
        self,
        gen: "Codegen",
        proc: ProcBuilder,
        parent: "Scope | None" = None,
        boundary: bool = False,
    ):
        self.gen = gen
        self.proc = proc
        self.parent = parent
        self.boundary = boundary
        self.slots: dict[str, Slot] = {}
        # capture order matters: it becomes the proc's trailing params
        self.captures: list[tuple[str, str]] = []  # (swift name, param name)

    def declare(self, name: str, slot: Slot) -> Slot:
        self.slots[name] = slot
        return slot

    def resolve(self, name: str) -> Slot:
        if name in self.slots:
            return self.slots[name]
        if self.parent is None:
            raise SwiftTypeError("codegen: unresolved variable %r" % name)
        outer = self.parent.resolve(name)
        if not self.boundary:
            return outer
        # crossing a proc boundary: constants copy, TDs/values become params
        if outer.kind == "const":
            slot = Slot(name, outer.type, "const", const=outer.const)
            return self.declare(name, slot)
        if outer.kind == "unmaterialized":
            # materialize in the outer proc so the id can be captured
            self.gen.ensure_td_slot(self.parent, outer)
        param = self.proc.param_name(name)
        self.proc.params.append(param)
        self.captures.append((name, param))
        slot = Slot(name, outer.type, outer.kind if outer.kind != "unmaterialized" else "td", expr="$" + param)
        return self.declare(name, slot)

    def capture_args(self, call_scope: "Scope") -> list[str]:
        """Arguments the parent passes for this boundary scope's captures."""
        args = []
        for name, _param in self.captures:
            outer = call_scope.resolve(name)
            if outer.kind == "unmaterialized":
                self.gen.ensure_td_slot(call_scope, outer)
            args.append(outer.expr)
        return args


# ---------------------------------------------------------------- result


@dataclass
class CompiledProgram:
    tcl_text: str
    entry: str = "swift:main"
    packages: list[str] = field(default_factory=list)
    opt_level: int = 1
    n_procs: int = 0

    @property
    def n_lines(self) -> int:
        return self.tcl_text.count("\n") + 1


# ---------------------------------------------------------------- codegen


class Codegen:
    def __init__(self, program: Program, funcs: dict[str, FuncSig], opt: int = 1):
        self.program = program
        self.funcs = funcs
        self.opt = opt
        self.procs: list[ProcBuilder] = []
        self._hoist = itertools.count(1)
        self.packages: set[str] = set()

    # -- entry ---------------------------------------------------------------

    def generate(self) -> CompiledProgram:
        for ext in self.program.ext_funcs:
            self.gen_extension(ext)
        for app in self.program.app_funcs:
            self.gen_app(app)
        for fn in self.program.funcs:
            self.gen_composite(fn)
        main_proc = ProcBuilder("swift:main", [])
        self.procs.append(main_proc)
        scope = Scope(self, main_proc)
        self.compile_block(self.program.main, scope)
        prelude = ["# generated by repro-stc (opt level %d)" % self.opt]
        for pkg in sorted(self.packages):
            prelude.append("package require %s" % pkg)
        body = "\n\n".join(p.text() for p in self.procs)
        return CompiledProgram(
            tcl_text="\n".join(prelude) + "\n\n" + body + "\n",
            packages=sorted(self.packages),
            opt_level=self.opt,
            n_procs=len(self.procs),
        )

    # -- helpers --------------------------------------------------------------

    def new_proc(self, kind: str, params: list[str]) -> ProcBuilder:
        proc = ProcBuilder("swift:__%s%d" % (kind, next(self._hoist)), params)
        self.procs.append(proc)
        return proc

    def ensure_td_slot(self, scope: Scope, slot: Slot) -> str:
        """Materialize a slot as a TD id expression, allocating if needed."""
        proc = scope.proc
        if slot.kind == "td":
            return slot.expr
        if slot.kind == "unmaterialized":
            local = proc.local_name(slot.swift_name)
            proc.emit(
                "set %s [ turbine::allocate %s ]" % (local, TD_TYPE[slot.type.base])
            )
            slot.kind = "td"
            slot.expr = "$" + local
            return slot.expr
        if slot.kind == "const":
            td = self.lit_td(proc, slot.const, slot.type)
            slot.kind = "td"
            slot.expr = td
            return td
        if slot.kind == "rtval":
            td = self.value_td(proc, slot.expr, slot.type)
            slot.kind = "td"
            slot.expr = td
            return td
        raise SwiftTypeError("bad slot kind %r" % slot.kind)

    def lit_td(self, proc: ProcBuilder, value: Any, t: SwiftType) -> str:
        tmp = proc.temp()
        proc.emit("set %s [ turbine::allocate %s ]" % (tmp, TD_TYPE[t.base]))
        proc.emit("%s $%s %s" % (STORE_CMD[t.base], tmp, quote_const(value, t)))
        return "$" + tmp

    def value_td(self, proc: ProcBuilder, value_expr: str, t: SwiftType) -> str:
        tmp = proc.temp()
        proc.emit("set %s [ turbine::allocate %s ]" % (tmp, TD_TYPE[t.base]))
        proc.emit("%s $%s %s" % (STORE_CMD[t.base], tmp, value_expr))
        return "$" + tmp

    def ensure_td(self, scope: Scope, val: CgVal) -> str:
        if val.kind == "td":
            return val.expr
        if val.slot is not None:
            # variable-backed: materialize once, cache on the slot
            return self.ensure_td_slot(scope, val.slot)
        if val.kind == "const":
            return self.lit_td(scope.proc, val.const, val.type)
        return self.value_td(scope.proc, val.expr, val.type)

    @staticmethod
    def spawn_value(val: CgVal) -> str | None:
        """Spawn-time value string, or None if only known as a future."""
        if val.kind == "const":
            return quote_const(val.const, val.type)
        if val.kind == "rtval":
            return val.expr
        return None

    def alloc(self, proc: ProcBuilder, t: SwiftType, wrc: int = 1) -> str:
        tmp = proc.temp()
        if t.is_array:
            proc.emit("set %s [ turbine::allocate_container %d ]" % (tmp, wrc))
        else:
            proc.emit("set %s [ turbine::allocate %s ]" % (tmp, TD_TYPE[t.base]))
        return "$" + tmp

    # -- blocks & statements --------------------------------------------------

    def compile_block(self, block: Block, scope: Scope) -> None:
        # Pre-scan: arrays declared in this block and their writer counts.
        declared_arrays: list[str] = []
        for stmt in block.stmts:
            self.compile_stmt(stmt, scope, block)
            if isinstance(stmt, Decl) and stmt.swift_type.is_array:
                declared_arrays.append(stmt.name)
        for name in declared_arrays:
            slot = scope.resolve(name)
            scope.proc.emit("turbine::write_refcount_decr %s 1" % slot.expr)

    def rebalance(self, proc: ProcBuilder, td_expr: str, delta: int, depth: int = 1) -> None:
        if delta > 0:
            proc.emit("turbine::write_refcount_incr %s %d" % (td_expr, delta), depth)
        elif delta < 0:
            proc.emit("turbine::write_refcount_decr %s %d" % (td_expr, -delta), depth)

    def compile_stmt(self, stmt: Stmt, scope: Scope, block: Block) -> None:
        if isinstance(stmt, Decl):
            self.compile_decl(stmt, scope, block)
        elif isinstance(stmt, Assign):
            self.compile_assign(stmt, scope)
        elif isinstance(stmt, ExprStmt):
            assert isinstance(stmt.expr, Call)
            sig = self.funcs[stmt.expr.func]
            self.emit_call(
                sig,
                [],
                stmt.expr.args,
                scope,
                priority=self._priority_value(stmt, scope),
                target=self._target_value(stmt, scope),
            )
        elif isinstance(stmt, If):
            self.compile_if(stmt, scope)
        elif isinstance(stmt, Foreach):
            self.compile_foreach(stmt, scope)
        elif isinstance(stmt, Wait):
            self.compile_wait(stmt, scope)
        elif isinstance(stmt, Block):
            self.compile_block(stmt, Scope(self, scope.proc, scope))
        else:
            raise SwiftTypeError("codegen: unknown statement %r" % stmt)

    def compile_decl(self, stmt: Decl, scope: Scope, block: Block) -> None:
        t = stmt.swift_type
        priority = self._priority_value(stmt, scope)
        target = self._target_value(stmt, scope)
        if t.is_array:
            w = writer_count(block, stmt.name)
            td = self.alloc(scope.proc, t, wrc=1 + w)
            slot = Slot(stmt.name, t, "td", expr=td)
            scope.declare(stmt.name, slot)
            if stmt.init is not None:
                # whole-array init from a call
                assert isinstance(stmt.init, Call)
                sig = self.funcs[stmt.init.func]
                self.emit_call(
                    sig, [td], stmt.init.args, scope,
                    priority=priority, target=target,
                )
            return
        # scalars are lazily materialized
        slot = Slot(stmt.name, t, "unmaterialized")
        scope.declare(stmt.name, slot)
        if stmt.init is not None:
            self.assign_into(
                slot, stmt.init, scope, priority=priority, target=target
            )

    def assign_into(
        self,
        slot: Slot,
        expr: Expr,
        scope: Scope,
        priority: str | None = None,
        target: str | None = None,
    ) -> None:
        """Compile ``slot = expr`` for a scalar slot."""
        if (
            self.opt >= 2
            and isinstance(expr, Literal)
            and slot.kind == "unmaterialized"
        ):
            slot.kind = "const"
            slot.const = expr.value
            return
        if isinstance(expr, (BinOp, UnOp)):
            folded = self.try_fold(expr, scope)
            if folded is not None:
                self._store_val(slot, folded, scope)
                return
            dst = self.ensure_td_slot(scope, slot)
            self.emit_operator(expr, dst, scope)
            return
        if isinstance(expr, Call):
            sig = self.funcs[expr.func]
            dst = self.ensure_td_slot(scope, slot)
            self.emit_call(
                sig, [dst], expr.args, scope, priority=priority, target=target
            )
            return
        if isinstance(expr, Subscript):
            dst = self.ensure_td_slot(scope, slot)
            self.emit_subscript_into(expr, dst, scope)
            return
        val = self.compile_expr(expr, scope)
        self._store_val(slot, val, scope)

    def _store_val(self, slot: Slot, val: CgVal, scope: Scope) -> None:
        if val.kind == "const" and self.opt >= 2 and slot.kind == "unmaterialized":
            slot.kind = "const"
            slot.const = val.const
            return
        dst = self.ensure_td_slot(scope, slot)
        if val.kind == "td":
            scope.proc.emit("turbine::copy_td %s %s" % (dst, val.expr))
        else:
            value = self.spawn_value(val)
            scope.proc.emit("%s %s %s" % (STORE_CMD[slot.type.base], dst, value))

    def _annotation_value(self, stmt, scope: Scope, attr: str) -> str | None:
        expr = getattr(stmt, attr, None)
        if expr is None:
            return None
        val = self.compile_expr(expr, scope)
        value = self.spawn_value(val)
        if value is None:
            raise SwiftTypeError(
                "@%s must be computable at spawn time (a constant or "
                "loop-index expression), not a future"
                % ("prio" if attr == "priority" else attr),
                stmt.line,
            )
        return value

    def _priority_value(self, stmt, scope: Scope) -> str | None:
        return self._annotation_value(stmt, scope, "priority")

    def _target_value(self, stmt, scope: Scope) -> str | None:
        return self._annotation_value(stmt, scope, "target")

    def compile_assign(self, stmt: Assign, scope: Scope) -> None:
        priority = self._priority_value(stmt, scope)
        target = self._target_value(stmt, scope)
        if len(stmt.exprs) == 1 and isinstance(stmt.exprs[0], Call):
            call = stmt.exprs[0]
            sig = self.funcs[call.func]
            if sig.kind != "intrinsic" and len(sig.outs) == len(stmt.targets) > 1:
                out_tds = [self.target_td(t, scope) for t in stmt.targets]
                self.emit_call(
                    sig, out_tds, call.args, scope,
                    priority=priority, target=target,
                )
                return
        for lhs, expr in zip(stmt.targets, stmt.exprs):
            if lhs.index is None:
                slot = scope.resolve(lhs.name)
                if slot.type.is_array:
                    # whole-array assignment from a call
                    assert isinstance(expr, Call)
                    sig = self.funcs[expr.func]
                    self.emit_call(
                        sig, [slot.expr], expr.args, scope,
                        priority=priority, target=target,
                    )
                elif (priority is not None or target is not None) and isinstance(expr, Call):
                    sig = self.funcs[expr.func]
                    dst = self.ensure_td_slot(scope, slot)
                    self.emit_call(
                        sig, [dst], expr.args, scope,
                        priority=priority, target=target,
                    )
                else:
                    self.assign_into(slot, expr, scope)
            else:
                self.compile_array_store(lhs, expr, scope)

    def target_td(self, target: LValue, scope: Scope) -> str:
        """TD receiving one output of a multi-output call."""
        if target.index is None:
            slot = scope.resolve(target.name)
            return self.ensure_td_slot(scope, slot)
        # a[i], out = f(...): insert a fresh member, then fill it
        member = self.alloc(scope.proc, target.type)
        self.emit_insert(target, member, scope)
        return member

    def compile_array_store(self, target: LValue, expr: Expr, scope: Scope) -> None:
        # a[i] = expr: compile expr to a member TD, insert the reference.
        if isinstance(expr, VarRef):
            member = self.ensure_td_slot(scope, scope.resolve(expr.name))
        else:
            member = self.alloc(scope.proc, target.type)
            self.compile_expr_into(expr, member, target.type, scope)
        self.emit_insert(target, member, scope)

    def emit_insert(self, target: LValue, member_td: str, scope: Scope) -> None:
        arr = scope.resolve(target.name)
        idx = self.compile_expr(target.index, scope)
        idx_value = self.spawn_value(idx)
        if idx_value is not None:
            scope.proc.emit(
                "turbine::container_insert %s %s %s 1"
                % (arr.expr, idx_value, member_td)
            )
        else:
            scope.proc.emit(
                "turbine::insert_when_ready %s %s %s"
                % (arr.expr, idx.expr, member_td)
            )

    # -- control flow ----------------------------------------------------------

    def compile_if(self, stmt: If, scope: Scope) -> None:
        cond = self.compile_expr(stmt.cond, scope)
        if cond.kind == "const" and self.opt >= 1:
            branch = stmt.then if cond.const else stmt.els
            if branch is not None:
                self.compile_block(branch, Scope(self, scope.proc, scope))
            return
        written = sorted(writes_arrays(stmt))
        cond_td = self.ensure_td(scope, cond)
        proc = self.new_proc("if", ["c"])
        child = Scope(self, proc, scope, boundary=True)
        # resolve written arrays up-front so they become captures
        arr_slots = {name: child.resolve(name) for name in written}
        proc.emit("if { [ turbine::retrieve $c ] } {", 1)
        then_scope = Scope(self, proc, child)
        for name in written:
            self.rebalance(proc, arr_slots[name].expr, writer_count(stmt.then, name) - 1, 2)
        self._compile_block_at(stmt.then, then_scope, 2)
        proc.emit("} else {", 1)
        else_scope = Scope(self, proc, child)
        for name in written:
            w = writer_count(stmt.els, name) if stmt.els is not None else 0
            self.rebalance(proc, arr_slots[name].expr, w - 1, 2)
        if stmt.els is not None:
            self._compile_block_at(stmt.els, else_scope, 2)
        proc.emit("}", 1)
        args = " ".join([cond_td, *child.capture_args(scope)])
        scope.proc.emit(
            "turbine::rule [ list %s ] [ list %s %s ] LOCAL"
            % (cond_td, proc.name, args)
        )

    def _compile_block_at(self, block: Block, scope: Scope, depth: int) -> None:
        """Compile a block whose lines are emitted at a given indent."""
        proc = scope.proc
        mark = len(proc.lines)
        self.compile_block(block, scope)
        if depth != 1:
            extra = "    " * (depth - 1)
            for i in range(mark, len(proc.lines)):
                proc.lines[i] = extra + proc.lines[i]

    def compile_wait(self, stmt: Wait, scope: Scope) -> None:
        deps = [self.ensure_td(scope, self.compile_expr(e, scope)) for e in stmt.exprs]
        written = sorted(writes_arrays(stmt))
        proc = self.new_proc("wait", [])
        child = Scope(self, proc, scope, boundary=True)
        arr_slots = {name: child.resolve(name) for name in written}
        for name in written:
            self.rebalance(proc, arr_slots[name].expr, writer_count(stmt.body, name) - 1, 1)
        self.compile_block(stmt.body, Scope(self, proc, child))
        args = " ".join(child.capture_args(scope))
        scope.proc.emit(
            "turbine::rule [ list %s ] [ list %s%s ] LOCAL"
            % (" ".join(deps), proc.name, (" " + args) if args else "")
        )

    def compile_foreach(self, stmt: Foreach, scope: Scope) -> None:
        written = sorted(writes_arrays(stmt))
        body_w = {name: writer_count(stmt.body, name) for name in written}

        if isinstance(stmt.iterable, RangeSpec):
            self._foreach_range(stmt, scope, written, body_w)
        else:
            self._foreach_array(stmt, scope, written, body_w)

    def _make_body_proc(
        self, stmt: Foreach, scope: Scope, params: list[str]
    ) -> tuple[ProcBuilder, Scope]:
        proc = self.new_proc("body", params)
        child = Scope(self, proc, scope, boundary=True)
        body_scope = Scope(self, proc, child)
        if isinstance(stmt.iterable, RangeSpec):
            body_scope.declare(stmt.var, Slot(stmt.var, INT, "rtval", expr="$idx"))
        else:
            elem_t = stmt.iterable.type.element
            body_scope.declare(stmt.var, Slot(stmt.var, elem_t, "td", expr="$elem"))
            if stmt.index_var:
                body_scope.declare(
                    stmt.index_var, Slot(stmt.index_var, INT, "rtval", expr="$idx")
                )
        self.compile_block(stmt.body, body_scope)
        return proc, child

    def _foreach_range(self, stmt, scope, written, body_w) -> None:
        rng: RangeSpec = stmt.iterable
        lo = self.compile_expr(rng.lo, scope)
        hi = self.compile_expr(rng.hi, scope)
        step = (
            self.compile_expr(rng.step, scope)
            if rng.step is not None
            else CgVal(INT, "const", const=1)
        )
        body_proc, body_child = self._make_body_proc(stmt, scope, ["idx"])

        # The start proc takes the three bounds (values or TD ids to
        # retrieve) followed by pass-through captures for the body.
        start = self.new_proc("loop", ["p_lo", "p_hi", "p_step"])
        start_scope = Scope(self, start, scope, boundary=True)
        dep_tds: list[str] = []
        bound_args: list[str] = []
        for label, val in (("lo", lo), ("hi", hi), ("step", step)):
            value = self.spawn_value(val)
            if value is not None:
                start.emit("set %s $p_%s" % (label, label))
                bound_args.append(value)
            else:
                start.emit("set %s [ turbine::retrieve $p_%s ]" % (label, label))
                dep_tds.append(val.expr)
                bound_args.append(val.expr)
        start.emit(
            "set n [ expr { $hi >= $lo ? ( ( $hi - $lo ) / $step ) + 1 : 0 } ]"
        )
        arr_slots = {name: start_scope.resolve(name) for name in written}
        for name in written:
            w = body_w[name]
            start.emit(
                "turbine::write_refcount_incr %s [ expr { $n * %d } ]"
                % (arr_slots[name].expr, w)
            )
            start.emit("turbine::write_refcount_decr %s 1" % arr_slots[name].expr)
        body_args = " ".join(body_child.capture_args(start_scope))
        start.emit("for { set i $lo } { $i <= $hi } { incr i $step } {")
        start.emit(
            "    turbine::spawn CONTROL [ list %s $i%s ]"
            % (body_proc.name, (" " + body_args) if body_args else "")
        )
        start.emit("}")
        call_args = bound_args + start_scope.capture_args(scope)
        if dep_tds:
            scope.proc.emit(
                "turbine::rule [ list %s ] [ list %s %s ] LOCAL"
                % (" ".join(dep_tds), start.name, " ".join(call_args))
            )
        else:
            scope.proc.emit("%s %s" % (start.name, " ".join(call_args)))

    def _foreach_array(self, stmt, scope, written, body_w) -> None:
        arr = self.compile_expr(stmt.iterable, scope)
        body_proc, body_child = self._make_body_proc(stmt, scope, ["idx", "elem"])
        start = self.new_proc("loop", ["c"])
        start_scope = Scope(self, start, scope, boundary=True)
        start.emit("set subs [ turbine::enumerate $c ]")
        start.emit("set n [ llength $subs ]")
        arr_slots = {name: start_scope.resolve(name) for name in written}
        for name in written:
            w = body_w[name]
            start.emit(
                "turbine::write_refcount_incr %s [ expr { $n * %d } ]"
                % (arr_slots[name].expr, w)
            )
            start.emit("turbine::write_refcount_decr %s 1" % arr_slots[name].expr)
        body_args = " ".join(body_child.capture_args(start_scope))
        start.emit("foreach s $subs {")
        start.emit("    set m [ turbine::container_lookup $c $s ]")
        start.emit(
            "    turbine::spawn CONTROL [ list %s $s $m%s ]"
            % (body_proc.name, (" " + body_args) if body_args else "")
        )
        start.emit("}")
        args = " ".join([arr.expr, *start_scope.capture_args(scope)])
        scope.proc.emit(
            "turbine::rule [ list %s ] [ list %s %s ] LOCAL"
            % (arr.expr, start.name, args)
        )

    # -- expressions -----------------------------------------------------------

    def try_fold(self, expr: Expr, scope: Scope) -> CgVal | None:
        """Constant-fold an operator expression if possible (opt >= 1)."""
        if self.opt < 1:
            return None
        if isinstance(expr, UnOp):
            v = self.compile_expr_const(expr.operand, scope)
            if v is None:
                return None
            if expr.op == "-":
                return CgVal(expr.type, "const", const=-v.const)
            return CgVal(BOOLEAN, "const", const=not v.const)
        if isinstance(expr, BinOp):
            a = self.compile_expr_const(expr.left, scope)
            b = self.compile_expr_const(expr.right, scope)
            if a is None or b is None:
                return None
            return CgVal(expr.type, "const", const=fold_binop(expr.op, a.const, b.const, expr.type))
        return None

    def compile_expr_const(self, expr: Expr, scope: Scope) -> CgVal | None:
        """Compile only if the result is a compile-time constant."""
        if isinstance(expr, Literal):
            return CgVal(expr.type, "const", const=expr.value)
        if isinstance(expr, VarRef):
            slot = scope.resolve(expr.name)
            if slot.kind == "const":
                return CgVal(slot.type, "const", const=slot.const)
            return None
        if isinstance(expr, (BinOp, UnOp)):
            return self.try_fold(expr, scope)
        return None

    def compile_expr(self, expr: Expr, scope: Scope) -> CgVal:
        if isinstance(expr, Literal):
            return CgVal(expr.type, "const", const=expr.value)
        if isinstance(expr, VarRef):
            slot = scope.resolve(expr.name)
            if slot.kind == "const":
                return CgVal(slot.type, "const", const=slot.const, slot=slot)
            if slot.kind == "rtval":
                return CgVal(slot.type, "rtval", expr=slot.expr, slot=slot)
            if slot.kind == "td" and slot.value_expr is not None:
                # the future is materialized, but the spawn-time value
                # is still known — prefer it where a value suffices
                return CgVal(slot.type, "rtval", expr=slot.value_expr, slot=slot)
            td = self.ensure_td_slot(scope, slot)
            return CgVal(slot.type, "td", expr=td, slot=slot)
        if isinstance(expr, (BinOp, UnOp)):
            folded = self.try_fold(expr, scope)
            if folded is not None:
                return folded
            if self.opt >= 2:
                rt = self.try_rtval(expr, scope)
                if rt is not None:
                    return rt
            out = self.alloc(scope.proc, expr.type)
            self.emit_operator(expr, out, scope)
            return CgVal(expr.type, "td", expr=out)
        if isinstance(expr, Subscript):
            out = self.alloc(scope.proc, expr.type)
            self.emit_subscript_into(expr, out, scope)
            return CgVal(expr.type, "td", expr=out)
        if isinstance(expr, Call):
            sig = self.funcs[expr.func]
            out = self.alloc(scope.proc, expr.type)
            self.emit_call(sig, [out], expr.args, scope)
            return CgVal(expr.type, "td", expr=out)
        raise SwiftTypeError("codegen: cannot compile expression %r" % expr)

    def try_rtval(self, expr: Expr, scope: Scope) -> CgVal | None:
        """Spawn-time arithmetic over known values (opt >= 2)."""
        text = self._rtval_text(expr, scope)
        if text is None:
            return None
        tmp = scope.proc.temp()
        scope.proc.emit("set %s [ expr { %s } ]" % (tmp, text))
        return CgVal(expr.type, "rtval", expr="$" + tmp)

    def _rtval_text(self, expr: Expr, scope: Scope) -> str | None:
        if isinstance(expr, Literal):
            if expr.type == STRING:
                return None
            return quote_const(expr.value, expr.type)
        if isinstance(expr, VarRef):
            slot = scope.resolve(expr.name)
            if slot.kind == "const" and slot.type != STRING:
                return quote_const(slot.const, slot.type)
            if slot.kind == "rtval":
                return slot.expr
            if slot.kind == "td" and slot.value_expr is not None:
                return slot.value_expr
            return None
        if isinstance(expr, UnOp):
            inner = self._rtval_text(expr.operand, scope)
            if inner is None:
                return None
            op = "!" if expr.op == "!" else "-"
            return "%s ( %s )" % (op, inner)
        if isinstance(expr, BinOp):
            if expr.type == STRING or expr.op in ("==", "!=") and expr.left.type == STRING:
                return None
            a = self._rtval_text(expr.left, scope)
            b = self._rtval_text(expr.right, scope)
            if a is None or b is None:
                return None
            return "( %s ) %s ( %s )" % (a, expr.op, b)
        return None

    def compile_expr_into(self, expr: Expr, dst_td: str, t: SwiftType, scope: Scope) -> None:
        """Compile an expression, writing its value into an existing TD."""
        if isinstance(expr, (BinOp, UnOp)):
            folded = self.try_fold(expr, scope)
            if folded is not None:
                scope.proc.emit(
                    "%s %s %s"
                    % (STORE_CMD[t.base], dst_td, quote_const(folded.const, t))
                )
                return
            if self.opt >= 2:
                rt = self.try_rtval(expr, scope)
                if rt is not None:
                    scope.proc.emit(
                        "%s %s %s" % (STORE_CMD[t.base], dst_td, rt.expr)
                    )
                    return
            self.emit_operator(expr, dst_td, scope)
            return
        if isinstance(expr, Call):
            sig = self.funcs[expr.func]
            self.emit_call(sig, [dst_td], expr.args, scope)
            return
        if isinstance(expr, Subscript):
            self.emit_subscript_into(expr, dst_td, scope)
            return
        val = self.compile_expr(expr, scope)
        if val.kind == "td":
            scope.proc.emit("turbine::copy_td %s %s" % (dst_td, val.expr))
        else:
            scope.proc.emit(
                "%s %s %s" % (STORE_CMD[t.base], dst_td, self.spawn_value(val))
            )

    def alloc_ref(self, proc: ProcBuilder) -> str:
        tmp = proc.temp()
        proc.emit("set %s [ turbine::allocate ref ]" % tmp)
        return "$" + tmp

    def emit_subscript_into(self, expr: Subscript, dst_td: str, scope: Scope) -> None:
        arr = self.compile_expr(expr.array, scope)
        idx = self.compile_expr(expr.index, scope)
        ref = self.alloc_ref(scope.proc)
        idx_value = self.spawn_value(idx)
        if idx_value is not None:
            scope.proc.emit(
                "turbine::container_reference %s %s %s" % (arr.expr, idx_value, ref)
            )
        else:
            scope.proc.emit(
                "turbine::cref_when_ready %s %s %s" % (arr.expr, idx.expr, ref)
            )
        scope.proc.emit("turbine::deref_store %s %s" % (dst_td, ref))

    # -- operators ----------------------------------------------------------------

    def emit_operator(self, expr: Expr, out_td: str, scope: Scope) -> None:
        if isinstance(expr, UnOp):
            a = self.ensure_td(scope, self.compile_expr(expr.operand, scope))
            if expr.op == "!":
                kind = "not"
            elif expr.operand.type == FLOAT:
                kind = "neg_float"
            else:
                kind = "neg_integer"
            scope.proc.emit("turbine::unop %s %s %s" % (kind, out_td, a))
            return
        assert isinstance(expr, BinOp)
        lt, rt = expr.left.type, expr.right.type
        a = self.ensure_td(scope, self.compile_expr(expr.left, scope))
        b = self.ensure_td(scope, self.compile_expr(expr.right, scope))
        op = expr.op
        if op == "+" and lt == STRING:
            scope.proc.emit("turbine::strcat_rule %s %s %s" % (out_td, a, b))
            return
        if op in ("+", "-", "*", "/", "%", "**"):
            fam = "binop_float" if expr.type == FLOAT else "binop_integer"
            scope.proc.emit("turbine::%s {%s} %s %s %s" % (fam, op, out_td, a, b))
            return
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lt == STRING:
                str_op = {"==": "eq", "!=": "ne"}.get(op, op)
                scope.proc.emit(
                    "turbine::binop_compare {%s} %s %s %s" % (str_op, out_td, a, b)
                )
            else:
                scope.proc.emit(
                    "turbine::binop_logic {%s} %s %s %s" % (op, out_td, a, b)
                )
            return
        if op in ("&&", "||"):
            scope.proc.emit(
                "turbine::binop_logic {%s} %s %s %s" % (op, out_td, a, b)
            )
            return
        raise SwiftTypeError("codegen: unknown operator %r" % op)

    # -- calls ---------------------------------------------------------------------

    def emit_call(
        self,
        sig: FuncSig,
        out_tds: list[str],
        args: list[Expr],
        scope: Scope,
        priority: str | None = None,
        target: str | None = None,
    ) -> None:
        if sig.kind == "intrinsic":
            self.emit_intrinsic(sig, out_tds, args, scope)
            return
        arg_tds = [
            self.ensure_td(scope, self.compile_expr(a, scope)) for a in args
        ]
        call_args = [*out_tds, *arg_tds]
        if priority is not None or target is not None:
            if sig.kind == "composite":
                raise SwiftTypeError(
                    "@prio/@target apply to leaf tasks (extension/app "
                    "functions), not composite function %r" % sig.name
                )
            call_args.append(priority if priority is not None else "0")
            if target is not None:
                call_args.append(target)
        scope.proc.emit(
            "swift:f:%s %s" % (sig.name, " ".join(call_args))
        )

    def emit_intrinsic(
        self, sig: FuncSig, out_tds: list[str], args: list[Expr], scope: Scope
    ) -> None:
        name = sig.name
        proc = scope.proc

        def tds(exprs: list[Expr]) -> list[str]:
            return [self.ensure_td(scope, self.compile_expr(e, scope)) for e in exprs]

        if name == "printf":
            fmt = self.compile_expr_const(args[0], scope)
            if fmt is None or not isinstance(fmt.const, str):
                raise SwiftTypeError("printf format must be a string literal", args[0].line)
            fmt_text = fmt.const.replace("%i", "%d")
            proc.emit(
                "turbine::printf_rule %s %s"
                % (format_element(fmt_text), " ".join(tds(args[1:])))
            )
            return
        if name == "trace":
            proc.emit("turbine::trace_rule %s" % " ".join(tds(args)))
            return
        if name == "assert":
            cond, msg = tds(args)
            proc.emit("turbine::assert_rule %s %s" % (cond, msg))
            return
        if name == "strcat":
            proc.emit(
                "turbine::strcat_rule %s %s" % (out_tds[0], " ".join(tds(args)))
            )
            return
        if name == "sprintf":
            fmt = self.compile_expr_const(args[0], scope)
            if fmt is None or not isinstance(fmt.const, str):
                raise SwiftTypeError("sprintf format must be a string literal", args[0].line)
            fmt_text = fmt.const.replace("%i", "%d")
            proc.emit(
                "turbine::sprintf_rule %s %s %s"
                % (out_tds[0], format_element(fmt_text), " ".join(tds(args[1:])))
            )
            return
        if name in ("substring", "find", "replace_all", "toupper", "tolower", "trim"):
            proc.emit(
                "turbine::strop_rule %s %s %s"
                % (name, out_tds[0], " ".join(tds(args)))
            )
            return
        if name == "split":
            proc.emit(
                "turbine::split_rule %s %s" % (out_tds[0], " ".join(tds(args)))
            )
            return
        if name == "join":
            proc.emit(
                "turbine::join_rule %s %s" % (out_tds[0], " ".join(tds(args)))
            )
            return
        if name in ("argv", "argv_int"):
            if len(args) not in (1, 2):
                raise SwiftTypeError(
                    "%s() takes a name and optional default" % name,
                    args[0].line if args else 0,
                )
            kind = "int" if name == "argv_int" else "string"
            proc.emit(
                "turbine::argv_rule %s %s %s"
                % (kind, out_tds[0], " ".join(tds(args)))
            )
            return
        if name in ("toint", "tofloat", "fromint", "fromfloat", "parseint", "strlen"):
            (a,) = tds(args)
            proc.emit("turbine::convert_rule %s %s %s" % (name, out_tds[0], a))
            return
        if name in ("sqrt", "exp", "log", "log10", "sin", "cos", "tan", "floor", "ceil"):
            (a,) = tds(args)
            proc.emit("turbine::mathfn_rule %s %s %s" % (name, out_tds[0], a))
            return
        if name == "size":
            (a,) = tds(args)
            proc.emit("turbine::container_size_rule %s %s" % (out_tds[0], a))
            return
        if name in (
            "sum_integer",
            "sum_float",
            "max_integer",
            "min_integer",
            "max_float",
            "min_float",
        ):
            (a,) = tds(args)
            proc.emit(
                "turbine::container_reduce_rule %s %s %s" % (name, out_tds[0], a)
            )
            return
        if name == "blob_from_string":
            (a,) = tds(args)
            proc.emit("turbine::blob_from_string_rule %s %s" % (out_tds[0], a))
            return
        if name == "string_from_blob":
            (a,) = tds(args)
            proc.emit("turbine::string_from_blob_rule %s %s" % (out_tds[0], a))
            return
        if name == "blob_size":
            (a,) = tds(args)
            proc.emit("turbine::blob_size_rule %s %s" % (out_tds[0], a))
            return
        raise SwiftTypeError("codegen: unimplemented intrinsic %r" % name)

    # -- function definitions --------------------------------------------------------

    def gen_composite(self, fn: FuncDef) -> None:
        params = ["o_" + p.name for p in fn.outputs] + [
            "i_" + p.name for p in fn.inputs
        ]
        proc = ProcBuilder("swift:f:" + fn.name, params)
        self.procs.append(proc)
        scope = Scope(self, proc)
        for p, pname in zip(fn.outputs + fn.inputs, params):
            scope.declare(p.name, Slot(p.name, p.swift_type, "td", expr="$" + pname))
        # rebalance output-array slots: caller gave 1 per output array
        for p, pname in zip(fn.outputs, params):
            if p.swift_type.is_array:
                w = writer_count(fn.body, p.name)
                self.rebalance(proc, "$" + pname, w - 1)
        self.compile_block(fn.body, Scope(self, proc, scope))

    def gen_extension(self, ext: ExtFuncDef) -> None:
        if ext.package:
            self.packages.add(ext.package)
        params = ["o_" + p.name for p in ext.outputs] + [
            "i_" + p.name for p in ext.inputs
        ]
        # dispatch proc: one WORK rule waiting on all inputs; the
        # trailing default parameter carries an optional @prio value
        proc = ProcBuilder("swift:f:" + ext.name, params + ["{prio 0}", "{target -1}"])
        self.procs.append(proc)
        in_tds = " ".join("$i_" + p.name for p in ext.inputs)
        all_args = " ".join("$" + p for p in params)
        task = "task:" + ext.name
        if ext.inputs:
            proc.emit(
                "turbine::rule [ list %s ] [ list %s %s ] WORK "
                "priority $prio target $target" % (in_tds, task, all_args)
            )
        else:
            proc.emit(
                "turbine::spawn WORK [ list %s %s ] $prio $target"
                % (task, all_args)
            )
        # leaf task proc: retrieve inputs, run the template, store outputs
        tproc = ProcBuilder(task, list(params))
        self.procs.append(tproc)
        for p in ext.inputs:
            if p.swift_type.is_array:
                # arrays pass as container ids; the template uses
                # turbine::container_* / enumerate on them directly
                tproc.emit("set %s_val $i_%s" % (p.name, p.name))
            else:
                tproc.emit(
                    "set %s_val [ turbine::retrieve $i_%s ]" % (p.name, p.name)
                )
        body = ext.template
        for p in ext.inputs:
            body = body.replace("<<%s>>" % p.name, "${%s_val}" % p.name)
        for p in ext.outputs:
            body = body.replace("<<%s>>" % p.name, "%s_val" % p.name)
        # Emit the template verbatim: leading whitespace may be
        # significant inside multi-line embedded-language fragments.
        tproc.lines.append(body)
        for p in ext.outputs:
            if p.swift_type == VOID:
                tproc.emit("turbine::store_void $o_%s" % p.name)
            else:
                tproc.emit(
                    "%s $o_%s $%s_val"
                    % (STORE_CMD[p.swift_type.base], p.name, p.name)
                )

    def gen_app(self, app: AppDef) -> None:
        self.packages.add("shell")
        params = ["o_" + p.name for p in app.outputs] + [
            "i_" + p.name for p in app.inputs
        ]
        proc = ProcBuilder("swift:f:" + app.name, params + ["{prio 0}", "{target -1}"])
        self.procs.append(proc)
        in_tds = " ".join("$i_" + p.name for p in app.inputs)
        all_args = " ".join("$" + p for p in params)
        task = "task:" + app.name
        if app.inputs:
            proc.emit(
                "turbine::rule [ list %s ] [ list %s %s ] WORK "
                "priority $prio target $target" % (in_tds, task, all_args)
            )
        else:
            proc.emit(
                "turbine::spawn WORK [ list %s %s ] $prio $target"
                % (task, all_args)
            )
        tproc = ProcBuilder(task, list(params))
        self.procs.append(tproc)
        tproc.emit("set argv [ list ]")
        for word in app.command:
            if isinstance(word, Literal):
                tproc.emit(
                    "lappend argv %s" % format_element(str(word.value))
                )
            elif isinstance(word, VarRef):
                tproc.emit("lappend argv [ turbine::retrieve $i_%s ]" % word.name)
            else:
                raise SwiftTypeError(
                    "app command words must be literals or parameters", word.line
                )
        if app.outputs and app.outputs[0].swift_type == STRING:
            tproc.emit("set out [ shell::exec {*}$argv ]")
            tproc.emit("turbine::store_string $o_%s $out" % app.outputs[0].name)
        else:
            tproc.emit("shell::exec {*}$argv")
            if app.outputs:
                tproc.emit("turbine::store_void $o_%s" % app.outputs[0].name)


def fold_binop(op: str, a: Any, b: Any, t: SwiftType) -> Any:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise SwiftTypeError("constant division by zero")
        if t == INT:
            return a // b
        return a / b
    if op == "%":
        if b == 0:
            raise SwiftTypeError("constant modulo by zero")
        if isinstance(a, int) and isinstance(b, int):
            return a % b
        return math.fmod(a, b)
    if op == "**":
        return a**b
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    if op == "&&":
        return bool(a) and bool(b)
    if op == "||":
        return bool(a) or bool(b)
    raise SwiftTypeError("cannot fold operator %r" % op)
