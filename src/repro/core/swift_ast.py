"""AST node definitions for the Swift language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .types import SwiftType


@dataclass
class Node:
    line: int = 0


# --- expressions ------------------------------------------------------------


@dataclass
class Expr(Node):
    type: Optional[SwiftType] = None  # set by the checker


@dataclass
class Literal(Expr):
    value: Any = None  # int | float | str | bool


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class UnOp(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Call(Expr):
    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Subscript(Expr):
    array: Expr = None
    index: Expr = None


# --- lvalues -----------------------------------------------------------------


@dataclass
class LValue(Node):
    name: str = ""
    index: Expr | None = None  # non-None for a[i] = ...
    type: Optional[SwiftType] = None


# --- statements -----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Decl(Stmt):
    swift_type: SwiftType = None
    name: str = ""
    init: Expr | None = None
    priority: Expr | None = None  # @prio= annotation (init call only)
    target: Expr | None = None  # @target= annotation (init call only)


@dataclass
class Assign(Stmt):
    targets: list[LValue] = field(default_factory=list)
    exprs: list[Expr] = field(default_factory=list)
    priority: Expr | None = None  # @prio= annotation
    target: Expr | None = None  # @target= annotation


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None
    priority: Expr | None = None  # @prio= annotation
    target: Expr | None = None  # @target= annotation


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Block = None
    els: Block | None = None


@dataclass
class RangeSpec(Node):
    lo: Expr = None
    hi: Expr = None
    step: Expr | None = None


@dataclass
class Foreach(Stmt):
    var: str = ""  # element variable
    index_var: str | None = None  # optional index variable
    iterable: Expr | RangeSpec = None
    body: Block = None


@dataclass
class Wait(Stmt):
    exprs: list[Expr] = field(default_factory=list)
    body: Block = None
    deep: bool = False


# --- definitions ---------------------------------------------------------------------


@dataclass
class Param(Node):
    swift_type: SwiftType = None
    name: str = ""


@dataclass
class FuncDef(Node):
    name: str = ""
    outputs: list[Param] = field(default_factory=list)
    inputs: list[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class ExtFuncDef(Node):
    """Tcl-template extension function (the paper's §III-A syntax)."""

    name: str = ""
    outputs: list[Param] = field(default_factory=list)
    inputs: list[Param] = field(default_factory=list)
    package: str = ""
    version: str = "1.0"
    template: str = ""


@dataclass
class AppDef(Node):
    """Shell app function: body is a command line of string fragments."""

    name: str = ""
    outputs: list[Param] = field(default_factory=list)
    inputs: list[Param] = field(default_factory=list)
    command: list[Expr] = field(default_factory=list)


@dataclass
class Program(Node):
    funcs: list[FuncDef] = field(default_factory=list)
    ext_funcs: list[ExtFuncDef] = field(default_factory=list)
    app_funcs: list[AppDef] = field(default_factory=list)
    main: Block = None
