"""The Swift language frontend and STC compiler (the paper's core).

Pipeline: :func:`parse` -> :func:`analyze` -> :class:`Codegen` ->
Turbine Tcl, executed by :mod:`repro.turbine`.
"""

from .codegen import Codegen, CompiledProgram
from .compiler import CompileStats, compile_swift
from .errors import SwiftError, SwiftNameError, SwiftSyntaxError, SwiftTypeError
from .parser import parse
from .semantics import FuncSig, analyze
from .types import BLOB, BOOLEAN, FLOAT, INT, STRING, VOID, SwiftType

__all__ = [
    "compile_swift",
    "CompileStats",
    "CompiledProgram",
    "Codegen",
    "parse",
    "analyze",
    "FuncSig",
    "SwiftError",
    "SwiftSyntaxError",
    "SwiftTypeError",
    "SwiftNameError",
    "SwiftType",
    "INT",
    "FLOAT",
    "STRING",
    "BOOLEAN",
    "BLOB",
    "VOID",
]
