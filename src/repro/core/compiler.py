"""The STC compiler driver: Swift source -> Turbine Tcl program."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from .codegen import Codegen, CompiledProgram
from .parser import parse
from .semantics import analyze


@dataclass
class CompileStats:
    parse_time: float
    check_time: float
    codegen_time: float
    n_procs: int
    n_lines: int


def compile_swift(
    source: str,
    opt: int = 1,
    return_stats: bool = False,
    tracer: Any | None = None,
) -> CompiledProgram | tuple[CompiledProgram, CompileStats]:
    """Compile Swift source text at the given optimization level.

    Levels: 0 = straight translation; 1 = constant folding and
    compile-time branch elimination; 2 = additionally scalar constant
    propagation and spawn-time value arithmetic.

    ``tracer`` (a :class:`repro.obs.Tracer`) records per-phase spans in
    the ``compile`` category.
    """
    t0 = time.perf_counter()
    program = parse(source)
    t1 = time.perf_counter()
    funcs = analyze(program)
    t2 = time.perf_counter()
    compiled = Codegen(program, funcs, opt=opt).generate()
    t3 = time.perf_counter()
    if tracer is not None:
        from ..obs import RANK_DRIVER

        tracer.complete(RANK_DRIVER, "compile", "parse", t0, t1)
        tracer.complete(RANK_DRIVER, "compile", "check", t1, t2)
        tracer.complete(
            RANK_DRIVER,
            "compile",
            "codegen",
            t2,
            t3,
            {"opt": opt, "procs": compiled.n_procs, "lines": compiled.n_lines},
        )
    if not return_stats:
        return compiled
    stats = CompileStats(
        parse_time=t1 - t0,
        check_time=t2 - t1,
        codegen_time=t3 - t2,
        n_procs=compiled.n_procs,
        n_lines=compiled.n_lines,
    )
    return compiled, stats
