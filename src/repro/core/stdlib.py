"""Builtin Swift function signatures.

Two kinds: *intrinsics* handled specially by the code generator
(printf, trace, size, reductions, conversions, math), and *predefined
extension functions* — the interlanguage builtins of the paper
(python, r, system) which are ordinary Tcl-template extension
functions shipped with the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .swift_ast import ExtFuncDef, Param
from .types import BLOB, BOOLEAN, FLOAT, INT, STRING, VOID, SwiftType


@dataclass(frozen=True)
class Intrinsic:
    name: str
    ins: tuple[SwiftType, ...]
    outs: tuple[SwiftType, ...]
    variadic: bool = False  # extra scalar args allowed after fixed ins
    kind: str = "intrinsic"


INT_ARRAY = INT.array_of()
FLOAT_ARRAY = FLOAT.array_of()
STRING_ARRAY = STRING.array_of()

INTRINSICS: dict[str, Intrinsic] = {}


def _add(name, ins, outs, variadic=False):
    INTRINSICS[name] = Intrinsic(name, tuple(ins), tuple(outs), variadic)


# I/O
_add("printf", (STRING,), (), variadic=True)
_add("trace", (), (), variadic=True)
_add("assert", (BOOLEAN, STRING), ())

# strings
_add("strcat", (), (STRING,), variadic=True)
_add("sprintf", (STRING,), (STRING,), variadic=True)
_add("strlen", (STRING,), (INT,))
_add("substring", (STRING, INT, INT), (STRING,))  # (s, start, length)
_add("find", (STRING, STRING), (INT,))  # index of needle in haystack, -1 if absent
_add("replace_all", (STRING, STRING, STRING), (STRING,))
_add("toupper", (STRING,), (STRING,))
_add("tolower", (STRING,), (STRING,))
_add("trim", (STRING,), (STRING,))
_add("split", (STRING, STRING), (STRING.array_of(),))
_add("join", (STRING.array_of(), STRING), (STRING,))

# program arguments (swift_run(..., args={...}))
_add("argv", (STRING,), (STRING,), variadic=True)  # argv(name ?default?)
_add("argv_int", (STRING,), (INT,), variadic=True)

# conversions
_add("toint", (FLOAT,), (INT,))
_add("tofloat", (INT,), (FLOAT,))
_add("fromint", (INT,), (STRING,))
_add("fromfloat", (FLOAT,), (STRING,))
_add("parseint", (STRING,), (INT,))

# float math
for _fn in ("sqrt", "exp", "log", "log10", "sin", "cos", "tan", "floor", "ceil"):
    _add(_fn, (FLOAT,), (FLOAT,))

# arrays
_add("size", (), (INT,))  # polymorphic over arrays; checker special-cases
_add("sum_integer", (INT_ARRAY,), (INT,))
_add("sum_float", (FLOAT_ARRAY,), (FLOAT,))
_add("max_integer", (INT_ARRAY,), (INT,))
_add("min_integer", (INT_ARRAY,), (INT,))
_add("max_float", (FLOAT_ARRAY,), (FLOAT,))
_add("min_float", (FLOAT_ARRAY,), (FLOAT,))

# blobs
_add("blob_from_string", (STRING,), (BLOB,))
_add("string_from_blob", (BLOB,), (STRING,))
_add("blob_size", (BLOB,), (INT,))


def predefined_extensions() -> list[ExtFuncDef]:
    """The interlanguage builtins, expressed as extension functions."""

    def p(t: SwiftType, name: str) -> Param:
        return Param(swift_type=t, name=name)

    return [
        # python(code, expr): evaluate code in the embedded Python, then
        # the expression; result returned as a string (paper §III-C).
        ExtFuncDef(
            name="python",
            outputs=[p(STRING, "out")],
            inputs=[p(STRING, "code"), p(STRING, "expr")],
            package="python",
            version="1.0",
            template="set <<out>> [ python::eval <<code>> <<expr>> ]",
        ),
        ExtFuncDef(
            name="python_persist",
            outputs=[p(STRING, "out")],
            inputs=[p(STRING, "code"), p(STRING, "expr")],
            package="python",
            version="1.0",
            template="set <<out>> [ python::persist <<code>> <<expr>> ]",
        ),
        ExtFuncDef(
            name="r",
            outputs=[p(STRING, "out")],
            inputs=[p(STRING, "code"), p(STRING, "expr")],
            package="r",
            version="1.0",
            template="set <<out>> [ r::eval <<code>> <<expr>> ]",
        ),
        # system(command-line) -> stdout, via the shell interface
        ExtFuncDef(
            name="system",
            outputs=[p(STRING, "out")],
            inputs=[p(STRING, "command")],
            package="shell",
            version="1.0",
            template="set <<out>> [ shell::exec_line <<command>> ]",
        ),
    ]
