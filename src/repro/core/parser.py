"""Recursive-descent parser for the Swift language."""

from __future__ import annotations

from .errors import SwiftSyntaxError
from .lexer import Token, tokenize
from .swift_ast import (
    AppDef,
    Assign,
    BinOp,
    Block,
    Call,
    Decl,
    Expr,
    ExprStmt,
    ExtFuncDef,
    Foreach,
    FuncDef,
    If,
    Literal,
    LValue,
    Param,
    Program,
    RangeSpec,
    Subscript,
    UnOp,
    VarRef,
    Wait,
)
from .types import SCALARS, parse_base


class Parser:
    def __init__(self, toks: list[Token]):
        self.toks = toks
        self.pos = 0

    # -- helpers ---------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect_op(self, op: str) -> Token:
        tok = self.next()
        if not tok.is_op(op):
            raise SwiftSyntaxError(
                "expected %r but found %r" % (op, tok.text or "<eof>"), tok.line
            )
        return tok

    def expect_id(self) -> Token:
        tok = self.next()
        if tok.kind != "id":
            raise SwiftSyntaxError(
                "expected identifier, found %r" % (tok.text or "<eof>"), tok.line
            )
        return tok

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.next()
            return True
        return False

    # -- program -----------------------------------------------------------

    def parse_program(self) -> Program:
        prog = Program(main=Block(stmts=[]))
        while self.peek().kind != "eof":
            tok = self.peek()
            if tok.is_kw("import") or tok.is_kw("pragma"):
                # accepted and ignored (compat with Swift sources)
                while not self.peek().is_op(";") and self.peek().kind != "eof":
                    self.next()
                self.accept_op(";")
                continue
            if tok.is_kw("app"):
                prog.app_funcs.append(self.app_def())
                continue
            if tok.is_op("(") and self._looks_like_funcdef():
                self.func_or_ext(prog)
                continue
            if tok.is_kw("main"):
                self.next()
                block = self.block()
                prog.main.stmts.extend(block.stmts)
                continue
            prog.main.stmts.append(self.statement())
        return prog

    def _looks_like_funcdef(self) -> bool:
        """Disambiguate '(int o) f(...)' from parenthesized expressions."""
        # A funcdef output list starts with '(' TYPE or '()'.
        nxt = self.peek(1)
        return (nxt.kind == "kw" and nxt.text in SCALARS) or nxt.is_op(")")

    # -- definitions ---------------------------------------------------------

    def param_list(self, closer: str = ")") -> list[Param]:
        params: list[Param] = []
        if self.accept_op(closer):
            return params
        while True:
            tok = self.next()
            if tok.kind != "kw" or tok.text not in SCALARS:
                raise SwiftSyntaxError("expected a type, found %r" % tok.text, tok.line)
            ptype = parse_base(tok.text)
            name = self.expect_id()
            if self.accept_op("["):
                self.expect_op("]")
                ptype = ptype.array_of()
            params.append(Param(line=tok.line, swift_type=ptype, name=name.text))
            if self.accept_op(","):
                continue
            self.expect_op(closer)
            return params

    def func_or_ext(self, prog: Program) -> None:
        start = self.expect_op("(")
        outputs = self.param_list()
        name = self.expect_id()
        self.expect_op("(")
        inputs = self.param_list()
        tok = self.peek()
        if tok.is_op("{"):
            body = self.block()
            prog.funcs.append(
                FuncDef(
                    line=start.line,
                    name=name.text,
                    outputs=outputs,
                    inputs=inputs,
                    body=body,
                )
            )
            return
        # extension function: "pkg" "version" [ "template..." ];
        pkg = self.next()
        if pkg.kind != "string":
            raise SwiftSyntaxError(
                "expected function body or package string", pkg.line
            )
        ver = self.next()
        if ver.kind != "string":
            raise SwiftSyntaxError("expected package version string", ver.line)
        self.expect_op("[")
        tmpl = self.next()
        if tmpl.kind != "string":
            raise SwiftSyntaxError("expected Tcl template string", tmpl.line)
        self.expect_op("]")
        self.expect_op(";")
        prog.ext_funcs.append(
            ExtFuncDef(
                line=start.line,
                name=name.text,
                outputs=outputs,
                inputs=inputs,
                package=pkg.text,
                version=ver.text,
                template=tmpl.text,
            )
        )

    def app_def(self) -> AppDef:
        start = self.next()  # 'app'
        self.expect_op("(")
        outputs = self.param_list()
        name = self.expect_id()
        self.expect_op("(")
        inputs = self.param_list()
        self.expect_op("{")
        command: list[Expr] = []
        while not self.peek().is_op("}"):
            command.append(self.primary())
        self.expect_op("}")
        return AppDef(
            line=start.line,
            name=name.text,
            outputs=outputs,
            inputs=inputs,
            command=command,
        )

    # -- statements ---------------------------------------------------------------

    def block(self) -> Block:
        start = self.expect_op("{")
        stmts = []
        while not self.peek().is_op("}"):
            if self.peek().kind == "eof":
                raise SwiftSyntaxError("unterminated block", start.line)
            stmts.append(self.statement())
        self.next()
        return Block(line=start.line, stmts=stmts)

    def statement(self):
        tok = self.peek()
        if tok.is_op("@"):
            return self.annotated_statement()
        if tok.kind == "kw" and tok.text in SCALARS:
            return self.declaration()
        if tok.is_kw("if"):
            return self.if_stmt()
        if tok.is_kw("foreach"):
            return self.foreach_stmt()
        if tok.is_kw("wait"):
            return self.wait_stmt()
        if tok.is_op("{"):
            return self.block()
        return self.assign_or_call()

    def declaration(self):
        tok = self.next()
        base = parse_base(tok.text)
        name = self.expect_id()
        swift_type = base
        if self.accept_op("["):
            self.expect_op("]")
            swift_type = base.array_of()
        init = None
        if self.accept_op("="):
            init = self.expr()
        self.expect_op(";")
        return Decl(line=tok.line, swift_type=swift_type, name=name.text, init=init)

    def if_stmt(self) -> If:
        tok = self.next()
        self.expect_op("(")
        cond = self.expr()
        self.expect_op(")")
        then = self.block()
        els = None
        if self.peek().is_kw("else"):
            self.next()
            if self.peek().is_kw("if"):
                els = Block(stmts=[self.if_stmt()])
            else:
                els = self.block()
        return If(line=tok.line, cond=cond, then=then, els=els)

    def foreach_stmt(self) -> Foreach:
        tok = self.next()
        var = self.expect_id().text
        index_var = None
        if self.accept_op(","):
            index_var = self.expect_id().text
        in_tok = self.next()
        if not in_tok.is_kw("in"):
            raise SwiftSyntaxError("expected 'in' in foreach", in_tok.line)
        if self.peek().is_op("["):
            self.next()
            lo = self.expr()
            self.expect_op(":")
            hi = self.expr()
            step = None
            if self.accept_op(":"):
                step = self.expr()
            self.expect_op("]")
            iterable = RangeSpec(line=tok.line, lo=lo, hi=hi, step=step)
        else:
            iterable = self.expr()
        body = self.block()
        return Foreach(
            line=tok.line,
            var=var,
            index_var=index_var,
            iterable=iterable,
            body=body,
        )

    def wait_stmt(self) -> Wait:
        tok = self.next()
        deep = False
        if self.peek().kind == "id" and self.peek().text == "deep":
            self.next()
            deep = True
        self.expect_op("(")
        exprs = [self.expr()]
        while self.accept_op(","):
            exprs.append(self.expr())
        self.expect_op(")")
        body = self.block()
        return Wait(line=tok.line, exprs=exprs, body=body, deep=deep)

    def annotated_statement(self):
        """@prio=<expr> and/or @target=<expr> before a leaf-call statement."""
        annotations = {}
        while self.peek().is_op("@"):
            at = self.next()  # '@'
            name = self.expect_id()
            if name.text not in ("prio", "target"):
                raise SwiftSyntaxError(
                    "unknown annotation @%s (supported: @prio, @target)"
                    % name.text,
                    at.line,
                )
            if name.text in annotations:
                raise SwiftSyntaxError(
                    "duplicate annotation @%s" % name.text, at.line
                )
            self.expect_op("=")
            annotations[name.text] = self.unary()
        nxt = self.peek()
        if nxt.kind == "kw" and nxt.text in SCALARS:
            stmt = self.declaration()
        else:
            stmt = self.assign_or_call()
        stmt.priority = annotations.get("prio")
        stmt.target = annotations.get("target")
        return stmt

    def assign_or_call(self):
        tok = self.peek()
        expr = self.expr()
        if self.peek().is_op("=") or self.peek().is_op(","):
            targets = [self._to_lvalue(expr)]
            while self.accept_op(","):
                targets.append(self._to_lvalue(self.expr()))
            self.expect_op("=")
            exprs = [self.expr()]
            while self.accept_op(","):
                exprs.append(self.expr())
            self.expect_op(";")
            return Assign(line=tok.line, targets=targets, exprs=exprs)
        self.expect_op(";")
        if not isinstance(expr, Call):
            raise SwiftSyntaxError(
                "expression statement must be a function call", tok.line
            )
        return ExprStmt(line=tok.line, expr=expr)

    def _to_lvalue(self, expr: Expr) -> LValue:
        if isinstance(expr, VarRef):
            return LValue(line=expr.line, name=expr.name)
        if isinstance(expr, Subscript) and isinstance(expr.array, VarRef):
            return LValue(line=expr.line, name=expr.array.name, index=expr.index)
        raise SwiftSyntaxError("invalid assignment target", expr.line)

    # -- expressions ------------------------------------------------------------------

    def expr(self) -> Expr:
        return self.or_expr()

    def _binlevel(self, ops: tuple[str, ...], sub) -> Expr:
        node = sub()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ops:
                self.next()
                node = BinOp(line=tok.line, op=tok.text, left=node, right=sub())
            else:
                return node

    def or_expr(self):
        return self._binlevel(("||",), self.and_expr)

    def and_expr(self):
        return self._binlevel(("&&",), self.equality)

    def equality(self):
        return self._binlevel(("==", "!="), self.relational)

    def relational(self):
        return self._binlevel(("<", ">", "<=", ">="), self.additive)

    def additive(self):
        return self._binlevel(("+", "-"), self.multiplicative)

    def multiplicative(self):
        return self._binlevel(("*", "/", "%"), self.power)

    def power(self) -> Expr:
        base = self.unary()
        tok = self.peek()
        if tok.is_op("**"):
            self.next()
            return BinOp(line=tok.line, op="**", left=base, right=self.power())
        return base

    def unary(self) -> Expr:
        tok = self.peek()
        if tok.is_op("-") or tok.is_op("!"):
            self.next()
            return UnOp(line=tok.line, op=tok.text, operand=self.unary())
        return self.postfix()

    def postfix(self) -> Expr:
        node = self.primary()
        while True:
            tok = self.peek()
            if tok.is_op("["):
                self.next()
                index = self.expr()
                self.expect_op("]")
                node = Subscript(line=tok.line, array=node, index=index)
            else:
                return node

    def primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "int":
            return Literal(line=tok.line, value=int(tok.text))
        if tok.kind == "float":
            return Literal(line=tok.line, value=float(tok.text))
        if tok.kind == "string":
            return Literal(line=tok.line, value=tok.text)
        if tok.is_kw("true"):
            return Literal(line=tok.line, value=True)
        if tok.is_kw("false"):
            return Literal(line=tok.line, value=False)
        if tok.kind == "id":
            if self.peek().is_op("("):
                self.next()
                args: list[Expr] = []
                if not self.accept_op(")"):
                    args.append(self.expr())
                    while self.accept_op(","):
                        args.append(self.expr())
                    self.expect_op(")")
                return Call(line=tok.line, func=tok.text, args=args)
            return VarRef(line=tok.line, name=tok.text)
        if tok.is_op("("):
            node = self.expr()
            self.expect_op(")")
            return node
        raise SwiftSyntaxError(
            "unexpected token %r in expression" % (tok.text or "<eof>"), tok.line
        )


def parse(src: str) -> Program:
    """Parse Swift source text into a Program AST."""
    return Parser(tokenize(src)).parse_program()
