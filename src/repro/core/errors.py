"""Compiler diagnostics."""

from __future__ import annotations


class SwiftError(Exception):
    """Base for all compiler-reported errors."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class SwiftSyntaxError(SwiftError):
    pass


class SwiftTypeError(SwiftError):
    pass


class SwiftNameError(SwiftError):
    pass
