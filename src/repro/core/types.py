"""The Swift type system: scalar futures and arrays of futures."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SwiftTypeError


@dataclass(frozen=True)
class SwiftType:
    base: str  # int | float | string | boolean | blob | void
    is_array: bool = False

    def __str__(self) -> str:
        return self.base + ("[]" if self.is_array else "")

    @property
    def element(self) -> "SwiftType":
        if not self.is_array:
            raise SwiftTypeError("%s is not an array type" % self)
        return SwiftType(self.base)

    def array_of(self) -> "SwiftType":
        if self.is_array:
            raise SwiftTypeError("nested arrays are not supported")
        return SwiftType(self.base, is_array=True)


INT = SwiftType("int")
FLOAT = SwiftType("float")
STRING = SwiftType("string")
BOOLEAN = SwiftType("boolean")
BLOB = SwiftType("blob")
VOID = SwiftType("void")

SCALARS = {"int", "float", "string", "boolean", "blob", "void"}

# Swift base type -> Turbine TD type tag
TD_TYPE = {
    "int": "integer",
    "float": "float",
    "string": "string",
    "boolean": "boolean",
    "blob": "blob",
    "void": "void",
}

# Turbine store command per base type
STORE_CMD = {
    "int": "turbine::store_integer",
    "float": "turbine::store_float",
    "string": "turbine::store_string",
    "boolean": "turbine::store_boolean",
    "blob": "turbine::store_blob",
    "void": "turbine::store_void",
}


def parse_base(name: str) -> SwiftType:
    if name not in SCALARS:
        raise SwiftTypeError("unknown type %r" % name)
    return SwiftType(name)


def numeric(t: SwiftType) -> bool:
    return not t.is_array and t.base in ("int", "float")


def promote(a: SwiftType, b: SwiftType, op: str, line: int = 0) -> SwiftType:
    """Numeric promotion for a binary arithmetic operator."""
    if not numeric(a) or not numeric(b):
        raise SwiftTypeError(
            "operator %r needs numeric operands, got %s and %s" % (op, a, b),
            line,
        )
    if a.base == "float" or b.base == "float":
        return FLOAT
    return INT


def assignable(dst: SwiftType, src: SwiftType) -> bool:
    """May a value of type src be assigned to a variable of type dst?"""
    if dst == src:
        return True
    # implicit int -> float widening, as in Swift
    return dst == FLOAT and src == INT
