"""Semantic analysis: name resolution, type checking, dataflow checks.

Annotates expression nodes with their types and builds the function
table used by the code generator.  Dataflow-specific checks:

* scalars are single-assignment per static scope;
* a scalar assigned inside one branch of an ``if`` must be assigned in
  the other branch too (otherwise it might never close);
* arrays are written only through subscripts or as call outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SwiftNameError, SwiftTypeError
from .stdlib import INTRINSICS, predefined_extensions
from .swift_ast import (
    AppDef,
    Assign,
    BinOp,
    Block,
    Call,
    Decl,
    Expr,
    ExprStmt,
    ExtFuncDef,
    Foreach,
    FuncDef,
    If,
    Literal,
    LValue,
    Program,
    RangeSpec,
    Stmt,
    Subscript,
    UnOp,
    VarRef,
    Wait,
)
from .types import (
    BOOLEAN,
    FLOAT,
    INT,
    STRING,
    VOID,
    SwiftType,
    assignable,
    numeric,
    promote,
)


@dataclass
class FuncSig:
    name: str
    kind: str  # composite | extension | app | intrinsic
    ins: list[SwiftType] = field(default_factory=list)
    outs: list[SwiftType] = field(default_factory=list)
    node: object = None
    variadic: bool = False


class SymScope:
    def __init__(self, parent: "SymScope | None" = None):
        self.parent = parent
        self.vars: dict[str, SwiftType] = {}
        # names assigned by statements *in this scope* (including to
        # outer variables) — used for branch-consistency analysis
        self.assigned: set[str] = set()
        # names owned by this scope that have a direct assignment at
        # this level — used for single-assignment checking
        self.direct_assigned: set[str] = set()

    def declare(self, name: str, t: SwiftType, line: int) -> None:
        if name in self.vars:
            raise SwiftNameError("variable %r already declared" % name, line)
        self.vars[name] = t

    def lookup(self, name: str, line: int) -> SwiftType:
        scope: SymScope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        raise SwiftNameError("undeclared variable %r" % name, line)

    def defined(self, name: str) -> bool:
        scope: SymScope | None = self
        while scope is not None:
            if name in scope.vars:
                return True
            scope = scope.parent
        return False

    def mark_assigned(self, name: str, line: int) -> None:
        self.assigned.add(name)
        # Single-assignment applies to scalars; find the owning scope.
        scope: SymScope | None = self
        while scope is not None:
            if name in scope.vars:
                if scope is self:
                    if name in self.direct_assigned:
                        raise SwiftTypeError(
                            "scalar %r assigned more than once in this scope"
                            % name,
                            line,
                        )
                    self.direct_assigned.add(name)
                return
            scope = scope.parent


class Checker:
    def __init__(self, program: Program):
        self.program = program
        self.funcs: dict[str, FuncSig] = {}

    # -- function table ------------------------------------------------------

    def build_func_table(self) -> None:
        for name, intr in INTRINSICS.items():
            self.funcs[name] = FuncSig(
                name=name,
                kind="intrinsic",
                ins=list(intr.ins or []),
                outs=list(intr.outs),
                variadic=intr.variadic,
            )
        for ext in predefined_extensions():
            if not any(e.name == ext.name for e in self.program.ext_funcs):
                self.program.ext_funcs.append(ext)
        for defn in self.program.funcs:
            self._add_func(defn, "composite")
        for defn in self.program.ext_funcs:
            self._add_func(defn, "extension")
        for defn in self.program.app_funcs:
            self._add_func(defn, "app")

    def _add_func(self, defn, kind: str) -> None:
        if defn.name in self.funcs:
            raise SwiftNameError(
                "function %r already defined" % defn.name, defn.line
            )
        self.funcs[defn.name] = FuncSig(
            name=defn.name,
            kind=kind,
            ins=[p.swift_type for p in defn.inputs],
            outs=[p.swift_type for p in defn.outputs],
            node=defn,
        )

    # -- entry ------------------------------------------------------------------

    def check(self) -> dict[str, FuncSig]:
        self.build_func_table()
        for defn in self.program.funcs:
            scope = SymScope()
            for p in defn.inputs + defn.outputs:
                scope.declare(p.name, p.swift_type, defn.line)
            self.check_block(defn.body, scope)
        for defn in self.program.app_funcs:
            self._check_app(defn)
        self.check_block(self.program.main, SymScope())
        return self.funcs

    def _check_app(self, defn: AppDef) -> None:
        scope = SymScope()
        for p in defn.inputs:
            if p.swift_type.is_array:
                raise SwiftTypeError(
                    "app inputs must be scalars", defn.line
                )
            scope.declare(p.name, p.swift_type, defn.line)
        if len(defn.outputs) > 1:
            raise SwiftTypeError(
                "app functions have at most one output", defn.line
            )
        for p in defn.outputs:
            if p.swift_type not in (STRING, VOID):
                raise SwiftTypeError(
                    "app output must be string (stdout) or void (signal)",
                    defn.line,
                )
        for word in defn.command:
            t = self.check_expr(word, scope)
            if t.is_array:
                raise SwiftTypeError(
                    "app command words must be scalars", word.line
                )

    # -- statements ----------------------------------------------------------------

    def check_block(self, block: Block, scope: SymScope) -> None:
        for stmt in block.stmts:
            self.check_stmt(stmt, scope)

    def check_stmt(self, stmt: Stmt, scope: SymScope) -> None:
        if isinstance(stmt, (Decl, Assign, ExprStmt)):
            if getattr(stmt, "priority", None) is not None:
                pt = self.check_expr(stmt.priority, scope)
                if pt != INT:
                    raise SwiftTypeError(
                        "@prio must be an int, got %s" % pt, stmt.line
                    )
            if getattr(stmt, "target", None) is not None:
                tt = self.check_expr(stmt.target, scope)
                if tt != INT:
                    raise SwiftTypeError(
                        "@target must be an int rank, got %s" % tt, stmt.line
                    )
        if isinstance(stmt, Decl):
            scope.declare(stmt.name, stmt.swift_type, stmt.line)
            if stmt.init is not None:
                self._check_assign_value(
                    LValue(line=stmt.line, name=stmt.name), [stmt.init], scope
                )
            return
        if isinstance(stmt, Assign):
            self._check_assign(stmt, scope)
            return
        if isinstance(stmt, ExprStmt):
            if not isinstance(stmt.expr, Call):
                raise SwiftTypeError("invalid expression statement", stmt.line)
            sig = self._sig(stmt.expr.func, stmt.line)
            self._check_call_args(stmt.expr, sig, scope)
            if any(t != VOID for t in sig.outs):
                raise SwiftTypeError(
                    "call to %r discards non-void outputs; assign them"
                    % stmt.expr.func,
                    stmt.line,
                )
            stmt.expr.type = VOID
            return
        if isinstance(stmt, If):
            cond_t = self.check_expr(stmt.cond, scope)
            if cond_t not in (BOOLEAN, INT):
                raise SwiftTypeError(
                    "if condition must be boolean or int, got %s" % cond_t,
                    stmt.line,
                )
            then_scope = SymScope(scope)
            self.check_block(stmt.then, then_scope)
            else_scope = SymScope(scope)
            if stmt.els is not None:
                self.check_block(stmt.els, else_scope)
            # conditional-close check for outer scalars
            def outer_scalar_assigns(s: SymScope) -> set[str]:
                return {
                    n
                    for n in s.assigned
                    if n not in s.vars and not scope.lookup(n, stmt.line).is_array
                }

            then_outer = outer_scalar_assigns(then_scope)
            else_outer = outer_scalar_assigns(else_scope)
            if then_outer != else_outer:
                missing = then_outer.symmetric_difference(else_outer)
                raise SwiftTypeError(
                    "scalar(s) %s assigned in only one branch of if; "
                    "they would never close on the other path"
                    % ", ".join(sorted(missing)),
                    stmt.line,
                )
            for name in then_outer:
                scope.mark_assigned(name, stmt.line)
            return
        if isinstance(stmt, Foreach):
            body_scope = SymScope(scope)
            if isinstance(stmt.iterable, RangeSpec):
                for bound in (stmt.iterable.lo, stmt.iterable.hi, stmt.iterable.step):
                    if bound is None:
                        continue
                    t = self.check_expr(bound, scope)
                    if t != INT:
                        raise SwiftTypeError(
                            "range bounds must be int, got %s" % t, stmt.line
                        )
                body_scope.declare(stmt.var, INT, stmt.line)
                if stmt.index_var:
                    raise SwiftTypeError(
                        "index variable not allowed on range foreach", stmt.line
                    )
            else:
                t = self.check_expr(stmt.iterable, scope)
                if not t.is_array:
                    raise SwiftTypeError(
                        "foreach needs an array or range, got %s" % t, stmt.line
                    )
                body_scope.declare(stmt.var, t.element, stmt.line)
                if stmt.index_var:
                    body_scope.declare(stmt.index_var, INT, stmt.line)
            self.check_block(stmt.body, body_scope)
            return
        if isinstance(stmt, Wait):
            for e in stmt.exprs:
                self.check_expr(e, scope)
            self.check_block(stmt.body, SymScope(scope))
            return
        if isinstance(stmt, Block):
            self.check_block(stmt, SymScope(scope))
            return
        raise SwiftTypeError("unknown statement %r" % stmt, stmt.line)

    def _check_assign(self, stmt: Assign, scope: SymScope) -> None:
        if len(stmt.exprs) == 1 and isinstance(stmt.exprs[0], Call):
            sig = self._sig(stmt.exprs[0].func, stmt.line)
            if sig.kind != "intrinsic" and len(sig.outs) == len(stmt.targets) > 1:
                # multi-output call
                self._check_call_args(stmt.exprs[0], sig, scope)
                stmt.exprs[0].type = VOID
                for target, out_t in zip(stmt.targets, sig.outs):
                    self._check_target(target, out_t, scope)
                return
        if len(stmt.targets) != len(stmt.exprs):
            raise SwiftTypeError(
                "assignment arity mismatch: %d targets, %d values"
                % (len(stmt.targets), len(stmt.exprs)),
                stmt.line,
            )
        for target, expr in zip(stmt.targets, stmt.exprs):
            self._check_assign_value(target, [expr], scope)

    def _check_assign_value(
        self, target: LValue, exprs: list[Expr], scope: SymScope
    ) -> None:
        expr = exprs[0]
        t = self.check_expr(expr, scope)
        if t.is_array and target.index is None and not isinstance(expr, Call):
            raise SwiftTypeError(
                "whole-array assignment is only allowed from a function "
                "call output",
                target.line,
            )
        self._check_target(target, t, scope)

    def _check_target(self, target: LValue, value_t: SwiftType, scope: SymScope) -> None:
        var_t = scope.lookup(target.name, target.line)
        if target.index is not None:
            if not var_t.is_array:
                raise SwiftTypeError(
                    "%r is not an array" % target.name, target.line
                )
            idx_t = self.check_expr(target.index, scope)
            if idx_t != INT:
                raise SwiftTypeError(
                    "array index must be int, got %s" % idx_t, target.line
                )
            if not assignable(var_t.element, value_t):
                raise SwiftTypeError(
                    "cannot store %s into %s element" % (value_t, var_t),
                    target.line,
                )
            target.type = var_t.element
            return
        if not assignable(var_t, value_t):
            raise SwiftTypeError(
                "cannot assign %s to %r of type %s"
                % (value_t, target.name, var_t),
                target.line,
            )
        if not var_t.is_array:
            scope.mark_assigned(target.name, target.line)
        target.type = var_t

    # -- expressions -------------------------------------------------------------------

    def _sig(self, name: str, line: int) -> FuncSig:
        sig = self.funcs.get(name)
        if sig is None:
            raise SwiftNameError("unknown function %r" % name, line)
        return sig

    def _check_call_args(self, call: Call, sig: FuncSig, scope: SymScope) -> None:
        if sig.name == "size":
            if len(call.args) != 1:
                raise SwiftTypeError("size() takes one array", call.line)
            t = self.check_expr(call.args[0], scope)
            if not t.is_array:
                raise SwiftTypeError("size() needs an array, got %s" % t, call.line)
            return
        fixed = sig.ins
        if sig.variadic:
            if len(call.args) < len(fixed):
                raise SwiftTypeError(
                    "%s() needs at least %d argument(s)" % (sig.name, len(fixed)),
                    call.line,
                )
        elif len(call.args) != len(fixed):
            raise SwiftTypeError(
                "%s() takes %d argument(s), got %d"
                % (sig.name, len(fixed), len(call.args)),
                call.line,
            )
        for i, arg in enumerate(call.args):
            t = self.check_expr(arg, scope)
            if i < len(fixed):
                if not assignable(fixed[i], t):
                    raise SwiftTypeError(
                        "argument %d of %s(): expected %s, got %s"
                        % (i + 1, sig.name, fixed[i], t),
                        call.line,
                    )
            else:
                if t.is_array:
                    raise SwiftTypeError(
                        "variadic argument of %s() must be scalar" % sig.name,
                        call.line,
                    )

    def check_expr(self, expr: Expr, scope: SymScope) -> SwiftType:
        if isinstance(expr, Literal):
            v = expr.value
            if isinstance(v, bool):
                expr.type = BOOLEAN
            elif isinstance(v, int):
                expr.type = INT
            elif isinstance(v, float):
                expr.type = FLOAT
            else:
                expr.type = STRING
            return expr.type
        if isinstance(expr, VarRef):
            expr.type = scope.lookup(expr.name, expr.line)
            return expr.type
        if isinstance(expr, Subscript):
            arr_t = self.check_expr(expr.array, scope)
            if not arr_t.is_array:
                raise SwiftTypeError(
                    "subscript on non-array %s" % arr_t, expr.line
                )
            idx_t = self.check_expr(expr.index, scope)
            if idx_t != INT:
                raise SwiftTypeError(
                    "array index must be int, got %s" % idx_t, expr.line
                )
            expr.type = arr_t.element
            return expr.type
        if isinstance(expr, UnOp):
            t = self.check_expr(expr.operand, scope)
            if expr.op == "-":
                if not numeric(t):
                    raise SwiftTypeError("unary - needs a number", expr.line)
                expr.type = t
            else:  # !
                if t != BOOLEAN:
                    raise SwiftTypeError("! needs a boolean", expr.line)
                expr.type = BOOLEAN
            return expr.type
        if isinstance(expr, BinOp):
            lt = self.check_expr(expr.left, scope)
            rt = self.check_expr(expr.right, scope)
            op = expr.op
            if op == "+" and lt == STRING and rt == STRING:
                expr.type = STRING
            elif op in ("+", "-", "*", "%", "**"):
                expr.type = promote(lt, rt, op, expr.line)
            elif op == "/":
                # Swift '/' on ints is integer division; on floats, real
                expr.type = promote(lt, rt, op, expr.line)
            elif op in ("==", "!="):
                if lt != rt and not (numeric(lt) and numeric(rt)):
                    raise SwiftTypeError(
                        "cannot compare %s and %s" % (lt, rt), expr.line
                    )
                expr.type = BOOLEAN
            elif op in ("<", ">", "<=", ">="):
                if not (numeric(lt) and numeric(rt)) and not (
                    lt == STRING and rt == STRING
                ):
                    raise SwiftTypeError(
                        "cannot order %s and %s" % (lt, rt), expr.line
                    )
                expr.type = BOOLEAN
            elif op in ("&&", "||"):
                if lt != BOOLEAN or rt != BOOLEAN:
                    raise SwiftTypeError(
                        "%s needs boolean operands" % op, expr.line
                    )
                expr.type = BOOLEAN
            else:
                raise SwiftTypeError("unknown operator %r" % op, expr.line)
            return expr.type
        if isinstance(expr, Call):
            sig = self._sig(expr.func, expr.line)
            self._check_call_args(expr, sig, scope)
            if sig.name == "size":
                expr.type = INT
                return expr.type
            if len(sig.outs) != 1:
                raise SwiftTypeError(
                    "%s() has %d outputs; cannot be used in an expression"
                    % (sig.name, len(sig.outs)),
                    expr.line,
                )
            expr.type = sig.outs[0]
            return expr.type
        raise SwiftTypeError("cannot type-check %r" % expr, expr.line)


def analyze(program: Program) -> dict[str, FuncSig]:
    """Run semantic analysis; returns the function table."""
    return Checker(program).check()
