"""Lexer for the Swift language (C-like syntax, §II-A)."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SwiftSyntaxError

KEYWORDS = {
    "int",
    "float",
    "string",
    "boolean",
    "blob",
    "void",
    "if",
    "else",
    "foreach",
    "for",
    "in",
    "wait",
    "app",
    "true",
    "false",
    "global",
    "main",
    "import",
    "pragma",
}

_TWO_CHAR = [
    "==", "!=", "<=", ">=", "&&", "||", "**", "=>", "+=",
]
_ONE_CHAR = "+-*/%<>=!(){}[];,:&|.@"


@dataclass(frozen=True)
class Token:
    kind: str  # id, kw, int, float, string, op, eof
    text: str
    line: int

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op

    def is_kw(self, word: str) -> bool:
        return self.kind == "kw" and self.text == word


def tokenize(src: str) -> list[Token]:
    toks: list[Token] = []
    i, n = 0, len(src)
    line = 1
    while i < n:
        c = src[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        # comments: //, # and /* */
        if c == "#" or src.startswith("//", i):
            while i < n and src[i] != "\n":
                i += 1
            continue
        if src.startswith("/*", i):
            end = src.find("*/", i + 2)
            if end < 0:
                raise SwiftSyntaxError("unterminated block comment", line)
            line += src.count("\n", i, end)
            i = end + 2
            continue
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n:
                ch = src[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not is_float and j + 1 < n and src[j + 1].isdigit():
                    is_float = True
                    j += 1
                elif ch in "eE" and j + 1 < n and (src[j + 1].isdigit() or src[j + 1] in "+-"):
                    is_float = True
                    j += 2
                    while j < n and src[j].isdigit():
                        j += 1
                    break
                else:
                    break
            toks.append(Token("float" if is_float else "int", src[i:j], line))
            i = j
            continue
        if c == '"':
            j = i + 1
            buf: list[str] = []
            while j < n and src[j] != '"':
                if src[j] == "\\" and j + 1 < n:
                    esc = src[j + 1]
                    buf.append(
                        {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(
                            esc, "\\" + esc
                        )
                    )
                    j += 2
                    continue
                if src[j] == "\n":
                    line += 1
                buf.append(src[j])
                j += 1
            if j >= n:
                raise SwiftSyntaxError("unterminated string literal", line)
            toks.append(Token("string", "".join(buf), line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            word = src[i:j]
            toks.append(Token("kw" if word in KEYWORDS else "id", word, line))
            i = j
            continue
        matched = False
        for op in _TWO_CHAR:
            if src.startswith(op, i):
                toks.append(Token("op", op, line))
                i += 2
                matched = True
                break
        if matched:
            continue
        if c in _ONE_CHAR:
            toks.append(Token("op", c, line))
            i += 1
            continue
        raise SwiftSyntaxError("unexpected character %r" % c, line)
    toks.append(Token("eof", "", line))
    return toks
