"""repro: a from-scratch reproduction of Swift/T interlanguage parallel
scripting for distributed-memory scientific computing (CLUSTER 2015).

Layers (bottom-up):

* :mod:`repro.mpi` -- thread-backed MPI-like message passing
* :mod:`repro.adlb` -- the Asynchronous Dynamic Load Balancer
* :mod:`repro.tcl` -- a mini-Tcl interpreter (the compile target)
* :mod:`repro.turbine` -- the dataflow engine and worker runtime
* :mod:`repro.core` -- the Swift language and STC compiler
* :mod:`repro.interlang` -- embedded Python/R, shell, leaf packages
* :mod:`repro.rlang` -- the embedded mini-R interpreter
* :mod:`repro.blob` -- blobutils for bulk binary interlanguage data
* :mod:`repro.swig` -- SWIG/FortWrap-style native-code binding generator
* :mod:`repro.packaging` -- static packages (many-small-files fix)
* :mod:`repro.launch` -- batch scheduler integration
* :mod:`repro.simcluster` -- discrete-event large-scale cluster model
* :mod:`repro.obs` -- unified runtime tracing/metrics layer

Public entry points: :func:`swift_run`, :class:`SwiftRuntime`,
:class:`RuntimeConfig`, :func:`compile_swift`; traced runs return a
:class:`Trace` via ``result.trace`` / ``result.profile``.
"""

from .api import SwiftRuntime, swift_run
from .core import CompiledProgram, SwiftError, compile_swift
from .faults import (
    DeadlineExceeded,
    EngineLost,
    FaultPlan,
    QuarantinedTask,
    ServerLost,
    TaskError,
    TaskFailure,
    TaskTimeout,
)
from .mpi import RankFailure
from .obs import Profile, Trace, Tracer
from .turbine import RunResult, RuntimeConfig

__version__ = "0.3.0"

__all__ = [
    "swift_run",
    "SwiftRuntime",
    "RuntimeConfig",
    "RunResult",
    "compile_swift",
    "CompiledProgram",
    "SwiftError",
    "Trace",
    "Tracer",
    "Profile",
    "FaultPlan",
    "TaskError",
    "TaskFailure",
    "TaskTimeout",
    "ServerLost",
    "EngineLost",
    "QuarantinedTask",
    "DeadlineExceeded",
    "RankFailure",
    "__version__",
]
