"""Causal dataflow analysis of a traced run.

Reconstructs the run DAG from the provenance events the runtime emits
when tracing is on (``prov/write``, ``prov/task``, ``prov/grant``,
``rule/create``, ``rule/release``, plus the executed-unit spans), then
answers the questions a Chrome timeline cannot:

* **critical path** — the causal chain of units that determined the
  makespan, with a per-hop breakdown of where the time between one
  unit finishing and the next finishing went: waiting for input data
  (``data_wait``), engine dispatch latency (``dispatch``), sitting in a
  server work queue (``queue``), grant-to-start communication
  (``comm``), and the unit's own execution (``compute``).  Hops tile
  the analysis window exactly, so their durations sum to the measured
  makespan by construction.
* **utilization / imbalance** — per-rank busy time, average and peak
  concurrency, and worker load imbalance.
* **what-if bound** — the serial compute along the critical path is a
  floor no worker count can beat.
* **retry lineage** — units that re-ran a leased task (stable ``uid``
  across requeues) are chained attempt-to-attempt.

The join between server-side grants and client-side execution spans
needs no extra wire traffic: each client has exactly one outstanding
task, so the k-th ``prov/grant`` aimed at a client rank (time-ordered
across servers) pairs with the k-th executed unit span on that rank.
Failed attempts emit spans too, keeping the zip aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import Trace, TraceEvent

#: hop segment names, in causal order
SEGMENTS = ("data_wait", "dispatch", "queue", "comm", "compute")

#: (category, name) -> unit kind for executed-unit spans
_UNIT_SPANS = {
    ("engine", "program"): "program",
    ("engine", "ctask"): "ctask",
    ("task", "task"): "task",
    ("rule", "fire"): "rule",
}


@dataclass
class Unit:
    """One executed unit of work (program / ctask / task / rule fire)."""

    id: str  # "P0" | "C0.3" | "T5.2" | "R0.7"
    kind: str
    rank: int
    start: float
    end: float
    ok: bool = True
    uid: int | None = None  # granted units: stable task identity
    attempts: int = 0  # grant's attempt counter (>0: a retry)
    rule: str | None = None  # spawning rule node ("R0.7") or unit id
    t_grant: float | None = None

    @property
    def dur(self) -> float:
        return self.end - self.start


@dataclass
class RuleNode:
    """A registered dataflow rule (may or may not have executed)."""

    id: str  # "R<rank>.<ruleid>"
    rank: int
    type: str
    name: str
    inputs: list[int] = field(default_factory=list)
    by: str | None = None  # unit that registered the rule
    t_create: float = 0.0
    t_release: float | None = None  # WORK/CONTROL: handed to ADLB


@dataclass
class Hop:
    """One critical-path step: the window from the predecessor unit's
    end (or the run start) to this unit's end, tiled into segments."""

    unit: str
    kind: str
    rank: int
    pred: str | None
    via_td: int | None  # input TD that carried the dependency (if any)
    total: float = 0.0
    segments: dict[str, float] = field(default_factory=dict)


@dataclass
class Analysis:
    """The reconstructed run DAG + derived measurements."""

    units: dict[str, Unit] = field(default_factory=dict)
    rules: dict[str, RuleNode] = field(default_factory=dict)
    writes: dict[int, list[tuple[float, str]]] = field(default_factory=dict)
    critical_path: list[Hop] = field(default_factory=list)
    makespan: float = 0.0
    window: tuple[float, float] = (0.0, 0.0)
    busy_by_rank: dict[int, float] = field(default_factory=dict)
    avg_concurrency: float = 0.0
    peak_concurrency: int = 0
    imbalance: float = 0.0  # max worker busy / mean worker busy
    stalls: dict[str, float] = field(default_factory=dict)
    serial_compute: float = 0.0  # what-if floor
    retries: list[list[str]] = field(default_factory=list)  # uid chains
    repl_max_lag: int = 0
    incomplete: bool = False  # backward walk hit a missing join

    # ------------------------------------------------------------ building

    @classmethod
    def from_trace(cls, trace: Trace) -> "Analysis":
        a = cls()
        a._collect(trace)
        if a.units:
            a._link(trace)
            a._timelines()
            a._walk()
        return a

    def _collect(self, trace: Trace) -> None:
        """First pass: units, rules, writes, grants, task provenance."""
        self._grants: dict[int, list[TraceEvent]] = {}
        self._tasks: dict[int, dict] = {}  # uid -> prov/task payload
        for e in trace.events:
            kind = _UNIT_SPANS.get((e.category, e.name))
            if kind is not None and e.dur > 0.0:
                p = e.payload or {}
                if kind == "rule":
                    uid = "R%d.%d" % (e.rank, p.get("id", -1))
                else:
                    uid = p.get("unit") or "%s?%d.%d" % (
                        kind[0].upper(),
                        e.rank,
                        len(self.units),
                    )
                self.units[uid] = Unit(
                    id=uid,
                    kind=kind,
                    rank=e.rank,
                    start=e.t,
                    end=e.end,
                    ok=p.get("ok", True),
                    rule=uid if kind == "rule" else None,
                )
                continue
            if e.category == "rule" and e.name == "create":
                p = e.payload or {}
                rid = "R%d.%d" % (e.rank, p.get("id", -1))
                self.rules[rid] = RuleNode(
                    id=rid,
                    rank=e.rank,
                    type=p.get("type", "LOCAL"),
                    name=p.get("name", ""),
                    inputs=list(p.get("inputs", ())),
                    by=p.get("by"),
                    t_create=e.t,
                )
            elif e.category == "rule" and e.name == "release":
                p = e.payload or {}
                rid = "R%d.%d" % (e.rank, p.get("id", -1))
                if rid in self.rules:
                    self.rules[rid].t_release = e.t
            elif e.category == "prov" and e.name == "write":
                p = e.payload or {}
                if "td" in p:
                    self.writes.setdefault(p["td"], []).append(
                        (e.t, p.get("unit"))
                    )
            elif e.category == "prov" and e.name == "task":
                p = e.payload or {}
                if "uid" in p:
                    self._tasks[p["uid"]] = {"by": p.get("by"), "t": e.t}
            elif e.category == "prov" and e.name == "grant":
                p = e.payload or {}
                if "client" in p:
                    self._grants.setdefault(p["client"], []).append(e)
            elif e.category == "repl" and e.name == "flush":
                lag = (e.payload or {}).get("lag", 0)
                self.repl_max_lag = max(self.repl_max_lag, lag)

    def _link(self, trace: Trace) -> None:
        """Zip grants to executed units; attach uid/rule/attempts."""
        granted: dict[int, list[Unit]] = {}
        for u in self.units.values():
            if u.kind in ("ctask", "task"):
                granted.setdefault(u.rank, []).append(u)
        for rank, units in granted.items():
            units.sort(key=lambda u: u.start)
            grants = sorted(self._grants.get(rank, ()), key=lambda e: e.t)
            for unit, grant in zip(units, grants):
                p = grant.payload or {}
                unit.uid = p.get("uid")
                unit.attempts = p.get("attempts", 0)
                unit.t_grant = grant.t
                info = self._tasks.get(unit.uid)
                if info is not None:
                    unit.rule = info.get("by")
        # Retry chains: attempts of the same uid, in execution order.
        by_uid: dict[int, list[Unit]] = {}
        for u in self.units.values():
            if u.uid is not None and u.uid >= 0:
                by_uid.setdefault(u.uid, []).append(u)
        for uid, units in sorted(by_uid.items()):
            if len(units) > 1:
                units.sort(key=lambda u: u.start)
                self.retries.append([u.id for u in units])

    def _timelines(self) -> None:
        """Utilization, concurrency, and imbalance from unit spans."""
        t0 = min(u.start for u in self.units.values())
        t1 = max(u.end for u in self.units.values())
        self.window = (t0, t1)
        self.makespan = t1 - t0
        for u in self.units.values():
            self.busy_by_rank[u.rank] = (
                self.busy_by_rank.get(u.rank, 0.0) + u.dur
            )
        total_busy = sum(self.busy_by_rank.values())
        if self.makespan > 0:
            self.avg_concurrency = total_busy / self.makespan
        marks = sorted(
            [(u.start, 1) for u in self.units.values()]
            + [(u.end, -1) for u in self.units.values()]
        )
        depth = 0
        for _, d in marks:
            depth += d
            self.peak_concurrency = max(self.peak_concurrency, depth)
        worker_busy = [
            busy
            for rank, busy in self.busy_by_rank.items()
            if any(
                u.rank == rank and u.kind == "task" for u in self.units.values()
            )
        ]
        if worker_busy and sum(worker_busy) > 0:
            mean = sum(worker_busy) / len(worker_busy)
            self.imbalance = max(worker_busy) / mean if mean else 0.0

    # -------------------------------------------------------- critical path

    def _pred(self, unit: Unit) -> tuple[Unit | None, int | None, float | None]:
        """Predecessor of ``unit``: the candidate whose enabling event
        (input-TD write, rule registration, or prior attempt) happened
        last.  Note a writer can *outlive* the reader — a task's store
        enables dependents mid-span — so candidates are ranked by the
        enable time, not by when the candidate unit finished.
        Returns (pred, via_td, t_ready)."""
        if unit.attempts > 0 and unit.uid is not None:
            # A retried attempt chains to the previous attempt of the
            # same uid, not to the data that enabled the original.
            prior = [
                u
                for u in self.units.values()
                if u.uid == unit.uid and u.start < unit.start
            ]
            if prior:
                prev = max(prior, key=lambda u: u.start)
                return prev, None, prev.end
        src = unit.rule
        # (enable time, candidate unit, via td)
        candidates: list[tuple[float, Unit, int | None]] = []
        t_ready = None
        rule = self.rules.get(src) if src is not None else None
        if rule is not None:
            t_ready = rule.t_create
            if rule.by is not None and rule.by in self.units:
                candidates.append(
                    (rule.t_create, self.units[rule.by], None)
                )
            for td in rule.inputs:
                writes = self.writes.get(td)
                if not writes:
                    continue
                t_w, writer = max(writes, key=lambda w: w[0])
                t_ready = max(t_ready, t_w)
                if writer is not None and writer in self.units:
                    candidates.append((t_w, self.units[writer], td))
        elif src is not None and src in self.units:
            # Spawned directly from a unit (turbine::spawn) — no rule.
            spawner = self.units[src]
            candidates.append((spawner.end, spawner, None))
            t_ready = spawner.end
        if not candidates:
            return None, None, t_ready
        _, pred, via = max(candidates, key=lambda c: c[0])
        return pred, via, t_ready

    def _hop(
        self, unit: Unit, pred: Unit | None, via: int | None, floor: float
    ) -> Hop:
        """Tile [floor, unit.end] into causal segments (monotonically
        clipped boundaries, so segments are >= 0 and sum to total)."""
        rule = self.rules.get(unit.rule) if unit.rule else None
        t_ready = None
        if rule is not None:
            t_ready = rule.t_create
            for td in rule.inputs:
                writes = self.writes.get(td)
                if writes:
                    t_ready = max(t_ready, max(w[0] for w in writes))
        t_release = rule.t_release if rule is not None else None
        if unit.t_grant is None and t_release is None:
            # Inline unit (LOCAL fire / program): ready-to-start delay
            # is engine dispatch, not queueing or communication.
            t_release = unit.start
        bounds = []
        lo = min(floor, unit.end)
        for v in (t_ready, t_release, unit.t_grant, unit.start):
            v = lo if v is None else min(max(v, lo), unit.end)
            bounds.append(v)
            lo = v
        edges = [min(floor, unit.end)] + bounds + [unit.end]
        segments = {
            name: edges[i + 1] - edges[i] for i, name in enumerate(SEGMENTS)
        }
        return Hop(
            unit=unit.id,
            kind=unit.kind,
            rank=unit.rank,
            pred=pred.id if pred is not None else None,
            via_td=via,
            total=unit.end - edges[0],
            segments=segments,
        )

    def _walk(self) -> None:
        """Backward walk from the last-finishing unit; hops tile the
        window so totals sum to the makespan."""
        terminal = max(self.units.values(), key=lambda u: u.end)
        chain: list[tuple[Unit, Unit | None, int | None]] = []
        cur = terminal
        seen = {cur.id}
        while True:
            pred, via, _ = self._pred(cur)
            if pred is not None and (
                pred.id in seen or pred.start >= cur.end
            ):
                # Cycle guard / causality violation from an imperfect
                # join: stop the walk rather than produce nonsense.
                # (pred.end > cur.start is fine — a writer unit can
                # keep running after its store enabled the reader.)
                pred = None
            chain.append((cur, pred, via))
            if pred is None:
                break
            seen.add(pred.id)
            cur = pred
        chain.reverse()
        first = chain[0][0]
        self.incomplete = first.start - self.window[0] > 1e-9 and (
            first.kind != "program"
        )
        # The floor only moves forward: overlapping units (a writer
        # outliving its reader) yield a zero-length hop window instead
        # of double-counting, keeping sum(hop totals) == makespan.
        floor = self.window[0]
        for unit, pred, via in chain:
            hop = self._hop(unit, pred, via, floor)
            self.critical_path.append(hop)
            floor = max(floor, unit.end)
        for hop in self.critical_path:
            for name, dur in hop.segments.items():
                self.stalls[name] = self.stalls.get(name, 0.0) + dur
        self.serial_compute = self.stalls.get("compute", 0.0)

    # ------------------------------------------------------------ rendering

    def render(self) -> str:
        if not self.units:
            return (
                "analyze: no provenance events in trace (run with "
                "trace=True on a runtime new enough to emit prov events)"
            )
        kinds: dict[str, int] = {}
        for u in self.units.values():
            kinds[u.kind] = kinds.get(u.kind, 0) + 1
        lines = [
            "analyze: makespan %.4fs, %d units (%s), %d ranks busy"
            % (
                self.makespan,
                len(self.units),
                ", ".join(
                    "%d %s" % (n, k) for k, n in sorted(kinds.items())
                ),
                len(self.busy_by_rank),
            )
        ]
        path_total = sum(h.total for h in self.critical_path)
        pct = 100.0 * path_total / self.makespan if self.makespan else 0.0
        lines.append(
            "critical path: %d hops, %.4fs (%.1f%% of makespan%s)"
            % (
                len(self.critical_path),
                path_total,
                pct,
                "; walk incomplete" if self.incomplete else "",
            )
        )
        lines.append(
            "  %-10s %-7s %4s %9s %9s %9s %9s %9s %9s  %s"
            % (
                "unit",
                "kind",
                "rank",
                "total",
                "compute",
                "data_wait",
                "dispatch",
                "queue",
                "comm",
                "from",
            )
        )
        for h in self.critical_path:
            via = ""
            if h.pred:
                via = h.pred + (
                    " (td %d)" % h.via_td if h.via_td is not None else ""
                )
            lines.append(
                "  %-10s %-7s %4d %8.4fs %8.4fs %8.4fs %8.4fs %8.4fs %8.4fs  %s"
                % (
                    h.unit,
                    h.kind,
                    h.rank,
                    h.total,
                    h.segments["compute"],
                    h.segments["data_wait"],
                    h.segments["dispatch"],
                    h.segments["queue"],
                    h.segments["comm"],
                    via,
                )
            )
        if path_total > 0:
            attribution = ", ".join(
                "%s %.1f%%" % (name, 100.0 * self.stalls.get(name, 0.0) / path_total)
                for name in SEGMENTS
                if self.stalls.get(name, 0.0) > 1e-9
            )
            lines.append("stall attribution (critical path): %s" % attribution)
        lines.append(
            "concurrency: %.2f avg, %d peak; worker imbalance %.2fx"
            % (self.avg_concurrency, self.peak_concurrency, self.imbalance)
        )
        lines.append("per-rank busy time:")
        for rank in sorted(self.busy_by_rank):
            busy = self.busy_by_rank[rank]
            util = busy / self.makespan if self.makespan else 0.0
            bar = "#" * int(round(40 * min(util, 1.0)))
            lines.append(
                "  rank %-3d %8.4fs %6.1f%% |%-40s|"
                % (rank, busy, 100 * util, bar)
            )
        lines.append(
            "what-if: serial compute along the critical path is %.4fs — "
            "no worker count can finish faster than that "
            "(current makespan is %.2fx the floor)"
            % (
                self.serial_compute,
                self.makespan / self.serial_compute
                if self.serial_compute
                else 0.0,
            )
        )
        if self.retries:
            lines.append("retries:")
            for chain in self.retries:
                lines.append(
                    "  %s (%d attempts)" % (" -> ".join(chain), len(chain))
                )
        if self.repl_max_lag:
            lines.append(
                "replication: peak op-log lag %d entries" % self.repl_max_lag
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    # -------------------------------------------------------------- export

    def to_json(self) -> dict:
        return {
            "makespan": self.makespan,
            "units": {
                u.id: {
                    "kind": u.kind,
                    "rank": u.rank,
                    "start": u.start - self.window[0],
                    "dur": u.dur,
                    "ok": u.ok,
                    "uid": u.uid,
                    "attempts": u.attempts,
                    "rule": u.rule,
                }
                for u in self.units.values()
            },
            "critical_path": [
                {
                    "unit": h.unit,
                    "kind": h.kind,
                    "rank": h.rank,
                    "pred": h.pred,
                    "via_td": h.via_td,
                    "total": h.total,
                    "segments": dict(h.segments),
                }
                for h in self.critical_path
            ],
            "stalls": dict(self.stalls),
            "serial_compute": self.serial_compute,
            "avg_concurrency": self.avg_concurrency,
            "peak_concurrency": self.peak_concurrency,
            "imbalance": self.imbalance,
            "busy_by_rank": dict(self.busy_by_rank),
            "retries": list(self.retries),
            "repl_max_lag": self.repl_max_lag,
            "incomplete": self.incomplete,
        }

    def to_dot(self) -> str:
        """DOT digraph of the unit-level DAG; critical path in red."""
        crit = {h.unit for h in self.critical_path}
        crit_edges = {
            (h.pred, h.unit) for h in self.critical_path if h.pred
        }
        lines = [
            "digraph run {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=10, fontname="monospace"];',
        ]
        for u in sorted(self.units.values(), key=lambda u: u.start):
            attrs = 'label="%s\\n%s r%d %.4fs"' % (
                u.id,
                u.kind,
                u.rank,
                u.dur,
            )
            if u.id in crit:
                attrs += ", color=red, penwidth=2"
            if not u.ok:
                attrs += ", style=dashed"
            lines.append("  %s [%s];" % (_dot_id(u.id), attrs))
        emitted = set()
        for u in self.units.values():
            pred, via, _ = self._pred(u)
            if pred is None:
                continue
            edge = (pred.id, u.id)
            if edge in emitted:
                continue
            emitted.add(edge)
            attrs = []
            if via is not None:
                attrs.append('label="td %d"' % via)
            if edge in crit_edges:
                attrs.append("color=red")
                attrs.append("penwidth=2")
            lines.append(
                "  %s -> %s%s;"
                % (
                    _dot_id(pred.id),
                    _dot_id(u.id),
                    " [%s]" % ", ".join(attrs) if attrs else "",
                )
            )
        lines.append("}")
        return "\n".join(lines)


def _dot_id(unit_id: str) -> str:
    return '"%s"' % unit_id.replace('"', "")


__all__ = ["Analysis", "Hop", "Unit", "RuleNode", "SEGMENTS"]
