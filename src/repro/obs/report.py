"""Post-run aggregation: turn a Trace into a human-readable profile.

The profile mirrors the measurements behind the paper's figures:
per-category time totals (where did the run spend its time), per-worker
utilization (the load-balance efficiency of Fig. 3), and the headline
ADLB/MPI counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import CategoryTotal, Trace

#: span category emitted by workers around each leaf task
TASK = "task"

#: histogram names fed by :func:`feed_latency_histograms`
HIST_TASK_LATENCY = "task.latency_s"
HIST_QUEUE_WAIT = "adlb.queue_wait_s"
HIST_DISPATCH = "adlb.dispatch_s"


def feed_latency_histograms(tracer, since: float = 0.0) -> None:
    """Derive latency histograms from a run's trace events.

    Observes three distributions into ``tracer.metrics`` so
    :meth:`Profile.render` can show percentiles:

    * ``task.latency_s`` — duration of each leaf-task span;
    * ``adlb.queue_wait_s`` — accept-to-grant time of each queued unit
      (prov ``task``/``grant`` instants matched by uid);
    * ``adlb.dispatch_s`` — grant-to-start delay, pairing the k-th
      grant to a client with its k-th task span (one outstanding task
      per client, the same alignment invariant ``repro analyze`` uses).

    ``since`` is the tracer-relative start of the run being folded, so
    session tracers never re-observe a previous run's events.  Pairing
    degrades gracefully when the trace ring dropped early events.
    """
    metrics = tracer.metrics
    accepted_at: dict[int, float] = {}
    grants_by_client: dict[int, list[float]] = {}
    spans_by_rank: dict[int, list[float]] = {}
    for e in tracer.events(since=since):
        payload = e.payload
        if e.category == "prov" and payload is not None:
            if e.name == "task":
                uid = payload.get("uid")
                if uid is not None:
                    accepted_at[uid] = e.t
            elif e.name == "grant":
                t_in = accepted_at.pop(payload.get("uid"), None)
                if t_in is not None:
                    metrics.observe(HIST_QUEUE_WAIT, e.t - t_in)
                client = payload.get("client")
                if client is not None:
                    grants_by_client.setdefault(client, []).append(e.t)
        elif e.category == TASK and e.dur > 0.0:
            metrics.observe(HIST_TASK_LATENCY, e.dur)
            spans_by_rank.setdefault(e.rank, []).append(e.t)
    for rank, starts in spans_by_rank.items():
        for granted, started in zip(grants_by_client.get(rank, ()), starts):
            if started >= granted:
                metrics.observe(HIST_DISPATCH, started - granted)


@dataclass
class WorkerUtilization:
    rank: int
    tasks: int
    busy: float
    utilization: float  # busy / wall


@dataclass
class Profile:
    """Aggregated view of one trace (``RunResult.profile``)."""

    trace: Trace
    wall: float = 0.0
    categories: dict[str, CategoryTotal] = field(default_factory=dict)
    workers: list[WorkerUtilization] = field(default_factory=list)
    efficiency: float = 0.0  # mean worker utilization (paper Fig. 3)

    @classmethod
    def from_trace(cls, trace: Trace) -> "Profile":
        wall = trace.meta.get("elapsed") or 0.0
        if not wall and trace.events:
            wall = max(e.end for e in trace.events) - min(
                e.t for e in trace.events
            )
        prof = cls(trace=trace, wall=wall, categories=trace.by_category())
        busy_by_rank: dict[int, float] = {}
        tasks_by_rank: dict[int, int] = {}
        for e in trace.spans(TASK):
            busy_by_rank[e.rank] = busy_by_rank.get(e.rank, 0.0) + e.dur
            tasks_by_rank[e.rank] = tasks_by_rank.get(e.rank, 0) + 1
        roles: dict = trace.meta.get("roles", {})
        worker_ranks = sorted(
            set(busy_by_rank)
            | {r for r, role in roles.items() if role == "worker"}
        )
        for rank in worker_ranks:
            busy = busy_by_rank.get(rank, 0.0)
            prof.workers.append(
                WorkerUtilization(
                    rank=rank,
                    tasks=tasks_by_rank.get(rank, 0),
                    busy=busy,
                    utilization=(busy / wall) if wall else 0.0,
                )
            )
        if prof.workers:
            prof.efficiency = sum(w.utilization for w in prof.workers) / len(
                prof.workers
            )
        return prof

    # ----------------------------------------------------------- rendering

    def render(self) -> str:
        lines: list[str] = []
        lines.append("profile: %.3fs wall, %d events" % (self.wall, len(self.trace)))
        if self.trace.dropped:
            lines.append(
                "  (ring buffer wrapped: %d oldest events dropped)"
                % self.trace.dropped
            )
        headline = self._critical_path_headline()
        if headline:
            lines.append(headline)
        lines.append("")
        lines.append("per-category time:")
        lines.append(
            "  %-12s %8s %8s %10s %8s"
            % ("category", "events", "spans", "total(s)", "% wall")
        )
        for cat, tot in sorted(
            self.categories.items(), key=lambda kv: -kv[1].total_dur
        ):
            pct = 100.0 * tot.total_dur / self.wall if self.wall else 0.0
            lines.append(
                "  %-12s %8d %8d %10.4f %7.1f%%"
                % (cat, tot.count, tot.spans, tot.total_dur, pct)
            )
        if self.workers:
            lines.append("")
            lines.append("worker utilization (load balance):")
            for w in self.workers:
                bar = "#" * int(round(40 * min(w.utilization, 1.0)))
                lines.append(
                    "  rank %-3d %5d tasks %8.3fs busy %6.1f%% |%-40s|"
                    % (w.rank, w.tasks, w.busy, 100 * w.utilization, bar)
                )
            lines.append("  mean utilization: %.1f%%" % (100 * self.efficiency))
        hists = self.trace.metrics.get("histograms", {})
        populated = [
            (name, h) for name, h in sorted(hists.items()) if h.get("count")
        ]
        if populated:
            lines.append("")
            lines.append("latency percentiles:")
            lines.append(
                "  %-24s %8s %10s %10s %10s %10s"
                % ("histogram", "n", "p50(s)", "p95(s)", "p99(s)", "max(s)")
            )
            for name, h in populated:
                lines.append(
                    "  %-24s %8d %10.6f %10.6f %10.6f %10.6f"
                    % (
                        name,
                        h["count"],
                        h.get("p50", 0.0),
                        h.get("p95", 0.0),
                        h.get("p99", 0.0),
                        h["max"],
                    )
                )
        counters = self.trace.metrics.get("counters", {})
        headline = [
            (name, counters[name])
            for name in sorted(counters)
            if "[" not in name  # skip per-rank gauge-style entries
        ]
        if headline:
            lines.append("")
            lines.append("counters:")
            for name, value in headline:
                if isinstance(value, float) and not value.is_integer():
                    lines.append("  %-36s %14.4f" % (name, value))
                else:
                    lines.append("  %-36s %14d" % (name, int(value)))
        return "\n".join(lines)

    def _critical_path_headline(self) -> str | None:
        """One-line causal summary when the trace carries provenance
        events (see :mod:`repro.obs.analyze` for the full report)."""
        if not any(e.category == "prov" for e in self.trace.events):
            return None
        from .analyze import Analysis

        a = Analysis.from_trace(self.trace)
        if not a.critical_path:
            return None
        dominant = max(a.stalls.items(), key=lambda kv: kv[1])
        return (
            "critical path: %d hops, %.4fs serial compute floor, "
            "dominant stall %s (%.1f%%) — see `repro analyze`"
            % (
                len(a.critical_path),
                a.serial_compute,
                dominant[0],
                100.0 * dominant[1] / a.makespan if a.makespan else 0.0,
            )
        )

    def __str__(self) -> str:
        return self.render()
