"""Post-run aggregation: turn a Trace into a human-readable profile.

The profile mirrors the measurements behind the paper's figures:
per-category time totals (where did the run spend its time), per-worker
utilization (the load-balance efficiency of Fig. 3), and the headline
ADLB/MPI counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import CategoryTotal, Trace

#: span category emitted by workers around each leaf task
TASK = "task"


@dataclass
class WorkerUtilization:
    rank: int
    tasks: int
    busy: float
    utilization: float  # busy / wall


@dataclass
class Profile:
    """Aggregated view of one trace (``RunResult.profile``)."""

    trace: Trace
    wall: float = 0.0
    categories: dict[str, CategoryTotal] = field(default_factory=dict)
    workers: list[WorkerUtilization] = field(default_factory=list)
    efficiency: float = 0.0  # mean worker utilization (paper Fig. 3)

    @classmethod
    def from_trace(cls, trace: Trace) -> "Profile":
        wall = trace.meta.get("elapsed") or 0.0
        if not wall and trace.events:
            wall = max(e.end for e in trace.events) - min(
                e.t for e in trace.events
            )
        prof = cls(trace=trace, wall=wall, categories=trace.by_category())
        busy_by_rank: dict[int, float] = {}
        tasks_by_rank: dict[int, int] = {}
        for e in trace.spans(TASK):
            busy_by_rank[e.rank] = busy_by_rank.get(e.rank, 0.0) + e.dur
            tasks_by_rank[e.rank] = tasks_by_rank.get(e.rank, 0) + 1
        roles: dict = trace.meta.get("roles", {})
        worker_ranks = sorted(
            set(busy_by_rank)
            | {r for r, role in roles.items() if role == "worker"}
        )
        for rank in worker_ranks:
            busy = busy_by_rank.get(rank, 0.0)
            prof.workers.append(
                WorkerUtilization(
                    rank=rank,
                    tasks=tasks_by_rank.get(rank, 0),
                    busy=busy,
                    utilization=(busy / wall) if wall else 0.0,
                )
            )
        if prof.workers:
            prof.efficiency = sum(w.utilization for w in prof.workers) / len(
                prof.workers
            )
        return prof

    # ----------------------------------------------------------- rendering

    def render(self) -> str:
        lines: list[str] = []
        lines.append("profile: %.3fs wall, %d events" % (self.wall, len(self.trace)))
        if self.trace.dropped:
            lines.append(
                "  (ring buffer wrapped: %d oldest events dropped)"
                % self.trace.dropped
            )
        headline = self._critical_path_headline()
        if headline:
            lines.append(headline)
        lines.append("")
        lines.append("per-category time:")
        lines.append(
            "  %-12s %8s %8s %10s %8s"
            % ("category", "events", "spans", "total(s)", "% wall")
        )
        for cat, tot in sorted(
            self.categories.items(), key=lambda kv: -kv[1].total_dur
        ):
            pct = 100.0 * tot.total_dur / self.wall if self.wall else 0.0
            lines.append(
                "  %-12s %8d %8d %10.4f %7.1f%%"
                % (cat, tot.count, tot.spans, tot.total_dur, pct)
            )
        if self.workers:
            lines.append("")
            lines.append("worker utilization (load balance):")
            for w in self.workers:
                bar = "#" * int(round(40 * min(w.utilization, 1.0)))
                lines.append(
                    "  rank %-3d %5d tasks %8.3fs busy %6.1f%% |%-40s|"
                    % (w.rank, w.tasks, w.busy, 100 * w.utilization, bar)
                )
            lines.append("  mean utilization: %.1f%%" % (100 * self.efficiency))
        counters = self.trace.metrics.get("counters", {})
        headline = [
            (name, counters[name])
            for name in sorted(counters)
            if "[" not in name  # skip per-rank gauge-style entries
        ]
        if headline:
            lines.append("")
            lines.append("counters:")
            for name, value in headline:
                if isinstance(value, float) and not value.is_integer():
                    lines.append("  %-36s %14.4f" % (name, value))
                else:
                    lines.append("  %-36s %14d" % (name, int(value)))
        return "\n".join(lines)

    def _critical_path_headline(self) -> str | None:
        """One-line causal summary when the trace carries provenance
        events (see :mod:`repro.obs.analyze` for the full report)."""
        if not any(e.category == "prov" for e in self.trace.events):
            return None
        from .analyze import Analysis

        a = Analysis.from_trace(self.trace)
        if not a.critical_path:
            return None
        dominant = max(a.stalls.items(), key=lambda kv: kv[1])
        return (
            "critical path: %d hops, %.4fs serial compute floor, "
            "dominant stall %s (%.1f%%) — see `repro analyze`"
            % (
                len(a.critical_path),
                a.serial_compute,
                dominant[0],
                100.0 * dominant[1] / a.makespan if a.makespan else 0.0,
            )
        )

    def __str__(self) -> str:
        return self.render()
