"""repro.obs: the unified runtime tracing/metrics layer.

One substrate for every measurement in the repo: a low-overhead
structured event tracer (:class:`Tracer` -> :class:`Trace`), a metrics
registry (:class:`Metrics`), and post-run aggregation
(:class:`Profile`) with a Chrome ``trace_event`` exporter.

Instrumented layers and their event categories:

========== =============================================================
category   emitted by
========== =============================================================
``mpi``    :mod:`repro.mpi.comm` — send instants (bytes, queue depth),
           recv wait spans
``adlb``   :mod:`repro.adlb.server` — put/get/steal instants, data-op
           instants (store/retrieve/refcount/...)
``rule``   :mod:`repro.turbine.engine` — rule create/fire/release,
           close notifications
``engine`` :mod:`repro.turbine.engine` — dataflow stall (wait) spans
``task``   :mod:`repro.turbine.worker` — one span per leaf task
``compile``:mod:`repro.core.compiler` — parse/check/codegen phases
``run``    :mod:`repro.turbine.runtime` — whole-run span
========== =============================================================

Metric counter namespaces beyond the per-category event totals:
``adlb.lease.*`` (granted/requeued/expired/dead_ranks/failed_permanent,
from the server lease table) and ``fault.*`` (kills/task_errors/
slow_tasks/dropped_msgs/delayed_msgs, from an attached
:class:`repro.faults.FaultPlan`).  Both appear only on traced runs with
the corresponding machinery enabled.

Tracing is off by default and zero-cost when off: call sites test a
``tracer is None`` fast path.  Enable with ``swift_run(..., trace=True)``,
``RuntimeConfig(trace=True)``, or the ``repro profile`` / ``repro trace``
CLI subcommands.
"""

from .metrics import HistogramSummary, Metrics
from .report import Profile, WorkerUtilization
from .trace import RANK_DRIVER, CategoryTotal, Trace, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "Trace",
    "TraceEvent",
    "CategoryTotal",
    "Metrics",
    "HistogramSummary",
    "Profile",
    "WorkerUtilization",
    "RANK_DRIVER",
]
