"""repro.obs: the unified runtime tracing/metrics layer.

One substrate for every measurement in the repo: a low-overhead
structured event tracer (:class:`Tracer` -> :class:`Trace`), a metrics
registry (:class:`Metrics`), post-run aggregation (:class:`Profile`),
causal dataflow analysis (:class:`Analysis`), live run monitoring
(:class:`RunMonitor`), and a Chrome ``trace_event`` exporter.

Instrumented layers and their event categories:

========== =============================================================
category   emitted by
========== =============================================================
``mpi``    :mod:`repro.mpi.comm` — send instants (bytes, queue depth),
           recv wait spans
``adlb``   :mod:`repro.adlb.server` — put/get/steal instants, data-op
           instants (store/retrieve/refcount/...), lease requeues,
           replica promotions
``rule``   :mod:`repro.turbine.engine` — rule create/fire/release,
           close notifications; ``create`` carries the waited-on TD
           ids and the registering unit (lineage edges)
``engine`` :mod:`repro.turbine.engine` — dataflow stall (wait) spans,
           program/ctask unit spans (``unit``/``ok`` payloads)
``task``   :mod:`repro.turbine.worker` — one span per leaf task
           execution, failed attempts included
``prov``   provenance instants: ``write`` (client stores: td <- unit),
           ``task`` (server accepts: uid <- spawning rule/unit),
           ``grant`` (server hands uid to a client; attempt counter),
           ``refcount_flush`` (batched decrements <- unit)
``repl``   :mod:`repro.adlb.server` — op-log flushes with current
           replication lag
``compile``:mod:`repro.core.compiler` — parse/check/codegen phases
``run``    :mod:`repro.turbine.runtime` — whole-run span
========== =============================================================

Metric counter namespaces beyond the per-category event totals:
``adlb.lease.*`` (granted/requeued/expired/dead_ranks/failed_permanent,
from the server lease table), ``adlb.repl.*`` (batches/entries sent and
applied, promotions, server deaths, peak ``max_lag``) and ``fault.*``
(kills/task_errors/slow_tasks/dropped_msgs/delayed_msgs, from an
attached :class:`repro.faults.FaultPlan`).  All appear only on traced
runs with the corresponding machinery enabled.

Tracing is off by default and zero-cost when off: call sites test a
``tracer is None`` fast path.  Enable with ``swift_run(..., trace=True)``,
``RuntimeConfig(trace=True)``, or the ``repro profile`` / ``repro trace``
/ ``repro analyze`` CLI subcommands.  Live monitoring
(``swift_run(..., monitor=True)`` / ``repro run --monitor``) is
independent of tracing and costs one status dict per server per
interval.

Complementary to (and independent of) tracing, the *flight recorder*
(:class:`FlightRecorder`, :mod:`repro.obs.flightrec`) is ON by default:
bounded per-rank rings of Lamport-stamped lifecycle events that are
snapshotted into a ``blackbox-*.json`` artifact on any failure path and
replayed offline by ``repro postmortem`` (:mod:`repro.obs.postmortem`).
"""

from .analyze import Analysis, Hop, Unit
from .flightrec import FlightRecorder, write_blackbox
from .metrics import HistogramSummary, Metrics
from .monitor import MonitorSample, RunMonitor
from .postmortem import load_blackbox, render_postmortem
from .report import Profile, WorkerUtilization
from .trace import RANK_DRIVER, CategoryTotal, Trace, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "Trace",
    "TraceEvent",
    "CategoryTotal",
    "Metrics",
    "HistogramSummary",
    "Profile",
    "WorkerUtilization",
    "Analysis",
    "Hop",
    "Unit",
    "MonitorSample",
    "RunMonitor",
    "FlightRecorder",
    "write_blackbox",
    "load_blackbox",
    "render_postmortem",
    "RANK_DRIVER",
]
