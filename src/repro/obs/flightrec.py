"""The always-on flight recorder: bounded per-rank rings + Lamport clocks.

Tracing (:class:`repro.obs.Tracer`) is opt-in and off by default, so an
untraced run that dies leaves almost no evidence.  The flight recorder
is the complementary black box: every run keeps a small, fixed-size
ring of lifecycle events per rank — message send/recv headers (never
payloads), task grant/start/finish/fail, rule create/fire,
lease/journal/replication transitions, refcount-flush markers — and on
any failure path the launcher snapshots the rings, the stuck ranks'
stacks, and the registered server diagnostics into one
``blackbox-*.json`` artifact that ``repro postmortem`` can replay.

Cost discipline: each ring slot is allocated the first time it is
reached and mutated in place forever after, so the warm hot path
allocates nothing — a handful of index assignments and a
``perf_counter`` read per event — and recorder construction costs
nothing up front.  The per-message send/recv stamps are additionally
inlined into ``mpi.comm`` (see the note there) so the steady-state
cost per message is bytecode only, no method call.
Each rank's ring is written only by that rank's thread (the worker
watchdog's failure oneway is the lone, benign exception), so there are
no locks.  When the recorder is disabled every instrumented call site
degrades to a single ``is None`` pointer test, same as ``tracer`` and
``faults``.

Causal order comes from Lamport clocks: every recorded event advances
the rank's logical clock, every ``mpi.comm`` send piggybacks the
sender's clock on the message envelope, and every recv merges it
(``clock = max(local, seen)``) before recording.  Sorting the merged
rings by ``(lamport, t, rank)`` therefore never places a receive before
its send, which is what lets the post-mortem walk cross-rank edges.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Any

_clock = time.perf_counter

#: Artifact schema tag; bump when the envelope layout changes.
BLACKBOX_FORMAT = "repro-blackbox-v1"

#: Field order of one encoded ring slot (see :meth:`FlightRecorder.snapshot`).
EVENT_FIELDS = ("lam", "t", "kind", "a", "b", "c")

_DUMP_SEQ = itertools.count(1)

# Recycled slot lists.  Rings grow by popping here instead of
# allocating, and a run that shuts down cleanly returns its slots via
# FlightRecorder.release().  Reuse keeps the recorder's per-run GC
# allocation delta at zero: a few hundred fresh container allocations
# per run would shift the collector's cadence so collections land
# inside recorder-on runs, which bench_obs_overhead then reads as
# phantom overhead.  list.append/pop are atomic under the GIL, so rank
# threads may grow rings concurrently without a lock; the cap keeps a
# pathological flightrec_capacity from pinning memory forever.
_SLOT_POOL: list[list] = []
_SLOT_POOL_MAX = 1 << 14


class _RankRing:
    """One rank's event ring.  Single-writer, lock-free.

    Slots are allocated on first use (``idx == len(slots)`` while the
    ring is still growing toward capacity) and then mutated in place
    forever — a wrap overwrites the oldest event.  Growing lazily
    instead of preallocating ``capacity`` lists up front keeps recorder
    construction off the per-run critical path: a short run pays only
    for the slots it actually stamps.
    """

    __slots__ = ("slots", "idx", "emitted", "clock")

    def __init__(self, capacity: int):
        self.slots: list[list] = []
        self.idx = 0
        self.emitted = 0
        self.clock = 0


class FlightRecorder:
    """Per-rank rings of curated lifecycle events, always on by default.

    ``record(rank, kind, a, b, c)`` is the single hot-path entry: it
    advances the rank's Lamport clock, stamps the next preallocated
    slot, and returns the new clock value.  ``a``/``b``/``c`` are small
    ints or short strings whose meaning depends on ``kind`` (documented
    in :mod:`repro.obs.postmortem`); payloads are never captured.
    """

    __slots__ = ("size", "capacity", "epoch", "_rings")

    def __init__(self, size: int, capacity: int = 512):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.size = size
        self.capacity = capacity
        self.epoch = _clock()
        self._rings = [_RankRing(capacity) for _ in range(size)]

    # ------------------------------------------------------------ recording

    def record(self, rank: int, kind: str, a: Any = 0, b: Any = 0, c: Any = 0) -> int:
        ring = self._rings[rank]
        clock = ring.clock + 1
        ring.clock = clock
        i = ring.idx
        slots = ring.slots
        if i == len(slots):
            try:
                slot = _SLOT_POOL.pop()
            except IndexError:
                slot = [0, 0.0, "", 0, 0, 0]
            slots.append(slot)
        else:
            slot = slots[i]
        slot[0] = clock
        slot[1] = _clock() - self.epoch
        slot[2] = kind
        slot[3] = a
        slot[4] = b
        slot[5] = c
        ring.idx = 0 if i + 1 == self.capacity else i + 1
        ring.emitted += 1
        return clock

    # note_send/note_recv duplicate record()'s body instead of
    # delegating: they run once per message on every rank, and the
    # saved call keeps the recorder inside its 1.05x end-to-end budget
    # (bench_obs_overhead.test_flightrec_overhead_guard).

    def note_send(self, rank: int, dest: int, tag: int, size: int) -> int:
        """Record a send header; the returned clock rides the envelope."""
        ring = self._rings[rank]
        clock = ring.clock + 1
        ring.clock = clock
        i = ring.idx
        slots = ring.slots
        if i == len(slots):
            try:
                slot = _SLOT_POOL.pop()
            except IndexError:
                slot = [0, 0.0, "", 0, 0, 0]
            slots.append(slot)
        else:
            slot = slots[i]
        slot[0] = clock
        slot[1] = _clock() - self.epoch
        slot[2] = "send"
        slot[3] = dest
        slot[4] = tag
        slot[5] = size
        ring.idx = 0 if i + 1 == self.capacity else i + 1
        ring.emitted += 1
        return clock

    def note_recv(self, rank: int, source: int, tag: int, seen: int) -> int:
        """Merge the sender's piggybacked clock, then record the recv."""
        ring = self._rings[rank]
        clock = ring.clock
        if seen > clock:
            clock = seen
        clock += 1
        ring.clock = clock
        i = ring.idx
        slots = ring.slots
        if i == len(slots):
            try:
                slot = _SLOT_POOL.pop()
            except IndexError:
                slot = [0, 0.0, "", 0, 0, 0]
            slots.append(slot)
        else:
            slot = slots[i]
        slot[0] = clock
        slot[1] = _clock() - self.epoch
        slot[2] = "recv"
        slot[3] = source
        slot[4] = tag
        slot[5] = seen
        ring.idx = 0 if i + 1 == self.capacity else i + 1
        ring.emitted += 1
        return clock

    def clock(self, rank: int) -> int:
        return self._rings[rank].clock

    def release(self) -> None:
        """Return every ring's slots to the reuse pool.

        Only call when no rank thread can stamp again — the launcher's
        clean-shutdown path, after every rank joined (and after any
        final snapshot, which copies the rows it keeps).  Failed runs
        skip release on purpose: an abandoned rank thread may still be
        alive, and it must never write into slots a later run owns.
        """
        pool = _SLOT_POOL
        for ring in self._rings:
            slots = ring.slots
            ring.slots = []
            ring.idx = 0
            if len(pool) + len(slots) <= _SLOT_POOL_MAX:
                pool.extend(slots)

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> list[dict]:
        """Decode every ring, oldest event first.

        Returns one dict per rank: ``events`` is a list of
        ``[lam, t, kind, a, b, c]`` rows (see :data:`EVENT_FIELDS`),
        ``dropped`` counts events lost to ring wrap, ``clock`` is the
        rank's final Lamport clock.
        """
        out = []
        for ring in self._rings:
            # len(slots) rather than capacity: a growing ring has only
            # as many slots as events, and a released ring has none.
            n = min(ring.emitted, len(ring.slots))
            start = ring.idx - n
            events = []
            for k in range(n):
                slot = ring.slots[(start + k) % self.capacity]
                events.append(list(slot))
            out.append(
                {
                    "events": events,
                    "dropped": ring.emitted - n,
                    "clock": ring.clock,
                }
            )
        return out

    def blackbox(
        self,
        reason: str,
        detail: str = "",
        roles: list[str] | None = None,
        stacks: dict[int, str] | None = None,
        diagnostics: dict[int, str] | None = None,
        failed_ranks: list[int] | None = None,
    ) -> dict:
        """Assemble the black-box artifact around a ring snapshot.

        ``reason`` names the failure class (exception type or
        ``"quarantine"``), ``stacks`` holds the Python stacks of ranks
        still alive at capture time, ``diagnostics`` the one-line state
        summaries of registered servers, ``failed_ranks`` the ranks the
        launcher blamed.  The dict is JSON-serializable as-is.
        """
        return {
            "format": BLACKBOX_FORMAT,
            "reason": reason,
            "detail": detail,
            "size": self.size,
            "capacity": self.capacity,
            "roles": list(roles) if roles is not None else None,
            "failed_ranks": sorted(failed_ranks or []),
            "stacks": {str(r): s for r, s in (stacks or {}).items()},
            "diagnostics": {str(r): d for r, d in (diagnostics or {}).items()},
            "rings": self.snapshot(),
        }


def write_blackbox(box: dict, out_dir: str, stem: str | None = None) -> str:
    """Write a black-box dict to ``out_dir/blackbox-<stem>-<n>.json``.

    The sequence number keeps repeated failures in one process from
    clobbering each other; the path is returned for reporting.
    """
    os.makedirs(out_dir, exist_ok=True)
    label = (stem or box.get("reason", "failure")).lower().replace(" ", "-")
    path = os.path.join(
        out_dir, "blackbox-%s-%d-%d.json" % (label, os.getpid(), next(_DUMP_SEQ))
    )
    with open(path, "w", encoding="utf-8") as f:
        json.dump(box, f, indent=1)
        f.write("\n")
    return path
