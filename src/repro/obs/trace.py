"""The structured event tracer: a per-run ring buffer of timed events.

Every runtime layer emits into one :class:`Tracer` — the MPI substrate
(send/recv latency and bytes), the ADLB servers (put/get/steal/data
ops), the Turbine engines (rule firing, dataflow stalls) and workers
(leaf-task spans), and the STC compiler (phase timings).  Events are
``(t, dur, rank, category, name, payload)`` records; spans are events
with ``dur > 0``, instants have ``dur == 0``.

Tracing is strictly opt-in and zero-cost when disabled: every
instrumented call site holds a ``tracer`` reference that is ``None``
unless the run was started with ``trace=True``, so the fast path is a
single attribute load and ``is None`` test.  When enabled, events go
into a bounded :class:`collections.deque` (appends are atomic under the
GIL, so rank threads never contend on a lock) and the oldest events are
discarded once ``capacity`` is reached.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .metrics import Metrics

_clock = time.perf_counter

#: rank id used for events that happen outside the rank world
#: (e.g. compile phases run on the launching thread).
RANK_DRIVER = -1


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace record.  ``t`` is seconds since the tracer's epoch."""

    t: float
    dur: float
    rank: int
    category: str
    name: str
    payload: dict | None = None

    @property
    def end(self) -> float:
        return self.t + self.dur


class Tracer:
    """Collects events from all rank threads of one (or more) runs.

    A single Tracer may outlive one run: the session API shares a
    tracer across every ``rt.run(...)`` inside a ``with`` block so
    traces compose.  :meth:`freeze` snapshots the current contents as
    an immutable :class:`Trace`.
    """

    def __init__(self, capacity: int = 1 << 16):
        self.capacity = capacity
        self.epoch = _clock()
        self.metrics = Metrics()
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._emitted = 0

    # ----------------------------------------------------------- recording

    def now(self) -> float:
        """Timestamp for a span start (pass back to :meth:`complete`)."""
        return _clock()

    def instant(
        self, rank: int, category: str, name: str, payload: dict | None = None
    ) -> None:
        self._emitted += 1
        self._events.append(
            TraceEvent(_clock() - self.epoch, 0.0, rank, category, name, payload)
        )

    def complete(
        self,
        rank: int,
        category: str,
        name: str,
        t0: float,
        t1: float | None = None,
        payload: dict | None = None,
    ) -> None:
        """Record a finished span that started at ``t0`` (from :meth:`now`)."""
        if t1 is None:
            t1 = _clock()
        self._emitted += 1
        self._events.append(
            TraceEvent(t0 - self.epoch, t1 - t0, rank, category, name, payload)
        )

    def span(
        self, rank: int, category: str, name: str, payload: dict | None = None
    ) -> "_Span":
        """Context manager recording a span around a ``with`` block."""
        return _Span(self, rank, category, name, payload)

    # ----------------------------------------------------------- snapshots

    @property
    def dropped(self) -> int:
        """Events discarded because the ring buffer wrapped."""
        return self._emitted - len(self._events)

    def events(self, since: float = 0.0) -> list[TraceEvent]:
        """Time-ordered snapshot of the retained events.

        ``since`` filters to events starting at or after that tracer
        timestamp — session tracers span several runs, and post-run
        passes (latency histograms) must only consume their own run.
        """
        return sorted(
            (e for e in self._events if e.t >= since), key=lambda e: e.t
        )

    def freeze(self, meta: dict | None = None) -> "Trace":
        """Snapshot current events + metrics as an immutable Trace."""
        events = sorted(self._events, key=lambda e: e.t)
        return Trace(
            events=events,
            metrics=self.metrics.snapshot(),
            meta=dict(meta or {}),
            dropped=self.dropped,
        )


class _Span:
    __slots__ = ("tracer", "rank", "category", "name", "payload", "t0")

    def __init__(self, tracer, rank, category, name, payload):
        self.tracer = tracer
        self.rank = rank
        self.category = category
        self.name = name
        self.payload = payload

    def __enter__(self) -> "_Span":
        self.t0 = _clock()
        return self

    def __exit__(self, *exc) -> None:
        self.tracer.complete(
            self.rank, self.category, self.name, self.t0, payload=self.payload
        )


@dataclass
class CategoryTotal:
    """Aggregate of one event category (see :meth:`Trace.by_category`)."""

    count: int = 0
    spans: int = 0
    total_dur: float = 0.0


@dataclass
class Trace:
    """An immutable snapshot of a tracer: the public trace object.

    ``meta`` carries run-level context (role layout, elapsed wall time);
    ``metrics`` is the merged counter/gauge/histogram snapshot.
    """

    events: list[TraceEvent] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    dropped: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def spans(
        self, category: str | None = None, name: str | None = None
    ) -> list[TraceEvent]:
        """All span events (dur > 0), optionally filtered."""
        return [
            e
            for e in self.events
            if e.dur > 0.0
            and (category is None or e.category == category)
            and (name is None or e.name == name)
        ]

    def instants(self, category: str | None = None) -> list[TraceEvent]:
        return [
            e
            for e in self.events
            if e.dur == 0.0 and (category is None or e.category == category)
        ]

    def by_category(self) -> dict[str, CategoryTotal]:
        out: dict[str, CategoryTotal] = {}
        for e in self.events:
            tot = out.setdefault(e.category, CategoryTotal())
            tot.count += 1
            if e.dur > 0.0:
                tot.spans += 1
                tot.total_dur += e.dur
        return out

    # ------------------------------------------------------------- export

    def _message_flows(self) -> tuple[dict[int, int], dict[int, int]]:
        """Pair each mpi ``send`` instant with its matching ``recv``.

        Returns ``(send_flows, recv_flows)`` mapping ``id(event)`` to a
        shared flow id.  Pairing uses the piggybacked Lamport stamp
        (``lam`` in both payloads) when the run kept a flight recorder
        — exact, since send clocks are unique per rank — and falls back
        to per-``(src, dest, tag)`` ordinal matching otherwise (one
        channel is FIFO, and both endpoints are single-threaded, so the
        k-th send matches the k-th recv).  Unmatched events (dropped by
        the ring, or still in flight) get no flow.
        """
        recv_by_lam: dict[tuple, TraceEvent] = {}
        recv_ord: dict[tuple, list[TraceEvent]] = {}
        for e in self.events:
            if e.category != "mpi" or e.name != "recv" or not e.payload:
                continue
            key = (e.payload.get("source"), e.rank, e.payload.get("tag"))
            lam = e.payload.get("lam", 0)
            if lam:
                recv_by_lam[key + (lam,)] = e
            else:
                recv_ord.setdefault(key, []).append(e)
        send_flows: dict[int, int] = {}
        recv_flows: dict[int, int] = {}
        ord_idx: dict[tuple, int] = {}
        next_id = 0
        for e in self.events:
            if e.category != "mpi" or e.name != "send" or not e.payload:
                continue
            key = (e.rank, e.payload.get("dest"), e.payload.get("tag"))
            lam = e.payload.get("lam", 0)
            match = None
            if lam:
                match = recv_by_lam.get(key + (lam,))
            else:
                i = ord_idx.get(key, 0)
                candidates = recv_ord.get(key)
                if candidates and i < len(candidates):
                    match = candidates[i]
                    ord_idx[key] = i + 1
            if match is not None:
                next_id += 1
                send_flows[id(e)] = next_id
                recv_flows[id(match)] = next_id
        return send_flows, recv_flows

    def _chrome_records(self):
        """Yield Chrome ``trace_event`` records one at a time."""
        roles: dict = self.meta.get("roles", {})
        for rank in sorted({e.rank for e in self.events}):
            role = roles.get(rank, "driver" if rank == RANK_DRIVER else "rank")
            yield {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": rank,
                "args": {"name": "rank %d (%s)" % (rank, role)},
            }
        send_flows, recv_flows = self._message_flows()
        for e in self.events:
            rec: dict = {
                "name": e.name,
                "cat": e.category,
                "pid": 0,
                "tid": e.rank,
                "ts": e.t * 1e6,  # trace_event timestamps are microseconds
            }
            if e.dur > 0.0:
                rec["ph"] = "X"
                rec["dur"] = e.dur * 1e6
            else:
                rec["ph"] = "i"
                rec["s"] = "t"
            if e.payload:
                rec["args"] = dict(e.payload)
            yield rec
            if e.category != "mpi":
                continue
            # Flow events ("s" start at the send, "f" finish bound to
            # the end of the recv span) let Perfetto draw cross-rank
            # message arrows.  from_chrome skips non-X/i phases, so the
            # round-trip stays lossless for the event list itself.
            fid = send_flows.get(id(e))
            if fid is not None:
                yield {
                    "ph": "s",
                    "id": fid,
                    "name": "msg",
                    "cat": "mpi.flow",
                    "pid": 0,
                    "tid": e.rank,
                    "ts": e.t * 1e6,
                }
                continue
            fid = recv_flows.get(id(e))
            if fid is not None:
                yield {
                    "ph": "f",
                    "bp": "e",
                    "id": fid,
                    "name": "msg",
                    "cat": "mpi.flow",
                    "pid": 0,
                    "tid": e.rank,
                    "ts": e.end * 1e6,
                }

    def _chrome_other_data(self) -> dict:
        return {
            "dropped_events": self.dropped,
            "metrics": self.metrics,
            "roles": {str(k): v for k, v in self.meta.get("roles", {}).items()},
            **{k: v for k, v in self.meta.items() if k != "roles"},
        }

    def to_chrome(self) -> dict:
        """Render as a Chrome ``trace_event`` JSON object.

        Load the saved file in ``chrome://tracing`` or https://ui.perfetto.dev.
        Spans become complete ("X") events, instants become instant
        ("i") events; rank threads are named from ``meta['roles']``.
        Prefer :meth:`write_chrome` for saving: it streams records
        instead of materializing the whole document.
        """
        return {
            "traceEvents": list(self._chrome_records()),
            "displayTimeUnit": "ms",
            "otherData": self._chrome_other_data(),
        }

    def write_chrome(self, f) -> None:
        """Stream the Chrome ``trace_event`` JSON to a file object.

        Writes one record at a time, so peak memory is one event
        instead of the whole serialized document (traces routinely hold
        hundreds of thousands of events).
        """
        import json

        f.write('{"traceEvents": [\n')
        first = True
        for rec in self._chrome_records():
            if not first:
                f.write(",\n")
            first = False
            f.write(json.dumps(rec))
        f.write('\n],\n"displayTimeUnit": "ms",\n"otherData": ')
        json.dump(self._chrome_other_data(), f)
        f.write("}\n")

    def save_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            self.write_chrome(f)

    @classmethod
    def from_chrome(cls, path_or_dict) -> "Trace":
        """Rebuild a Trace from a saved Chrome ``trace_event`` JSON.

        Inverse of :meth:`write_chrome` (modulo event order); lets
        ``repro analyze`` work on a saved ``.trace.json`` without
        re-running the program.
        """
        import json

        if isinstance(path_or_dict, dict):
            doc = path_or_dict
        else:
            with open(path_or_dict, "r", encoding="utf-8") as f:
                doc = json.load(f)
        events: list[TraceEvent] = []
        for rec in doc.get("traceEvents", ()):
            ph = rec.get("ph")
            if ph not in ("X", "i"):
                continue
            events.append(
                TraceEvent(
                    t=rec.get("ts", 0.0) / 1e6,
                    dur=rec.get("dur", 0.0) / 1e6 if ph == "X" else 0.0,
                    rank=rec.get("tid", 0),
                    category=rec.get("cat", ""),
                    name=rec.get("name", ""),
                    payload=rec.get("args"),
                )
            )
        events.sort(key=lambda e: e.t)
        other = doc.get("otherData", {})
        meta = {
            k: v
            for k, v in other.items()
            if k not in ("dropped_events", "metrics", "roles")
        }
        if "roles" in other:
            meta["roles"] = {int(k): v for k, v in other["roles"].items()}
        return cls(
            events=events,
            metrics=other.get("metrics", {}),
            meta=meta,
            dropped=other.get("dropped_events", 0),
        )
