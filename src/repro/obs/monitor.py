"""Live run monitoring.

Servers periodically report a small status dict (tasks matched, queue
depth, parked clients, lease and replication lag) to the master server,
which feeds a shared :class:`RunMonitor`.  A driver-side sampler thread
composes the per-rank statuses into :class:`MonitorSample` rows at a
fixed cadence; ``repro run --monitor`` renders each sample as a
one-line progress readout and the full timeline lands on
``RunResult.timeline``.

Everything here is thread-safe: server ranks (threads in the
thread-backed world) update concurrently with the driver sampler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class MonitorSample:
    """One composed snapshot of run-wide progress."""

    t: float  # seconds since run start
    tasks: int = 0  # tasks granted so far (all servers)
    queued: int = 0  # tasks sitting in work queues
    parked: int = 0  # clients parked waiting for work
    clients: int = 0  # clients attached across all servers
    leases: int = 0  # tasks handed out, completion pending
    repl_lag: int = 0  # op-log entries sent but unacked (max over servers)
    outstanding: int = -1  # termination-counter units (-1: master not seen)
    ranks: dict[int, dict] = field(default_factory=dict)

    @property
    def busy(self) -> int:
        """Clients not parked — an upper bound on ranks doing work."""
        return max(0, self.clients - self.parked)

    @property
    def utilization(self) -> float:
        return self.busy / self.clients if self.clients else 0.0

    def render(self) -> str:
        parts = [
            "t=%6.2fs" % self.t,
            "tasks=%d" % self.tasks,
            "queued=%d" % self.queued,
            "busy=%d/%d" % (self.busy, self.clients),
            "util=%3.0f%%" % (100.0 * self.utilization),
        ]
        if self.leases:
            parts.append("leases=%d" % self.leases)
        if self.repl_lag:
            parts.append("repl_lag=%d" % self.repl_lag)
        if self.outstanding >= 0:
            parts.append("outstanding=%d" % self.outstanding)
        return "[monitor] " + " ".join(parts)


class RunMonitor:
    """Shared sink for server status updates + composed timeline.

    ``update`` is called from server ranks (master directly, others via
    ``SOP_STATUS`` relayed through the master); ``sample`` is called by
    the driver's sampler thread.
    """

    def __init__(self, out: Callable[[str], None] | None = None):
        self._lock = threading.Lock()
        self._status: dict[int, dict] = {}
        self.samples: list[MonitorSample] = []
        self.out = out

    def update(self, rank: int, status: dict) -> None:
        with self._lock:
            self._status[rank] = dict(status)

    def sample(self, t: float) -> MonitorSample:
        with self._lock:
            ranks = {r: dict(s) for r, s in self._status.items()}
        s = MonitorSample(t=t, ranks=ranks)
        for status in ranks.values():
            s.tasks += status.get("matched", 0)
            s.queued += status.get("queued", 0)
            s.parked += status.get("parked", 0)
            s.clients += status.get("clients", 0)
            s.leases += status.get("leases", 0)
            s.repl_lag = max(s.repl_lag, status.get("repl_lag", 0))
            if "outstanding" in status:
                s.outstanding = status["outstanding"]
        with self._lock:
            self.samples.append(s)
        if self.out is not None:
            self.out(s.render())
        return s


__all__ = ["MonitorSample", "RunMonitor"]
