"""Offline forensics over ``blackbox-*.json`` flight-recorder artifacts.

``repro postmortem <blackbox.json>`` answers the question a crashed
distributed run always raises: *what was each rank doing, and what was
the last thing the dead rank heard?*  The black box (written by
:mod:`repro.obs.flightrec` on every failure path) holds one bounded
event ring per rank, stamped with Lamport clocks that were piggybacked
on every MPI envelope.  Sorting the merged rings by ``(lamport, t,
rank)`` yields a timeline that never places a receive before its send,
so the tool can walk cross-rank message edges without any wall-clock
trust between threads.

The report has four parts:

* a header (failure reason, roles, blamed ranks);
* the merged causally-ordered timeline, trimmed to the last N events
  per rank;
* the *causal frontier*: for every blamed/quiet rank, its final event
  plus the last send edge into it from every peer, each marked
  ``delivered`` (a matching recv exists in the dead rank's ring) or
  ``in flight`` (sent but never received — the smoking gun for a rank
  that died mid-conversation);
* the captured server diagnostics and live-rank stacks.

Event-kind glossary (``a``/``b``/``c`` columns per kind):

========== ============================================================
kind       a, b, c
========== ============================================================
send       dest rank, MPI tag, payload size (bytes)
recv       source rank, MPI tag, sender's piggybacked Lamport clock
grant      client rank, task type, attempt counter
requeue    task type, attempt counter
lease_expired
           lease-holder rank, task type
rank_dead / server_dead / promote
           subject rank
engine_adopt
           dead engine rank, adopter rank, journaled rule count
adopt      (engine side) dead rank, rule count, repair decrement
quarantine task type, attempt count
journal    entry count, engine rank (server applying a batch)
journal_flush
           entry count (engine shipping a batch)
repl_flush entry count, replication lag
refcount_flush
           batched decrement-op count
task_start / task_done / task_abandon
           payload size (bytes)
task_fail  payload size (bytes), error class name
rule_create
           rule id, waited-on TD count
rule_fire / rule_release
           rule id (release also carries the rule type in ``b``)
ctask      control-task payload size (bytes)
shutdown   (server entered the shutdown protocol)
========== ============================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from .flightrec import BLACKBOX_FORMAT

#: MPI tag numbers -> short names (mirrors repro.adlb.protocol).
TAG_NAMES = {10: "req", 11: "resp", 12: "oneway", 13: "async", 14: "server"}

#: Default per-rank tail length in the rendered timeline.
DEFAULT_LAST = 12


@dataclass(frozen=True)
class BoxEvent:
    """One decoded ring slot, tagged with its rank."""

    rank: int
    lam: int
    t: float
    kind: str
    a: Any
    b: Any
    c: Any


def load_blackbox(source: str | dict) -> dict:
    """Load and validate a black-box artifact (path or already-parsed dict)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as f:
            box = json.load(f)
    else:
        box = source
    fmt = box.get("format") if isinstance(box, dict) else None
    if fmt != BLACKBOX_FORMAT:
        raise ValueError(
            "not a %s artifact (format=%r)" % (BLACKBOX_FORMAT, fmt)
        )
    return box


def merged_timeline(box: dict, last: int | None = None) -> list[BoxEvent]:
    """Merge every rank's ring into one causally-ordered event list.

    ``last`` trims each rank's ring to its final N events before the
    merge (the full rings are already bounded, but reports want the
    tail).  The sort key ``(lam, t, rank)`` is the whole point of the
    Lamport stamping: a recv's clock is always strictly greater than
    the matching send's, so cross-rank edges render in causal order.
    """
    events: list[BoxEvent] = []
    for rank, ring in enumerate(box.get("rings", [])):
        rows = ring.get("events", [])
        if last is not None:
            rows = rows[-last:]
        for lam, t, kind, a, b, c in rows:
            events.append(BoxEvent(rank, lam, t, kind, a, b, c))
    events.sort(key=lambda e: (e.lam, e.t, e.rank))
    return events


def causal_frontier(box: dict) -> dict[int, dict]:
    """Per-rank frontier: last event + last message edges into the rank.

    For each rank the result holds ``last`` (its final :class:`BoxEvent`
    or None for an empty ring) and ``inbound``: for every peer that sent
    to it, the peer's final send edge as a dict with ``src``, ``lam``,
    ``tag``, ``size`` and ``delivered`` (True when the target's ring
    contains a recv acknowledging a clock >= that send's).
    """
    rings = box.get("rings", [])
    per_rank: dict[int, list[BoxEvent]] = {
        r: [BoxEvent(r, *row) for row in ring.get("events", [])]
        for r, ring in enumerate(rings)
    }
    # Highest sender-clock each rank has acknowledged, per source rank.
    seen_from: dict[int, dict[int, int]] = {r: {} for r in per_rank}
    for r, events in per_rank.items():
        for e in events:
            if e.kind == "recv":
                src, clk = e.a, e.c
                if clk > seen_from[r].get(src, -1):
                    seen_from[r][src] = clk
    frontier: dict[int, dict] = {}
    for r, events in per_rank.items():
        inbound: dict[int, dict] = {}
        for src, src_events in per_rank.items():
            if src == r:
                continue
            for e in reversed(src_events):
                if e.kind == "send" and e.a == r:
                    inbound[src] = {
                        "src": src,
                        "lam": e.lam,
                        "tag": e.b,
                        "size": e.c,
                        "delivered": seen_from[r].get(src, -1) >= e.lam,
                    }
                    break
        frontier[r] = {
            "last": events[-1] if events else None,
            "inbound": [inbound[s] for s in sorted(inbound)],
        }
    return frontier


# --------------------------------------------------------------- rendering


def _role(roles, rank: int) -> str:
    if roles and 0 <= rank < len(roles):
        return roles[rank]
    return "?"


def _fmt_event(e: BoxEvent) -> str:
    if e.kind == "send":
        return "send -> %d %s %sB" % (e.a, TAG_NAMES.get(e.b, e.b), e.c)
    if e.kind == "recv":
        return "recv <- %d %s (saw c=%s)" % (
            e.a,
            TAG_NAMES.get(e.b, e.b),
            e.c,
        )
    parts = [e.kind]
    for label, v in (("a", e.a), ("b", e.b), ("c", e.c)):
        if v not in (0, "", None):
            parts.append("%s=%s" % (label, v))
    return " ".join(parts)


def render_postmortem(box: dict, last: int = DEFAULT_LAST) -> str:
    """Render the full post-mortem report for one black-box artifact."""
    roles = box.get("roles")
    failed = set(box.get("failed_ranks") or [])
    lines: list[str] = []
    lines.append("post-mortem: %s" % box.get("reason", "?"))
    if box.get("detail"):
        lines.append("  detail: %s" % box["detail"])
    lines.append(
        "  ranks: %d   ring capacity: %d" % (box.get("size", 0), box.get("capacity", 0))
    )
    if roles:
        lines.append(
            "  roles: %s" % " ".join("%d=%s" % (r, n) for r, n in enumerate(roles))
        )
    if failed:
        lines.append(
            "  failed ranks: %s"
            % ", ".join(
                "%d (%s)" % (r, _role(roles, r)) for r in sorted(failed)
            )
        )
    dropped = [
        (r, ring.get("dropped", 0))
        for r, ring in enumerate(box.get("rings", []))
        if ring.get("dropped")
    ]
    if dropped:
        lines.append(
            "  ring wrap: %s"
            % ", ".join("rank %d dropped %d" % rd for rd in dropped)
        )

    lines.append("")
    lines.append("causal timeline (last %d events per rank, merged):" % last)
    lines.append(
        "  %7s %9s %4s %-8s %s" % ("lam", "t(s)", "rank", "role", "event")
    )
    for e in merged_timeline(box, last=last):
        marker = "*" if e.rank in failed else " "
        lines.append(
            " %s%7d %9.4f %4d %-8s %s"
            % (marker, e.lam, e.t, e.rank, _role(roles, e.rank), _fmt_event(e))
        )
    if failed:
        lines.append("  (* = event on a failed rank)")

    frontier = causal_frontier(box)
    lines.append("")
    lines.append("causal frontier:")
    order = sorted(failed) + [r for r in sorted(frontier) if r not in failed]
    for r in order:
        info = frontier.get(r)
        if info is None:
            continue
        tag = " FAILED" if r in failed else ""
        e = info["last"]
        if e is None:
            lines.append("  rank %d (%s)%s: no recorded events" % (r, _role(roles, r), tag))
            continue
        lines.append(
            "  rank %d (%s)%s: last event lam=%d t=%.4f %s"
            % (r, _role(roles, r), tag, e.lam, e.t, _fmt_event(e))
        )
        if r in failed:
            for edge in info["inbound"]:
                status = (
                    "delivered"
                    if edge["delivered"]
                    else "NOT received (in flight when the rank went quiet)"
                )
                lines.append(
                    "    %d -> %d send lam=%d tag=%s %sB — %s"
                    % (
                        edge["src"],
                        r,
                        edge["lam"],
                        TAG_NAMES.get(edge["tag"], edge["tag"]),
                        edge["size"],
                        status,
                    )
                )

    diags = box.get("diagnostics") or {}
    if diags:
        lines.append("")
        lines.append("server diagnostics at capture:")
        for r in sorted(diags, key=int):
            lines.append("  rank %s: %s" % (r, diags[r]))

    stacks = box.get("stacks") or {}
    if stacks:
        lines.append("")
        lines.append("stacks of ranks alive at capture:")
        for r in sorted(stacks, key=int):
            lines.append("  rank %s (%s):" % (r, _role(roles, int(r))))
            for sl in stacks[r].splitlines():
                lines.append("    " + sl)
    return "\n".join(lines)
