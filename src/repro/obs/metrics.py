"""The metrics registry: named counters, gauges, and histograms.

Hot paths in the runtime keep their own per-rank stat structs (plain
dataclass fields, no locks — each rank thread owns its struct).  At the
end of a run those per-rank structs are *folded* into the tracer's
Metrics registry, which is also available for direct use by cold paths.
``snapshot()`` renders everything as plain dicts for reports and the
Chrome export.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

#: Bounded sample pool per histogram; beyond this, reservoir sampling
#: (Algorithm R with a fixed-seed RNG, so summaries are reproducible)
#: keeps a uniform subset for the percentile estimates.
RESERVOIR_SIZE = 512


@dataclass
class HistogramSummary:
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    _samples: list = field(default_factory=list, repr=False, compare=False)
    _rng: random.Random = field(
        default_factory=lambda: random.Random(0x5EED),
        repr=False,
        compare=False,
    )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < RESERVOIR_SIZE:
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) over the
        retained reservoir — exact until the pool overflows."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        k = max(0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered))) - 1))
        return ordered[k] if p > 0 else ordered[0]

    def as_dict(self) -> dict:
        if not self.count:
            return {
                "count": 0,
                "total": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Metrics:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------- updates

    def count(self, name: str, n: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            cur = self._gauges.get(name)
            if cur is None or value > cur:
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = HistogramSummary()
            hist.observe(value)

    def fold_struct(self, prefix: str, struct, rank: int | None = None) -> None:
        """Fold a per-rank stats dataclass into the registry.

        Numeric fields become ``prefix.field`` counters (summed across
        ranks); when ``rank`` is given, per-rank gauges
        ``prefix.field[rank]`` are kept as well so imbalance is visible.
        """
        from dataclasses import fields as dc_fields

        for f in dc_fields(struct):
            value = getattr(struct, f.name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            self.count("%s.%s" % (prefix, f.name), value)
            if rank is not None:
                self.gauge("%s.%s[%d]" % (prefix, f.name, rank), value)

    # ------------------------------------------------------------ reading

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.as_dict() for k, h in self._hists.items()},
            }
