"""The Swift/T runtime: wire MPI ranks into servers, engines, workers.

:func:`run_turbine_program` is the execution entry point used by the
public API: it launches a thread-backed MPI world, assigns roles per
the paper's Fig. 2 layout, loads the generated Tcl program on every
non-server rank (real Turbine does the same — this is what makes
worker-side procs resolvable), runs ``main`` on the first engine, and
collects output and statistics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..adlb import constants as C
from ..adlb.client import AdlbClient
from ..adlb.layout import Layout
from ..adlb.server import Server, ServerStats
from ..faults import (
    DeadlineExceeded,
    EngineLost,
    FaultState,
    RankKilled,
    ServerLost,
    TaskError,
    TaskFailure,
)
from ..mpi import Comm, RankFailure, run_world
from ..tcl.interp import Interp
from .builtins import register_turbine
from .engine import Engine, EngineStats
from .tcllib import TURBINE_TCL
from .worker import Worker, WorkerStats


# Old option names still accepted by with_options()/swift_run(); each
# maps to exactly one current option.  This is the documented old->new
# migration table (see CHANGES.md).
LEGACY_OPTIONS = {
    "record_spans": "trace",  # worker task spans now ride the obs tracer
}

_ROLE_OPTIONS = ("workers", "servers", "engines")


@dataclass
class RuntimeConfig:
    """Process layout and runtime options (Fig. 2 of the paper).

    This is the single home of every runtime knob: the public API
    (:func:`repro.swift_run`, :class:`repro.SwiftRuntime`) and the CLI
    both funnel options through :meth:`with_options`, so adding a field
    here is all it takes to expose a new option everywhere.
    """

    size: int = 4
    n_servers: int = 1
    n_engines: int = 1
    steal: bool = True
    # Enable the repro.obs tracer: structured events from the MPI,
    # ADLB, Turbine, and compile layers; RunResult.trace/.profile.
    trace: bool = False
    # Externally supplied tracer (session API); overrides ``trace``.
    tracer: Any | None = field(default=None, repr=False, compare=False)
    trace_capacity: int = 1 << 16
    echo: bool = False  # also print program output to real stdout
    # Live monitoring: servers piggyback per-rank status on heartbeats
    # to the master; a driver-side sampler composes MonitorSample rows
    # on RunResult.timeline every monitor_interval seconds.
    monitor: bool = False
    monitor_interval: float = 0.25
    # Callable fed one rendered line per sample (the CLI passes print);
    # None keeps monitoring silent (timeline only).
    monitor_out: Any | None = field(default=None, repr=False, compare=False)
    recv_timeout: float = 120.0
    # Interpreter state policy for embedded Python/R interpreters
    # (paper §III-C): "retain" keeps state across tasks, "reinit"
    # reinitializes per task.
    interp_mode: str = "retain"
    # --- hot-path optimizations (all on by default) -----------------
    # Compile-and-cache Tcl execution: per-command specialized forms
    # with epoch-invalidated command-pointer caches.
    tcl_compile: bool = True
    # Tcl execution backend: "vm" runs scripts on the bytecode VM
    # (explicit frame stack, inline command caches), "ast" walks the
    # compiled AST forms.  Ignored when tcl_compile is off.
    tcl_exec: str = "vm"
    # Client-side memoization of closed (immutable) TD values.
    read_cache: bool = True
    # Coalesce refcount decrements per TD, flushed at task boundaries.
    batch_refcounts: bool = True
    # --- fault tolerance --------------------------------------------
    # What happens when a unit of work raises: "retry" (default; the
    # server leases tasks and requeues failures up to max_retries with
    # backoff), "fail_fast" (abort promptly with a traceback-bearing
    # TaskError), or "continue" (record a TaskFailure on
    # RunResult.failures and keep draining).
    on_error: str = "retry"
    max_retries: int = 2
    retry_backoff: float = 0.05
    # Seconds a handed-out task may stay unacknowledged before its
    # rank is presumed dead and the task is requeued.
    lease_timeout: float = 60.0
    # Wall-clock limit for the whole run; on expiry the world is shut
    # down in an orderly way and DeadlineExceeded is raised.
    deadline: float | None = None
    # Seeded fault-injection plan (repro.faults.FaultPlan) or None.
    # The faults-off path costs a single `is None` test per hook.
    faults: Any | None = None
    # Always-on flight recorder (repro.obs.flightrec): bounded per-rank
    # rings of lifecycle events with Lamport clocks, snapshotted into a
    # black-box artifact on any failure path.  Unlike trace, this is ON
    # by default — the rings are preallocated and the per-event cost is
    # a few index assignments, bounded by the bench_obs_overhead guard.
    flightrec: bool = True
    # Events retained per rank before the ring wraps.
    flightrec_capacity: int = 512
    # Directory for blackbox-*.json dumps on failure; None keeps the
    # black box in memory only (exception .blackbox / RunResult.blackbox).
    blackbox_dir: str | None = None
    # Run-invariant auditing (repro.chaos.invariants): each rank
    # snapshots its terminal bookkeeping state (leases, journals,
    # dedup slots, pending refcounts, termination counter) once at
    # shutdown and the driver checks conservation laws over the rows.
    # Off by default; the audit-off path is a single flag test per
    # rank at teardown, so it stays within seed noise.
    audit: bool = False
    # Buddy replication of server state (survives server death).
    # None = auto: on when on_error == "retry" and there are at least
    # two servers (a lone server has no buddy).  Explicitly True with
    # n_servers < 2 is a configuration error.
    replicate: bool | None = None
    # Rule-table journaling: engines stream rule-lifecycle entries to
    # their anchor server so a dead engine's pending rules can be
    # replayed into a surviving engine (engine adoption).  None = auto:
    # on when on_error == "retry" and there are at least two engines
    # (a lone engine has no adopter).  Explicitly True with
    # n_engines < 2 is a configuration error.
    journal: bool | None = None
    # Per-task watchdog: a worker-side deadline (seconds) per unit of
    # work.  Overdue tasks are abandoned with a TaskTimeout fed into
    # the normal retry/lease path, and the worker recycles embedded
    # interpreter state before taking new work.  None disables.
    task_timeout: float | None = None
    # Periodic consistent checkpoints to this path (master-driven
    # two-phase snapshot), every checkpoint_interval seconds.
    checkpoint_path: str | None = None
    checkpoint_interval: float | None = None
    # Resume from a checkpoint written by a previous (same-shaped) run
    # instead of executing the program entry point.
    restore: str | None = None
    # Program arguments, readable from Swift via argv("name")
    args: dict = field(default_factory=dict)

    def layout(self) -> Layout:
        return Layout(self.size, self.n_servers, self.n_engines)

    @property
    def workers(self) -> int:
        return self.size - self.n_servers - self.n_engines

    @classmethod
    def of(
        cls, workers: int = 2, servers: int = 1, engines: int = 1, **options
    ) -> "RuntimeConfig":
        """Build a config from role counts instead of a total size."""
        cfg = cls(
            size=workers + servers + engines,
            n_servers=servers,
            n_engines=engines,
        )
        return cfg.with_options(**options) if options else cfg

    def with_options(self, **options) -> "RuntimeConfig":
        """Return a copy with the given options applied.

        Accepts every field name, the role counts ``workers`` /
        ``servers`` / ``engines`` (``size`` is recomputed), and the
        legacy names in :data:`LEGACY_OPTIONS`.  Unknown names raise
        ``TypeError`` — options never vanish silently.
        """
        from dataclasses import fields as dc_fields
        from dataclasses import replace

        valid = {f.name for f in dc_fields(self)}
        updates: dict[str, Any] = {}
        roles: dict[str, int] = {}
        for key, value in options.items():
            key = LEGACY_OPTIONS.get(key, key)
            if key in _ROLE_OPTIONS:
                roles[key] = value
            elif key in valid:
                updates[key] = value
            else:
                raise TypeError(
                    "unknown runtime option %r; valid options: %s"
                    % (key, ", ".join(sorted(valid | set(_ROLE_OPTIONS))))
                )
        cfg = replace(self, **updates)
        if roles:
            workers = roles.get("workers", self.workers)
            servers = roles.get("servers", cfg.n_servers)
            engines = roles.get("engines", cfg.n_engines)
            cfg.size = workers + servers + engines
            cfg.n_servers = servers
            cfg.n_engines = engines
        return cfg


class Output:
    """Thread-safe collector of program output across ranks."""

    def __init__(self, echo: bool = False, trace: bool = False):
        self._lock = threading.Lock()
        self.lines: list[tuple[int, str]] = []
        self.logs: list[tuple[int, str]] = []
        self.echo = echo
        self.trace = trace

    def emit(self, rank: int, line: str) -> None:
        with self._lock:
            self.lines.append((rank, line))
        if self.echo:
            print(line)

    def log(self, rank: int, line: str) -> None:
        if self.trace:
            with self._lock:
                self.logs.append((rank, line))

    def text(self) -> str:
        return "\n".join(line for _, line in self.lines)


@dataclass
class RankContext:
    """Per-rank state handed to builtin commands."""

    layout: Layout
    role: str
    output: Output
    config: RuntimeConfig


@dataclass
class RunResult:
    output: Output
    elapsed: float
    server_stats: list[ServerStats] = field(default_factory=list)
    engine_stats: list[EngineStats] = field(default_factory=list)
    worker_stats: list[WorkerStats] = field(default_factory=list)
    # Populated when the run was traced (trace=True / a session tracer).
    trace: Any | None = None
    # MonitorSample rows from a monitor=True run (chronological).
    timeline: list = field(default_factory=list)
    # Units of work that failed permanently but did not abort the run
    # (on_error="continue", or retries exhausted on a dead rank).
    failures: list[TaskFailure] = field(default_factory=list)
    # Units quarantined as poisonous: their attempts repeatedly killed
    # their host ranks, so the server withdrew them instead of
    # respawn-looping (repro.faults.QuarantinedTask records).
    quarantined: list = field(default_factory=list)
    # repro.chaos.invariants.RunAudit when the run had audit=True:
    # per-rank terminal bookkeeping rows plus the invariant verdicts.
    audit: Any | None = None
    # FaultStats of the run's FaultPlan (None when no plan attached):
    # how many injections actually fired, independent of tracing.
    fault_stats: Any | None = None
    # Flight-recorder black box (dict) captured when the run completed
    # with failures or quarantined units; None on clean runs or with
    # flightrec=False.  Aborting failures carry theirs on the raised
    # exception instead (e.blackbox / e.blackbox_path).
    blackbox: Any | None = None
    # Path of the written blackbox-*.json (when blackbox_dir was set).
    blackbox_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures and not self.quarantined

    @property
    def stdout(self) -> str:
        return self.output.text()

    @property
    def stdout_lines(self) -> list[str]:
        return [line for _, line in self.output.lines]

    @property
    def tasks_run(self) -> int:
        return sum(w.tasks_run for w in self.worker_stats)

    @property
    def profile(self):
        """Aggregated :class:`repro.obs.Profile` of the traced run."""
        if self.trace is None:
            raise RuntimeError(
                "no trace collected for this run; enable tracing with "
                "swift_run(..., trace=True) or `repro profile`"
            )
        from ..obs import Profile

        return Profile.from_trace(self.trace)


SetupFn = Callable[[Interp, RankContext, AdlbClient], None]


def make_client_interp(
    comm: Comm,
    layout: Layout,
    ctx: RankContext,
    engine: Engine | None,
    setup: SetupFn | None,
    server_map: Any | None = None,
    reliable: bool = False,
    tracer: Any | None = None,
) -> tuple[Interp, AdlbClient]:
    """Build the Tcl interpreter for an engine or worker rank."""
    config = ctx.config
    client = AdlbClient(
        comm,
        layout,
        read_cache=config.read_cache,
        batch_refcounts=config.batch_refcounts,
        server_map=server_map,
        reliable=reliable,
        tracer=tracer,
    )
    interp = Interp(
        compile_enabled=config.tcl_compile, exec_mode=config.tcl_exec
    )
    interp.echo = False
    if engine is not None:
        engine.client = client
        engine.interp = interp
        engine.flightrec = client.comm.world.flightrec
    register_turbine(interp, client, ctx, engine=engine)
    interp.eval(TURBINE_TCL)
    if ctx.config.args:
        from ..tcl.listutil import format_list

        flat: list[str] = []
        for key, value in ctx.config.args.items():
            flat.append(str(key))
            flat.append(str(value))
        interp.set_var("::swift_argv", format_list(flat))
    # Standard leaf-language packages (paper §III): embedded Python and
    # R interpreters, the shell interface, and blob utilities.
    from ..interlang import register_standard_packages

    register_standard_packages(interp, ctx)
    if setup is not None:
        setup(interp, ctx, client)
    return interp, client


def run_turbine_program(
    program: str,
    config: RuntimeConfig | None = None,
    setup: SetupFn | None = None,
    entry: str = "swift:main",
) -> RunResult:
    """Execute a Turbine Tcl program on a fresh thread-backed world.

    ``program`` is loaded on every engine and worker rank; ``entry`` is
    invoked on the first engine rank only.
    """
    config = config or RuntimeConfig()
    if config.on_error not in ("retry", "fail_fast", "continue"):
        raise ValueError(
            "on_error must be 'retry', 'fail_fast', or 'continue', not %r"
            % (config.on_error,)
        )
    layout = config.layout()
    tracer = config.tracer
    if tracer is None and config.trace:
        from ..obs import Tracer

        tracer = Tracer(capacity=config.trace_capacity)
    replicate = config.replicate
    if replicate is None:
        replicate = config.on_error == "retry" and config.n_servers >= 2
    elif replicate and config.n_servers < 2:
        raise ValueError(
            "replicate=True needs n_servers >= 2: a lone server has "
            "no buddy to hold its replica"
        )
    journal = config.journal
    if journal is None:
        journal = config.on_error == "retry" and config.n_engines >= 2
    elif journal and config.n_engines < 2:
        raise ValueError(
            "journal=True needs n_engines >= 2: a lone engine has "
            "no surviving engine to adopt its rules"
        )
    # Leases cost a dict insert/pop per task handout, so they are only
    # switched on when something can actually use them: retries, a
    # fault plan that may kill ranks, or checkpoint/restore (the
    # snapshot must capture leased units to re-run them).
    leases_enabled = (
        (config.on_error == "retry" and config.max_retries > 0)
        or config.faults is not None
        or config.checkpoint_path is not None
        or config.restore is not None
        or config.task_timeout is not None
    )
    faults = FaultState(config.faults) if config.faults is not None else None
    flightrec = None
    if config.flightrec:
        from ..obs.flightrec import FlightRecorder

        flightrec = FlightRecorder(
            config.size, capacity=config.flightrec_capacity
        )
    # Reliable RPC (seq-stamped, re-sendable requests) is what lets
    # clients survive a lost server or a dropped message; it rides
    # along whenever either can actually happen.
    reliable = replicate or (
        config.faults is not None and bool(config.faults.msg_rules)
    )
    server_map = None
    if replicate:
        from ..adlb.layout import ServerMap

        server_map = ServerMap(layout)
    restore_shards: dict[int, dict] = {}
    restore_rules: dict[int, list] = {}
    restoring = config.restore is not None
    if restoring:
        from ..adlb.checkpoint import read_checkpoint, restore_plan

        plan = restore_plan(read_checkpoint(config.restore), layout)
        restore_shards = plan["server_shards"]
        restore_rules = plan["engine_rules"]
    monitor = None
    if config.monitor:
        from ..obs.monitor import RunMonitor

        monitor = RunMonitor(out=config.monitor_out)
    output = Output(echo=config.echo, trace=config.trace)
    server_stats: list[ServerStats] = []
    engine_stats: list[EngineStats] = []
    worker_stats: list[WorkerStats] = []
    failures: list[TaskFailure] = []
    quarantined: list = []
    audit_rows: list = []
    stats_lock = threading.Lock()

    def announce_death(comm: Comm, e: RankKilled) -> None:
        """Tell every server the rank is gone so its lease is swept.

        ``silent`` kills skip this: recovery must then come from the
        server-side lease-expiry sweep."""
        if e.silent:
            return
        for s in layout.servers:
            comm.send(
                {"op": C.SOP_RANK_DEAD, "rank": e.rank, "reason": str(e)},
                s,
                C.TAG_SERVER,
            )

    def main(comm: Comm) -> None:
        rank = comm.rank
        role = layout.role(rank)
        ctx = RankContext(layout=layout, role=role, output=output, config=config)
        if role == "server":
            server = Server(
                comm,
                layout,
                steal=config.steal,
                tracer=tracer,
                leases=leases_enabled,
                lease_timeout=config.lease_timeout,
                max_retries=config.max_retries,
                retry_backoff=config.retry_backoff,
                on_error=config.on_error,
                server_map=server_map,
                replicate=replicate,
                journal=journal,
                faults=faults,
                reliable=reliable,
                checkpoint_path=config.checkpoint_path,
                checkpoint_interval=config.checkpoint_interval,
                restore_shard=restore_shards.get(rank),
                monitor=monitor if rank == layout.master_server else None,
                status_interval=config.monitor_interval if monitor else None,
            )
            try:
                stats = server.run()
            except RankKilled as e:
                if not replicate:
                    # The shard and queued work died with this rank and
                    # nothing holds a replica: the run cannot complete.
                    # Raise the diagnostic instead of letting every
                    # client hang on a server that will never answer.
                    raise ServerLost(e.rank, str(e)) from e
                announce_death(comm, e)
                return
            with stats_lock:
                server_stats.append(stats)
                failures.extend(server.failures)
                quarantined.extend(server.quarantined)
                if config.audit:
                    audit_rows.append(server.audit_row())
            return
        if role == "engine":
            engine = Engine(  # client/interp attached below
                None,
                None,
                tracer=tracer,
                on_error=config.on_error,
                retries_enabled=leases_enabled,
                faults=faults,
                journal=journal,
            )
            interp, client = make_client_interp(
                comm, layout, ctx, engine, setup, server_map, reliable, tracer
            )
            interp.eval(program)
            # On restore the dataflow state comes from the checkpoint's
            # rule tables; re-running the entry point would duplicate it.
            initial = None
            if rank == layout.engines[0] and not restoring:
                initial = entry
            restore = list(restore_rules.get(rank, [])) if restoring else None
            try:
                stats = engine.serve(initial_script=initial, restore=restore)
            except RankKilled as e:
                if not journal:
                    # The dead engine's pending rules are unrecoverable:
                    # raise the diagnostic promptly (even for silent
                    # kills — nothing watches an idle engine, so the
                    # alternative is a hang until the recv timeout).
                    raise EngineLost(
                        e.rank,
                        str(e),
                        rules_pending=engine.pending_rule_count(),
                        units_registered=engine.stats.rules_created,
                    ) from e
                announce_death(comm, e)
                return
            with stats_lock:
                engine_stats.append(stats)
                failures.extend(engine.failures)
                if config.audit:
                    audit_rows.append(engine.audit_row())
            return
        # worker
        interp, client = make_client_interp(
            comm, layout, ctx, None, setup, server_map, reliable, tracer
        )
        interp.eval(program)
        worker = Worker(
            client,
            interp,
            tracer=tracer,
            on_error=config.on_error,
            retries_enabled=leases_enabled,
            faults=faults,
            task_timeout=config.task_timeout,
        )
        try:
            stats = worker.serve()
        except RankKilled as e:
            announce_death(comm, e)
            return
        with stats_lock:
            worker_stats.append(stats)
            failures.extend(worker.failures)
            if config.audit:
                audit_rows.append(worker.audit_row())

    rank_labels = [layout.role(r) for r in range(config.size)]
    t0 = time.perf_counter()
    sampler_stop = None
    if monitor is not None:
        # Driver-side sampler: composes whatever statuses the master
        # has relayed so far into one MonitorSample per interval.
        sampler_stop = threading.Event()

        def _sampler() -> None:
            while not sampler_stop.wait(config.monitor_interval):
                monitor.sample(time.perf_counter() - t0)

        sampler = threading.Thread(
            target=_sampler, name="repro-monitor", daemon=True
        )
        sampler.start()
    def _dump_blackbox(box: Any) -> str | None:
        if box is None or config.blackbox_dir is None:
            return None
        from ..obs.flightrec import write_blackbox

        return write_blackbox(box, config.blackbox_dir)

    try:
        run_world(
            config.size,
            main,
            recv_timeout=config.recv_timeout,
            tracer=tracer,
            faults=faults,
            flightrec=flightrec,
            rank_labels=rank_labels,
            deadline=config.deadline,
        )
    except RankFailure as e:
        # A permanently failed unit of work is a *task* problem, not a
        # rank crash: surface the clean, traceback-bearing TaskError
        # instead of the rank-failure wrapper.  A lost server likewise
        # surfaces as its own diagnostic (ServerLost).  Either way the
        # launcher's black box rides along on the surfaced exception.
        box = getattr(e, "blackbox", None)
        path = _dump_blackbox(box)
        e.blackbox_path = path
        for _, exc in e.failures:
            if isinstance(exc, (TaskError, ServerLost, EngineLost)):
                exc.blackbox = box
                exc.blackbox_path = path
                raise exc from None
        raise
    except DeadlineExceeded as e:
        e.blackbox_path = _dump_blackbox(getattr(e, "blackbox", None))
        raise
    finally:
        if sampler_stop is not None:
            sampler_stop.set()
            sampler.join(timeout=2.0)
            # One final sample so short runs still land a timeline row.
            monitor.sample(time.perf_counter() - t0)
    elapsed = time.perf_counter() - t0
    blackbox = None
    blackbox_path = None
    if flightrec is not None and (failures or quarantined):
        # The run drained to completion but carried failures or
        # quarantined units: snapshot the rings so the poisoned
        # dataflow is reconstructible after the fact.
        blackbox = flightrec.blackbox(
            reason="quarantine" if quarantined else "task-failures",
            detail="%d failure(s), %d quarantined unit(s)"
            % (len(failures), len(quarantined)),
            roles=rank_labels,
            failed_ranks=sorted({f.rank for f in failures}),
        )
        blackbox_path = _dump_blackbox(blackbox)
    if flightrec is not None:
        # Clean shutdown: run_world joined every rank, the rings are
        # quiescent, and any snapshot above copied the rows it keeps —
        # recycle the slots.  Aborting paths raised before this point
        # and deliberately never release (stragglers may still stamp).
        flightrec.release()
    trace = None
    if tracer is not None:
        from ..obs import RANK_DRIVER
        from ..obs.report import feed_latency_histograms

        if faults is not None:
            tracer.metrics.fold_struct("fault", faults.stats)
        tracer.complete(
            RANK_DRIVER,
            "run",
            "run",
            t0,
            payload={"size": config.size, "entry": entry},
        )
        # Derive latency histograms (task latency, queue wait, dispatch
        # delay) from the collected spans so Profile.render() has
        # percentiles to show.
        feed_latency_histograms(tracer, since=t0 - tracer.epoch)
        trace = tracer.freeze(
            meta={
                "roles": {r: layout.role(r) for r in range(config.size)},
                "elapsed": elapsed,
                "size": config.size,
            }
        )
    audit = None
    if config.audit:
        from ..chaos.invariants import audit_run

        audit = audit_run(
            audit_rows,
            layout=layout,
            failures=failures,
            quarantined=quarantined,
        )
    return RunResult(
        output=output,
        elapsed=elapsed,
        server_stats=server_stats,
        engine_stats=engine_stats,
        worker_stats=worker_stats,
        trace=trace,
        timeline=monitor.samples if monitor is not None else [],
        failures=sorted(failures, key=lambda f: f.rank),
        quarantined=sorted(quarantined, key=lambda q: q.uid),
        audit=audit,
        fault_stats=faults.stats if faults is not None else None,
        blackbox=blackbox,
        blackbox_path=blackbox_path,
    )
