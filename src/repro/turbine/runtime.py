"""The Swift/T runtime: wire MPI ranks into servers, engines, workers.

:func:`run_turbine_program` is the execution entry point used by the
public API: it launches a thread-backed MPI world, assigns roles per
the paper's Fig. 2 layout, loads the generated Tcl program on every
non-server rank (real Turbine does the same — this is what makes
worker-side procs resolvable), runs ``main`` on the first engine, and
collects output and statistics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..adlb.client import AdlbClient
from ..adlb.layout import Layout
from ..adlb.server import Server, ServerStats
from ..mpi import Comm, run_world
from ..tcl.interp import Interp
from .builtins import register_turbine
from .engine import Engine, EngineStats
from .tcllib import TURBINE_TCL
from .worker import Worker, WorkerStats


@dataclass
class RuntimeConfig:
    """Process layout and runtime options (Fig. 2 of the paper)."""

    size: int = 4
    n_servers: int = 1
    n_engines: int = 1
    steal: bool = True
    trace: bool = False
    echo: bool = False  # also print program output to real stdout
    record_spans: bool = False  # per-task timing on workers (benchmarks)
    recv_timeout: float = 120.0
    # Interpreter state policy for embedded Python/R interpreters
    # (paper §III-C): "retain" keeps state across tasks, "reinit"
    # reinitializes per task.
    interp_mode: str = "retain"
    # Program arguments, readable from Swift via argv("name")
    args: dict = field(default_factory=dict)

    def layout(self) -> Layout:
        return Layout(self.size, self.n_servers, self.n_engines)


class Output:
    """Thread-safe collector of program output across ranks."""

    def __init__(self, echo: bool = False, trace: bool = False):
        self._lock = threading.Lock()
        self.lines: list[tuple[int, str]] = []
        self.logs: list[tuple[int, str]] = []
        self.echo = echo
        self.trace = trace

    def emit(self, rank: int, line: str) -> None:
        with self._lock:
            self.lines.append((rank, line))
        if self.echo:
            print(line)

    def log(self, rank: int, line: str) -> None:
        if self.trace:
            with self._lock:
                self.logs.append((rank, line))

    def text(self) -> str:
        return "\n".join(line for _, line in self.lines)


@dataclass
class RankContext:
    """Per-rank state handed to builtin commands."""

    layout: Layout
    role: str
    output: Output
    config: RuntimeConfig


@dataclass
class RunResult:
    output: Output
    elapsed: float
    server_stats: list[ServerStats] = field(default_factory=list)
    engine_stats: list[EngineStats] = field(default_factory=list)
    worker_stats: list[WorkerStats] = field(default_factory=list)

    @property
    def stdout(self) -> str:
        return self.output.text()

    @property
    def stdout_lines(self) -> list[str]:
        return [line for _, line in self.output.lines]

    @property
    def tasks_run(self) -> int:
        return sum(w.tasks_run for w in self.worker_stats)


SetupFn = Callable[[Interp, RankContext, AdlbClient], None]


def make_client_interp(
    comm: Comm,
    layout: Layout,
    ctx: RankContext,
    engine: Engine | None,
    setup: SetupFn | None,
) -> tuple[Interp, AdlbClient]:
    """Build the Tcl interpreter for an engine or worker rank."""
    client = AdlbClient(comm, layout)
    interp = Interp()
    interp.echo = False
    if engine is not None:
        engine.client = client
        engine.interp = interp
    register_turbine(interp, client, ctx, engine=engine)
    interp.eval(TURBINE_TCL)
    if ctx.config.args:
        from ..tcl.listutil import format_list

        flat: list[str] = []
        for key, value in ctx.config.args.items():
            flat.append(str(key))
            flat.append(str(value))
        interp.set_var("::swift_argv", format_list(flat))
    # Standard leaf-language packages (paper §III): embedded Python and
    # R interpreters, the shell interface, and blob utilities.
    from ..interlang import register_standard_packages

    register_standard_packages(interp, ctx)
    if setup is not None:
        setup(interp, ctx, client)
    return interp, client


def run_turbine_program(
    program: str,
    config: RuntimeConfig | None = None,
    setup: SetupFn | None = None,
    entry: str = "swift:main",
) -> RunResult:
    """Execute a Turbine Tcl program on a fresh thread-backed world.

    ``program`` is loaded on every engine and worker rank; ``entry`` is
    invoked on the first engine rank only.
    """
    config = config or RuntimeConfig()
    layout = config.layout()
    output = Output(echo=config.echo, trace=config.trace)
    server_stats: list[ServerStats] = []
    engine_stats: list[EngineStats] = []
    worker_stats: list[WorkerStats] = []
    stats_lock = threading.Lock()

    def main(comm: Comm) -> None:
        rank = comm.rank
        role = layout.role(rank)
        ctx = RankContext(layout=layout, role=role, output=output, config=config)
        if role == "server":
            stats = Server(comm, layout, steal=config.steal).run()
            with stats_lock:
                server_stats.append(stats)
            return
        if role == "engine":
            engine = Engine(None, None)  # client/interp bound below
            interp, client = make_client_interp(comm, layout, ctx, engine, setup)
            interp.eval(program)
            initial = entry if rank == layout.engines[0] else None
            stats = engine.serve(initial_script=initial)
            with stats_lock:
                engine_stats.append(stats)
            return
        # worker
        interp, client = make_client_interp(comm, layout, ctx, None, setup)
        interp.eval(program)
        worker = Worker(client, interp, record_spans=config.record_spans)
        stats = worker.serve()
        with stats_lock:
            worker_stats.append(stats)

    t0 = time.perf_counter()
    run_world(config.size, main, recv_timeout=config.recv_timeout)
    elapsed = time.perf_counter() - t0
    return RunResult(
        output=output,
        elapsed=elapsed,
        server_stats=server_stats,
        engine_stats=engine_stats,
        worker_stats=worker_stats,
    )
