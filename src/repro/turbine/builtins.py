"""Primitive Turbine commands, registered into each rank's Tcl interp.

Real Turbine implements these in C and exposes them to Tcl; here they
are Python functions bound to the rank's :class:`AdlbClient` (and, on
engine ranks, the rule engine).  The derived procs in
:mod:`repro.turbine.tcllib` build on them.
"""

from __future__ import annotations

from typing import Any

from ..adlb.client import AdlbClient
from ..adlb.constants import (
    T_BLOB,
    T_BOOLEAN,
    T_CONTAINER,
    T_FLOAT,
    T_INTEGER,
    T_REF,
    T_STRING,
    T_VOID,
)
from ..tcl.errors import TclError
from ..tcl.expr import to_string
from ..tcl.interp import Interp
from ..tcl.listutil import format_list, parse_list

_TYPES = {
    T_INTEGER,
    T_FLOAT,
    T_STRING,
    T_BLOB,
    T_BOOLEAN,
    T_VOID,
    T_REF,
    T_CONTAINER,
}


def _to_int(s: str) -> int:
    try:
        return int(s)
    except ValueError:
        try:
            return int(float(s))
        except ValueError:
            raise TclError("expected integer, got %r" % s) from None


def _to_float(s: str) -> float:
    try:
        return float(s)
    except ValueError:
        raise TclError("expected float, got %r" % s) from None


def _to_bool(s: str) -> int:
    t = s.strip().lower()
    if t in ("1", "true", "yes", "on"):
        return 1
    if t in ("0", "false", "no", "off", ""):
        return 0
    try:
        return 1 if float(t) != 0 else 0
    except ValueError:
        raise TclError("expected boolean, got %r" % s) from None


def register_turbine(
    interp: Interp,
    client: AdlbClient,
    runtime,
    engine=None,
) -> None:
    """Register primitive turbine:: commands.

    ``runtime`` is the per-rank RankContext (output sink, config).
    ``engine`` is the rule engine on engine ranks, None on workers.
    """

    def reg(name: str, fn) -> None:
        interp.register("turbine::" + name, fn)

    # ---- rules and tasks --------------------------------------------------

    def cmd_rule(it, args):
        if engine is None:
            raise TclError("turbine::rule is only available on engine ranks")
        if len(args) < 2:
            raise TclError("usage: turbine::rule inputs action ?type? ?opts?")
        inputs = [int(x) for x in parse_list(args[0])]
        action = args[1]
        rtype = args[2] if len(args) > 2 else "LOCAL"
        opts = {"target": -1, "priority": 0, "name": ""}
        rest = args[3:]
        for i in range(0, len(rest) - 1, 2):
            key = rest[i].lstrip("-")
            if key in ("target", "priority"):
                opts[key] = int(rest[i + 1])
            elif key == "name":
                opts[key] = rest[i + 1]
            else:
                raise TclError("bad rule option %r" % rest[i])
        engine.add_rule(
            inputs,
            action,
            rtype,
            target=opts["target"],
            priority=opts["priority"],
            name=opts["name"],
        )
        return ""

    def cmd_spawn(it, args):
        # spawn type action ?priority? ?target?
        if len(args) < 2:
            raise TclError("usage: turbine::spawn type action ?priority? ?target?")
        ttype = args[0]
        action = args[1]
        priority = int(args[2]) if len(args) > 2 else 0
        target = int(args[3]) if len(args) > 3 else -1
        client.incr_work()
        client.put(action, type=ttype, priority=priority, target=target)
        return ""

    reg("rule", cmd_rule)
    reg("spawn", cmd_spawn)

    # ---- allocation ----------------------------------------------------------

    def cmd_allocate(it, args):
        if not args:
            raise TclError("usage: turbine::allocate type ?write_refcount?")
        dtype = args[0]
        if dtype not in _TYPES:
            raise TclError("unknown TD type %r" % dtype)
        wrc = int(args[1]) if len(args) > 1 else 1
        return str(client.create(dtype, write_refcount=wrc))

    def cmd_allocate_container(it, args):
        wrc = int(args[0]) if args else 1
        return str(client.create(T_CONTAINER, write_refcount=wrc))

    reg("allocate", cmd_allocate)
    reg("allocate_container", cmd_allocate_container)

    # ---- stores -------------------------------------------------------------

    def _store(td: str, value: Any, decr: str | None) -> str:
        client.store(int(td), value, decr_write=int(decr) if decr else 1)
        return ""

    def _mk_store(conv):
        def cmd(it, args):
            if len(args) not in (2, 3):
                raise TclError("usage: turbine::store_* id value ?decr?")
            return _store(args[0], conv(args[1]), args[2] if len(args) > 2 else None)

        return cmd

    reg("store_integer", _mk_store(_to_int))
    reg("store_float", _mk_store(_to_float))
    reg("store_string", _mk_store(str))
    reg("store_boolean", _mk_store(_to_bool))
    reg("store_ref", _mk_store(_to_int))

    def cmd_store_void(it, args):
        if len(args) not in (1, 2):
            raise TclError("usage: turbine::store_void id ?decr?")
        return _store(args[0], "", args[1] if len(args) > 1 else None)

    reg("store_void", cmd_store_void)

    def cmd_store_blob(it, args):
        if len(args) not in (2, 3):
            raise TclError("usage: turbine::store_blob id handle ?decr?")
        obj = it.unwrap(args[1])
        if hasattr(obj, "to_bytes"):  # Blob
            data = obj.to_bytes()
        elif isinstance(obj, (bytes, bytearray)):
            data = bytes(obj)
        else:
            raise TclError("store_blob: %r is not blob-like" % args[1])
        return _store(args[0], data, args[2] if len(args) > 2 else None)

    reg("store_blob", cmd_store_blob)

    def cmd_store_any(it, args):
        # store with a value already in Tcl string form (type-agnostic)
        if len(args) not in (2, 3):
            raise TclError("usage: turbine::store_any id value ?decr?")
        dtype = client.typeof(int(args[0]))
        conv = {
            T_INTEGER: _to_int,
            T_FLOAT: _to_float,
            T_BOOLEAN: _to_bool,
            T_REF: _to_int,
            T_VOID: lambda s: "",
        }.get(dtype, str)
        if dtype == T_BLOB:
            return cmd_store_blob(it, args)
        return _store(args[0], conv(args[1]), args[2] if len(args) > 2 else None)

    reg("store_any", cmd_store_any)

    def cmd_copy_value(it, args):
        # copy the raw stored value (preserves blobs exactly)
        if len(args) != 2:
            raise TclError("usage: turbine::copy_value dst src")
        value = client.retrieve(int(args[1]))
        client.store(int(args[0]), value)
        return ""

    reg("copy_value", cmd_copy_value)

    # ---- retrieves -----------------------------------------------------------

    def _value_to_tcl(it, value: Any) -> str:
        if isinstance(value, (bytes, bytearray)):
            from ..blob import Blob

            return it.wrap_object(Blob.from_bytes(bytes(value)), "blob")
        if isinstance(value, bool):
            return "1" if value else "0"
        if value is None:
            return ""
        return to_string(value)

    def cmd_retrieve(it, args):
        if len(args) not in (1, 2):
            raise TclError("usage: turbine::retrieve id ?subscript?")
        value = client.retrieve(int(args[0]), subscript=args[1] if len(args) > 1 else None)
        return _value_to_tcl(it, value)

    reg("retrieve", cmd_retrieve)
    reg("retrieve_integer", cmd_retrieve)
    reg("retrieve_float", cmd_retrieve)
    reg("retrieve_string", cmd_retrieve)
    reg("retrieve_blob", cmd_retrieve)

    def cmd_exists(it, args):
        if len(args) not in (1, 2):
            raise TclError("usage: turbine::exists id ?subscript?")
        ok = client.exists(int(args[0]), subscript=args[1] if len(args) > 1 else None)
        return "1" if ok else "0"

    reg("exists", cmd_exists)

    def cmd_typeof(it, args):
        return client.typeof(int(args[0]))

    reg("typeof", cmd_typeof)

    # ---- containers -------------------------------------------------------------

    def cmd_container_insert(it, args):
        if len(args) not in (3, 4):
            raise TclError(
                "usage: turbine::container_insert c subscript member ?decr?"
            )
        decr = int(args[3]) if len(args) > 3 else 1
        client.store(int(args[0]), int(args[1 + 1]), subscript=args[1], decr_write=decr)
        return ""

    reg("container_insert", cmd_container_insert)

    def cmd_container_lookup(it, args):
        if len(args) != 2:
            raise TclError("usage: turbine::container_lookup c subscript")
        return to_string(client.retrieve(int(args[0]), subscript=args[1]))

    reg("container_lookup", cmd_container_lookup)

    def cmd_container_reference(it, args):
        if len(args) != 3:
            raise TclError("usage: turbine::container_reference c subscript ref")
        client.container_reference(int(args[0]), args[1], int(args[2]))
        return ""

    reg("container_reference", cmd_container_reference)

    def cmd_enumerate(it, args):
        if len(args) != 1:
            raise TclError("usage: turbine::enumerate c")
        return format_list(client.enumerate(int(args[0])))

    reg("enumerate", cmd_enumerate)

    # ---- refcounts ----------------------------------------------------------------

    def cmd_wrc_incr(it, args):
        n = int(args[1]) if len(args) > 1 else 1
        if n:
            client.refcount(int(args[0]), write_delta=n)
        return ""

    def cmd_wrc_decr(it, args):
        n = int(args[1]) if len(args) > 1 else 1
        if n:
            client.refcount(int(args[0]), write_delta=-n)
        return ""

    def cmd_rrc_decr(it, args):
        n = int(args[1]) if len(args) > 1 else 1
        if n:
            client.refcount(int(args[0]), read_delta=-n)
        return ""

    reg("write_refcount_incr", cmd_wrc_incr)
    reg("write_refcount_decr", cmd_wrc_decr)
    reg("read_refcount_decr", cmd_rrc_decr)

    # ---- environment ---------------------------------------------------------------

    reg("rank", lambda it, args: str(client.rank))
    reg("role", lambda it, args: runtime.role)
    reg("nworkers", lambda it, args: str(runtime.layout.n_workers))
    reg("nengines", lambda it, args: str(runtime.layout.n_engines))
    reg("nservers", lambda it, args: str(runtime.layout.n_servers))

    def cmd_log_output(it, args):
        runtime.output.emit(client.rank, " ".join(args))
        return ""

    def cmd_log(it, args):
        runtime.output.log(client.rank, " ".join(args))
        return ""

    reg("log_output", cmd_log_output)
    reg("log", cmd_log)
    reg("noop", lambda it, args: "")
