"""The Turbine rule engine.

An engine rank evaluates the STC-generated Tcl program.  ``rule``
statements register data dependencies on TDs; when all inputs of a rule
are closed, the rule *fires*: LOCAL actions execute in the engine's Tcl
interpreter, WORK/CONTROL actions are shipped through ADLB to workers
or other engines.  Close notifications arrive from the data servers on
the async channel.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..adlb.client import AdlbClient
from ..adlb.constants import CONTROL
from ..tcl.errors import TclError


@dataclass
class Rule:
    id: int
    action: str
    type: str  # LOCAL | WORK | CONTROL
    target: int
    priority: int
    name: str
    remaining: int = 0


@dataclass
class EngineStats:
    rules_created: int = 0
    rules_fired_local: int = 0
    tasks_released: int = 0
    notifications: int = 0
    control_tasks_run: int = 0


class Engine:
    """Dataflow rule bookkeeping + main event loop for one engine rank."""

    def __init__(self, client: AdlbClient, interp, tracer: Any | None = None):
        self.client = client
        self.interp = interp
        self.tracer = tracer
        self._seq = itertools.count(1)
        self.ready: deque[Rule] = deque()
        # td id -> rules blocked on it
        self.blocked: dict[int, list[Rule]] = {}
        # TDs known closed (subscription already answered)
        self.closed: set[int] = set()
        # TDs with an outstanding subscription
        self.subscribed: set[int] = set()
        self.stats = EngineStats()

    # ------------------------------------------------------------------ rules

    def add_rule(
        self,
        inputs: list[int],
        action: str,
        rtype: str = "LOCAL",
        target: int = -1,
        priority: int = 0,
        name: str = "",
    ) -> None:
        if rtype not in ("LOCAL", "WORK", "CONTROL"):
            raise TclError("bad rule type %r" % rtype)
        self.client.incr_work()
        rule = Rule(
            id=next(self._seq),
            action=action,
            type=rtype,
            target=target,
            priority=priority,
            name=name,
        )
        self.stats.rules_created += 1
        if self.tracer is not None:
            self.tracer.instant(
                self.client.rank,
                "rule",
                "create",
                {"id": rule.id, "type": rtype, "name": name},
            )
        for td in set(inputs):
            if td in self.closed:
                continue
            if td in self.subscribed:
                self.blocked.setdefault(td, []).append(rule)
                rule.remaining += 1
                continue
            if self.client.subscribe(td):
                self.closed.add(td)
                continue
            self.subscribed.add(td)
            self.blocked.setdefault(td, []).append(rule)
            rule.remaining += 1
        if rule.remaining == 0:
            self.ready.append(rule)

    def on_close(self, td: int) -> None:
        self.stats.notifications += 1
        if self.tracer is not None:
            self.tracer.instant(self.client.rank, "rule", "notify", {"td": td})
        self.closed.add(td)
        self.subscribed.discard(td)
        for rule in self.blocked.pop(td, []):
            rule.remaining -= 1
            if rule.remaining == 0:
                self.ready.append(rule)

    def drain(self) -> None:
        """Fire every ready rule (firing may enqueue more)."""
        tracer = self.tracer
        while self.ready:
            rule = self.ready.popleft()
            if rule.type == "LOCAL":
                self.stats.rules_fired_local += 1
                if tracer is None:
                    self.interp.eval(rule.action)
                else:
                    t0 = tracer.now()
                    self.interp.eval(rule.action)
                    tracer.complete(
                        self.client.rank,
                        "rule",
                        "fire",
                        t0,
                        payload={"id": rule.id, "name": rule.name},
                    )
                # Deferred refcount decrements land before the rule's
                # accounting unit (they can close TDs and fire rules).
                self.client.flush_refcounts()
                self.client.decr_work()  # the rule's accounting unit
            else:
                # The rule's accounting unit transfers to the task; the
                # executing rank decrements after running it.
                self.stats.tasks_released += 1
                if tracer is not None:
                    tracer.instant(
                        self.client.rank,
                        "rule",
                        "release",
                        {"id": rule.id, "type": rule.type, "name": rule.name},
                    )
                self.client.put(
                    rule.action,
                    type=rule.type,
                    priority=rule.priority,
                    target=rule.target,
                )

    # ------------------------------------------------------------------ loop

    def serve(self, initial_script: str | None = None) -> EngineStats:
        """Run the engine event loop until shutdown.

        ``initial_script`` is the program entry point (only the first
        engine rank receives one); other engines only execute CONTROL
        tasks shipped to them.
        """
        tracer = self.tracer
        rank = self.client.rank
        self.client.park_async((CONTROL,))
        if initial_script is not None:
            self.client.incr_work()
            if tracer is None:
                self.interp.eval(initial_script)
            else:
                with tracer.span(rank, "engine", "program"):
                    self.interp.eval(initial_script)
            self.drain()
            self.client.flush_refcounts()
            self.client.decr_work()
        while True:
            self.drain()
            # Time blocked here with no ready rules is a dataflow stall:
            # the engine is waiting on close notifications or control work.
            if tracer is None:
                msg = self.client.recv_async()
            else:
                t0 = tracer.now()
                msg = self.client.recv_async()
                tracer.complete(
                    rank, "engine", "stall", t0, payload={"kind": msg[0]}
                )
            kind = msg[0]
            if kind == "notify":
                self.on_close(msg[1])
            elif kind == "ctask":
                self.stats.control_tasks_run += 1
                if tracer is None:
                    self.interp.eval(msg[2])
                else:
                    with tracer.span(rank, "engine", "ctask"):
                        self.interp.eval(msg[2])
                self.drain()
                self.client.park_async((CONTROL,))  # also flushes refcounts
                self.client.decr_work()
            elif kind == "shutdown":
                break
            else:
                raise RuntimeError("engine: unexpected async message %r" % (msg,))
        if tracer is not None:
            from .worker import fold_cache_stats

            tracer.metrics.fold_struct("engine", self.stats, rank=rank)
            fold_cache_stats(tracer, self.client, self.interp, rank)
        return self.stats
