"""The Turbine rule engine.

An engine rank evaluates the STC-generated Tcl program.  ``rule``
statements register data dependencies on TDs; when all inputs of a rule
are closed, the rule *fires*: LOCAL actions execute in the engine's Tcl
interpreter, WORK/CONTROL actions are shipped through ADLB to workers
or other engines.  Close notifications arrive from the data servers on
the async channel.
"""

from __future__ import annotations

import itertools
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..adlb.client import AdlbClient
from ..adlb.constants import CONTROL, SOP_CKPT_PART, TAG_SERVER
from ..faults import InjectedFault, RankKilled, TaskError, TaskFailure, snippet
from ..mpi import AbortError, DeadlockError
from ..tcl.errors import TclError


@dataclass
class Rule:
    id: int
    action: str
    type: str  # LOCAL | WORK | CONTROL
    target: int
    priority: int
    name: str
    remaining: int = 0


@dataclass
class EngineStats:
    rules_created: int = 0
    rules_fired_local: int = 0
    tasks_released: int = 0
    notifications: int = 0
    control_tasks_run: int = 0


class Engine:
    """Dataflow rule bookkeeping + main event loop for one engine rank."""

    def __init__(
        self,
        client: AdlbClient,
        interp,
        tracer: Any | None = None,
        on_error: str = "retry",
        retries_enabled: bool = False,
        faults: Any | None = None,
    ):
        self.client = client
        self.interp = interp
        self.tracer = tracer
        self.on_error = on_error
        self.retries_enabled = retries_enabled
        self.faults = faults
        self.failures: list[TaskFailure] = []
        self._seq = itertools.count(1)
        # Provenance unit ids for control tasks run on this engine
        # ("C<rank>.<n>"); counts executions, including retries.
        self._unit_seq = itertools.count(1)
        self.ready: deque[Rule] = deque()
        # td id -> rules blocked on it
        self.blocked: dict[int, list[Rule]] = {}
        # TDs known closed (subscription already answered)
        self.closed: set[int] = set()
        # TDs with an outstanding subscription
        self.subscribed: set[int] = set()
        self.stats = EngineStats()

    # ------------------------------------------------------------------ rules

    def add_rule(
        self,
        inputs: list[int],
        action: str,
        rtype: str = "LOCAL",
        target: int = -1,
        priority: int = 0,
        name: str = "",
    ) -> None:
        if rtype not in ("LOCAL", "WORK", "CONTROL"):
            raise TclError("bad rule type %r" % rtype)
        self.client.incr_work()
        rule = Rule(
            id=next(self._seq),
            action=action,
            type=rtype,
            target=target,
            priority=priority,
            name=name,
        )
        self.stats.rules_created += 1
        if self.tracer is not None:
            # Lineage: which TDs this rule waits on, and which unit of
            # work registered it (the spawn edge of the run DAG).
            self.tracer.instant(
                self.client.rank,
                "rule",
                "create",
                {
                    "id": rule.id,
                    "type": rtype,
                    "name": name,
                    "inputs": sorted(set(inputs)),
                    "by": self.client.prov_unit,
                },
            )
        for td in set(inputs):
            if td in self.closed:
                continue
            if td in self.subscribed:
                self.blocked.setdefault(td, []).append(rule)
                rule.remaining += 1
                continue
            if self.client.subscribe(td):
                self.closed.add(td)
                continue
            self.subscribed.add(td)
            self.blocked.setdefault(td, []).append(rule)
            rule.remaining += 1
        if rule.remaining == 0:
            self.ready.append(rule)

    def checkpoint_rules(self) -> list[dict]:
        """Snapshot the rule table for a checkpoint.

        Blocked rules record only their still-unresolved inputs; on
        restore, ``add_rule`` re-subscribes and anything closed in the
        restored store resolves immediately."""
        by_id: dict[int, tuple[Rule, list[int]]] = {}
        for td, rules in self.blocked.items():
            for rule in rules:
                by_id.setdefault(rule.id, (rule, []))[1].append(td)
        out = []
        for rule, tds in by_id.values():
            out.append(
                {
                    "inputs": tds,
                    "action": rule.action,
                    "type": rule.type,
                    "target": rule.target,
                    "priority": rule.priority,
                    "name": rule.name,
                }
            )
        for rule in self.ready:
            out.append(
                {
                    "inputs": [],
                    "action": rule.action,
                    "type": rule.type,
                    "target": rule.target,
                    "priority": rule.priority,
                    "name": rule.name,
                }
            )
        return out

    def _ckpt_reply(self, gen: int) -> None:
        client = self.client
        master = (
            client.map.master
            if client.map is not None
            else client.layout.master_server
        )
        client.comm.send(
            {
                "op": SOP_CKPT_PART,
                "kind": "engine",
                "gen": gen,
                "rules": self.checkpoint_rules(),
            },
            master,
            TAG_SERVER,
        )

    def on_close(self, td: int) -> None:
        self.stats.notifications += 1
        if self.tracer is not None:
            self.tracer.instant(self.client.rank, "rule", "notify", {"td": td})
        self.closed.add(td)
        self.subscribed.discard(td)
        for rule in self.blocked.pop(td, []):
            rule.remaining -= 1
            if rule.remaining == 0:
                self.ready.append(rule)

    def drain(self) -> None:
        """Fire every ready rule (firing may enqueue more)."""
        tracer = self.tracer
        faults = self.faults
        while self.ready:
            rule = self.ready.popleft()
            if rule.type == "LOCAL":
                self.stats.rules_fired_local += 1
                directive = None
                if faults is not None:
                    directive = faults.on_task(self.client.rank, rule.action)
                    if directive is not None and directive[0] == "kill":
                        raise RankKilled(self.client.rank, directive[1])
                try:
                    if directive is not None:
                        if directive[0] == "raise":
                            raise InjectedFault(directive[1])
                        time.sleep(directive[1])
                    if tracer is None:
                        self.interp.eval(rule.action)
                    else:
                        # Stores and rule creations inside the fire are
                        # attributed to this rule's unit id.
                        self.client.prov_unit = "R%d.%d" % (
                            self.client.rank,
                            rule.id,
                        )
                        t0 = tracer.now()
                        self.interp.eval(rule.action)
                        tracer.complete(
                            self.client.rank,
                            "rule",
                            "fire",
                            t0,
                            payload={"id": rule.id, "name": rule.name},
                        )
                except (AbortError, DeadlockError):
                    # Transport-level failures are rank problems, not
                    # unit failures: never retried, always fatal.
                    raise
                except Exception as e:  # rule failure — engine stays up
                    # LOCAL rules mutate engine-local state, so they
                    # are never retried: continue records, the other
                    # modes surface a TaskError.
                    self._unit_error("rule", rule.action, e, retryable=False)
                    continue
                # Deferred refcount decrements land before the rule's
                # accounting unit (they can close TDs and fire rules).
                self.client.flush_refcounts()
                self.client.decr_work()  # the rule's accounting unit
            else:
                # The rule's accounting unit transfers to the task; the
                # executing rank decrements after running it.
                self.stats.tasks_released += 1
                if tracer is not None:
                    tracer.instant(
                        self.client.rank,
                        "rule",
                        "release",
                        {"id": rule.id, "type": rule.type, "name": rule.name},
                    )
                self.client.put(
                    rule.action,
                    type=rule.type,
                    priority=rule.priority,
                    target=rule.target,
                    prov="R%d.%d" % (self.client.rank, rule.id)
                    if tracer is not None
                    else None,
                )

    def _unit_error(
        self, kind: str, payload: str, e: BaseException, retryable: bool
    ) -> bool:
        """Exception-safe accounting for a failed unit of engine work.

        Returns True when the unit was handed back to the server for
        retry; otherwise the unit is accounted here (recorded under
        ``continue``, raised as :class:`TaskError` otherwise)."""
        error = "%s: %s" % (type(e).__name__, e)
        tb = "".join(traceback.format_exception(type(e), e, e.__traceback__))
        if retryable and self.on_error == "retry" and self.retries_enabled:
            # The retry re-executes the unit's refcount decrements;
            # flushing this attempt's would double-apply them.
            self.client.discard_pending_refcounts()
            self.client.task_fail(kind, error, tb)
            return True
        self.client.flush_refcounts()
        failure = TaskFailure(
            rank=self.client.rank,
            kind=kind,
            payload=snippet(payload),
            attempts=1,
            error=error,
            traceback=tb,
        )
        if self.on_error == "continue":
            self.failures.append(failure)
            # Poisoned: dataflow blocked on this unit's outputs will
            # never resolve; the master drains the run at quiescence.
            self.client.decr_work(poison=True)
            return False
        self.client.decr_work()
        raise TaskError(failure) from e

    # ------------------------------------------------------------------ loop

    def serve(
        self,
        initial_script: str | None = None,
        restore: list[dict] | None = None,
    ) -> EngineStats:
        """Run the engine event loop until shutdown.

        ``initial_script`` is the program entry point (only the first
        engine rank receives one); other engines only execute CONTROL
        tasks shipped to them.  ``restore`` is this engine's rule table
        from a checkpoint: the rules are re-registered (each
        ``add_rule`` increments the termination counter itself) while
        the engine holds the one guard unit the restored counter
        reserved for it, released once re-registration is done.
        """
        tracer = self.tracer
        rank = self.client.rank
        self.client.park_async((CONTROL,))
        if restore is not None:
            for r in restore:
                self.add_rule(
                    list(r["inputs"]),
                    r["action"],
                    rtype=r["type"],
                    target=r["target"],
                    priority=r["priority"],
                    name=r["name"],
                )
            self.drain()
            self.client.flush_refcounts()
            self.client.decr_work()  # the restore guard
        if initial_script is not None:
            self.client.incr_work()
            try:
                if tracer is None:
                    self.interp.eval(initial_script)
                else:
                    self.client.prov_unit = "P%d" % rank
                    t0 = tracer.now()
                    self.interp.eval(initial_script)
                    tracer.complete(
                        rank,
                        "engine",
                        "program",
                        t0,
                        payload={"unit": "P%d" % rank, "ok": True},
                    )
            except (AbortError, DeadlockError):
                raise
            except Exception as e:  # program failure
                if tracer is not None:
                    tracer.complete(
                        rank,
                        "engine",
                        "program",
                        t0,
                        payload={
                            "unit": "P%d" % rank,
                            "ok": False,
                            "error": type(e).__name__,
                        },
                    )
                # The initial program cannot be retried (its partial
                # effects are live); continue records and drains
                # whatever dataflow it did set up.
                self._unit_error("program", initial_script, e, retryable=False)
                self.drain()
            else:
                self.drain()
                self.client.flush_refcounts()
                self.client.decr_work()
        while True:
            self.drain()
            # Time blocked here with no ready rules is a dataflow stall:
            # the engine is waiting on close notifications or control work.
            if tracer is None:
                msg = self.client.recv_async()
            else:
                t0 = tracer.now()
                msg = self.client.recv_async()
                tracer.complete(
                    rank, "engine", "stall", t0, payload={"kind": msg[0]}
                )
            kind = msg[0]
            if kind == "notify":
                self.on_close(msg[1])
            elif kind == "ctask":
                self.stats.control_tasks_run += 1
                directive = None
                if self.faults is not None:
                    directive = self.faults.on_task(rank, msg[2])
                    if directive is not None and directive[0] == "kill":
                        raise RankKilled(rank, directive[1])
                unit = None
                if tracer is not None:
                    unit = "C%d.%d" % (rank, next(self._unit_seq))
                    self.client.prov_unit = unit
                    t0 = tracer.now()
                try:
                    if directive is not None:
                        if directive[0] == "raise":
                            raise InjectedFault(directive[1])
                        time.sleep(directive[1])
                    self.interp.eval(msg[2])
                    if tracer is not None:
                        tracer.complete(
                            rank,
                            "engine",
                            "ctask",
                            t0,
                            payload={"unit": unit, "ok": True},
                        )
                except (AbortError, DeadlockError):
                    raise
                except Exception as e:  # control-task failure
                    if tracer is not None:
                        # Failed attempts keep their span so grant
                        # instants stay aligned 1:1 with unit spans.
                        tracer.complete(
                            rank,
                            "engine",
                            "ctask",
                            t0,
                            payload={
                                "unit": unit,
                                "ok": False,
                                "error": type(e).__name__,
                            },
                        )
                    # Leased like worker tasks, so retry hands the unit
                    # back to the server; either way the engine re-parks
                    # and keeps serving its registered rules.
                    self._unit_error("ctask", msg[2], e, retryable=True)
                    self.drain()
                    self.client.park_async((CONTROL,))
                    continue
                self.drain()
                self.client.park_async((CONTROL,))  # also flushes refcounts
                self.client.decr_work()
            elif kind == "ckpt":
                self._ckpt_reply(msg[1])
            elif kind == "shutdown":
                break
            else:
                raise RuntimeError("engine: unexpected async message %r" % (msg,))
        if tracer is not None:
            from .worker import fold_cache_stats

            tracer.metrics.fold_struct("engine", self.stats, rank=rank)
            fold_cache_stats(tracer, self.client, self.interp, rank)
        return self.stats
